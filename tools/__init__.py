"""Repo tooling: docs checks (`check_docs.py`) and the reprolint
static-analysis suite (`python -m tools.reprolint src/`)."""
