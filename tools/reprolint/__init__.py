"""reprolint: determinism & concurrency static analysis for this repo.

Every layer of the reproduction rests on one invariant -- bit-identical
trajectories across serial/threads/processes/remote/spectator/replay
configurations -- and the costliest bugs so far (a ``PYTHONHASHSEED``-
dependent ``stable_hash``, an ``id()``-reuse script-cache alias, a
``union`` row alias) were all *statically detectable* nondeterminism
patterns.  reprolint walks the AST of ``src/`` with three rule packs:

* **determinism** -- nondeterministic calls (``random``, ``time.time``,
  ``datetime.now``, ``os.urandom``, builtin ``hash``) in tick-path
  modules, unsorted set / ``dict.keys()`` iteration, unpinned
  ``id()``-keyed caches, dict mutation during iteration;
* **concurrency** -- a per-class thread-ownership map (tick thread vs.
  background threads) flagging attributes mutated from more than one
  ownership domain without the class's registered lock, misordered
  ``close()``/``join()`` teardown, and leak-prone non-daemon threads;
* **wire** -- ``struct`` format strings without an explicit byte order,
  frame-packing modules without a ``*_VERSION`` constant, encoders with
  no decoder counterpart, and ``recv`` paths that ignore the
  ``FrameError`` taxonomy.

Findings can be suppressed inline with a *justified*
``# reprolint: disable=<rule> -- why`` comment or grandfathered in the
committed baseline file (``tools/reprolint/baseline.json``).  See
``docs/static-analysis.md`` for the rule catalogue and workflow.
"""

from .engine import Finding, LintModule, Project, lint_paths
from .rules import ALL_RULES

__all__ = ["ALL_RULES", "Finding", "LintModule", "Project", "lint_paths"]

__version__ = "1.0"
