"""Text and JSON reporters with stable shapes for CI consumption."""

from __future__ import annotations

import json
from typing import Iterable

from .engine import Finding


def render_text(
    findings: Iterable[Finding],
    grandfathered: int = 0,
    errors: Iterable[str] = (),
) -> str:
    lines: list[str] = []
    count = 0
    for f in findings:
        count += 1
        lines.append(f"{f.location()}: [{f.pack}/{f.rule}] {f.message}")
    for err in errors:
        lines.append(f"error: {err}")
    if count == 0:
        summary = "reprolint: clean"
    else:
        summary = f"reprolint: {count} finding{'s' if count != 1 else ''}"
    if grandfathered:
        summary += f" ({grandfathered} baselined, not shown)"
    lines.append(summary)
    return "\n".join(lines)


def render_json(
    findings: Iterable[Finding],
    grandfathered: int = 0,
    errors: Iterable[str] = (),
) -> str:
    payload = {
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "pack": f.pack,
                "message": f.message,
            }
            for f in findings
        ],
        "grandfathered": grandfathered,
        "errors": list(errors),
    }
    return json.dumps(payload, indent=2, sort_keys=True)
