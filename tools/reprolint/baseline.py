"""Baseline: grandfathered findings that do not fail the gate.

A baseline entry is a *fingerprint* -- ``path``, ``rule``, a short hash
of the flagged source line (stripped, so re-indenting does not churn
the baseline), and an occurrence index for repeated identical lines.
Line numbers are deliberately NOT part of the fingerprint: inserting a
docstring above a grandfathered finding must not resurrect it.

Workflow::

    python -m tools.reprolint src/ --write-baseline   # grandfather current
    python -m tools.reprolint src/                    # gate: new findings only
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from pathlib import Path
from typing import Iterable

from .engine import Finding

BASELINE_VERSION = 1


def _line_hash(text: str) -> str:
    return hashlib.sha256(text.strip().encode("utf-8")).hexdigest()[:12]


def fingerprints(
    findings: Iterable[Finding], line_text: dict[tuple[str, int], str]
) -> list[str]:
    """Stable fingerprint per finding, in finding order."""
    seen: Counter[str] = Counter()
    out: list[str] = []
    for f in findings:
        text = line_text.get((f.path, f.line), "")
        base = f"{f.path}:{f.rule}:{_line_hash(text)}"
        idx = seen[base]
        seen[base] += 1
        out.append(f"{base}:{idx}")
    return out


def save(path: Path, prints: Iterable[str]) -> None:
    payload = {
        "version": BASELINE_VERSION,
        "fingerprints": sorted(prints),
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def load(path: Path) -> set[str]:
    if not path.exists():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    if payload.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"unsupported baseline version {payload.get('version')!r} in {path}"
        )
    return set(payload.get("fingerprints", ()))


def split_by_baseline(
    findings: list[Finding],
    line_text: dict[tuple[str, int], str],
    baselined: set[str],
) -> tuple[list[Finding], list[Finding]]:
    """Return ``(new, grandfathered)``."""
    new: list[Finding] = []
    old: list[Finding] = []
    for f, fp in zip(findings, fingerprints(findings, line_text)):
        (old if fp in baselined else new).append(f)
    return new, old
