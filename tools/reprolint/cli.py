"""Command line entry: ``python -m tools.reprolint [paths] [options]``.

Exit codes (stable; CI depends on them):

* ``0`` -- no unbaselined findings
* ``1`` -- unbaselined findings (or parse errors) present
* ``2`` -- usage / internal error
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path

from . import baseline as baseline_mod
from .engine import lint_paths
from .rules import ALL_RULES, RULES_BY_ID
from .reporters import render_json, render_text

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def _changed_files(root: Path) -> set[str] | None:
    """Repo-relative paths of files changed vs. HEAD (staged + unstaged)."""
    try:
        out = subprocess.run(
            ["git", "diff", "--name-only", "HEAD", "--"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            cwd=root,
            capture_output=True,
            text=True,
            check=True,
            timeout=30,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return None
    return {
        line.strip()
        for line in (out + untracked).splitlines()
        if line.strip().endswith(".py")
    }


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="determinism/concurrency/wire static analysis",
    )
    parser.add_argument("paths", nargs="*", default=["src"], help="files or directories")
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE.name} beside the tool)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather all current findings into the baseline and exit 0",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="report findings only for files changed vs. git HEAD "
        "(the whole tree is still parsed for cross-file rules)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="RULE-ID",
        help="run only the given rule (repeatable)",
    )
    parser.add_argument("--list-rules", action="store_true")
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            scope = f" [{rule.requires_role}-path only]" if rule.requires_role else ""
            print(f"{rule.pack}/{rule.id}{scope}: {rule.description}")
        return 0

    rules = ALL_RULES
    if args.rules:
        unknown = [r for r in args.rules if r not in RULES_BY_ID]
        if unknown:
            print(f"reprolint: unknown rule(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
        rules = [RULES_BY_ID[r] for r in args.rules]

    root = Path.cwd()
    only_files: set[str] | None = None
    if args.changed_only:
        only_files = _changed_files(root)
        if only_files is None:
            print(
                "reprolint: --changed-only requires git; falling back to full run",
                file=sys.stderr,
            )
        elif not only_files:
            print("reprolint: clean (no changed .py files)")
            return 0

    paths = [p for p in args.paths if Path(p).exists()]
    if not paths:
        print(f"reprolint: no such path(s): {', '.join(args.paths)}", file=sys.stderr)
        return 2

    try:
        findings, errors = lint_paths(paths, rules, root=root, only_files=only_files)
    except Exception as exc:  # internal error -> exit 2, never a silent pass
        print(f"reprolint: internal error: {exc}", file=sys.stderr)
        return 2

    line_text: dict[tuple[str, int], str] = {}
    by_rel: dict[str, Path] = {}
    for f in findings:
        if f.path not in by_rel:
            by_rel[f.path] = root / f.path
        key = (f.path, f.line)
        if key not in line_text:
            try:
                lines = by_rel[f.path].read_text(encoding="utf-8").splitlines()
                line_text[key] = lines[f.line - 1] if 0 < f.line <= len(lines) else ""
            except OSError:
                line_text[key] = ""

    if args.write_baseline:
        prints = baseline_mod.fingerprints(findings, line_text)
        baseline_mod.save(args.baseline, prints)
        print(f"reprolint: wrote {len(prints)} fingerprint(s) to {args.baseline}")
        return 0

    baselined: set[str] = set()
    if not args.no_baseline:
        try:
            baselined = baseline_mod.load(args.baseline)
        except (ValueError, OSError) as exc:
            print(f"reprolint: bad baseline: {exc}", file=sys.stderr)
            return 2
    new, old = baseline_mod.split_by_baseline(findings, line_text, baselined)

    render = render_json if args.fmt == "json" else render_text
    print(render(new, grandfathered=len(old), errors=errors))
    return 1 if (new or errors) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
