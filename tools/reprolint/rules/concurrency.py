"""Concurrency rule pack.

The repo runs three long-lived background threads next to the tick
thread: the epoch-log writer (``persist/log.py``), the replica
publisher's control plane, and the Prometheus HTTP server
(``obs/registry.py``).  These rules build a per-class *thread-ownership
map* -- which methods run on a spawned thread vs. the caller's thread --
and flag instance attributes mutated from both domains without the
class's registered lock, plus teardown mistakes (``join()`` before the
stop signal, non-daemon threads that are never joined).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintModule, Rule
from ._util import dotted_name, import_aliases, resolved_call_name

_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "add",
        "pop",
        "popitem",
        "clear",
        "update",
        "setdefault",
        "appendleft",
        "popleft",
    }
)

_TEARDOWN_METHODS = frozenset({"close", "shutdown", "stop", "__exit__", "__del__"})


def _self_attr_path(node: ast.AST) -> str | None:
    """``self.a`` -> "a"; ``self.a.b`` -> "a.b"; anything else -> None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name) and cur.id == "self" and parts:
        return ".".join(reversed(parts))
    return None


def _method_map(cls: ast.ClassDef) -> dict[str, ast.FunctionDef | ast.AsyncFunctionDef]:
    out: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
    for stmt in cls.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out[stmt.name] = stmt
    return out


def _self_calls(method: ast.AST) -> set[str]:
    """Names of same-class methods invoked as ``self.<name>(...)``."""
    out: set[str] = set()
    for node in ast.walk(method):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            path = _self_attr_path(node.func)
            if path is not None and "." not in path:
                out.add(path)
    return out


def _thread_targets(cls: ast.ClassDef, aliases: dict[str, str]) -> set[str]:
    """Method names handed to ``threading.Thread(target=self.<m>)``."""
    targets: set[str] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Call):
            continue
        name = resolved_call_name(node, aliases)
        if name != "threading.Thread":
            continue
        for kw in node.keywords:
            if kw.arg == "target":
                path = _self_attr_path(kw.value)
                if path is not None and "." not in path:
                    targets.add(path)
    return targets


def _worker_closure(
    targets: set[str],
    methods: dict[str, ast.FunctionDef | ast.AsyncFunctionDef],
) -> set[str]:
    closure = set(targets)
    frontier = list(targets)
    while frontier:
        name = frontier.pop()
        method = methods.get(name)
        if method is None:
            continue
        for callee in _self_calls(method):
            if callee in methods and callee not in closure:
                closure.add(callee)
                frontier.append(callee)
    return closure


def _is_locked(module: LintModule, node: ast.AST) -> bool:
    """True when ``node`` sits inside ``with self.<something-lock>:``."""
    for parent in module.parents(node):
        if isinstance(parent, ast.With):
            for item in parent.items:
                expr = item.context_expr
                if isinstance(expr, ast.Call):
                    expr = expr.func
                path = _self_attr_path(expr)
                if path is not None and "lock" in path.lower():
                    return True
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return False


class CrossThreadMutationRule(Rule):
    id = "cross-thread-mutation"
    pack = "concurrency"
    description = (
        "instance attribute mutated from both the worker-thread domain "
        "and the caller domain without the class's lock"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node, aliases)

    def _check_class(
        self, module: LintModule, cls: ast.ClassDef, aliases: dict[str, str]
    ) -> Iterator[Finding]:
        targets = _thread_targets(cls, aliases)
        if not targets:
            return
        methods = _method_map(cls)
        worker = _worker_closure(targets, methods)
        callers_of: dict[str, set[str]] = {name: set() for name in methods}
        for name, method in methods.items():
            for callee in _self_calls(method):
                if callee in callers_of:
                    callers_of[callee].add(name)

        def domains(name: str) -> set[str]:
            d: set[str] = set()
            if name in worker:
                d.add("worker")
                # A worker-closure method also invoked from outside the
                # closure runs in both domains (e.g. a synchronous
                # fallback path calling the same _write helper).
                if any(c not in worker for c in callers_of.get(name, ())):
                    d.add("caller")
            else:
                d.add("caller")
            return d

        # attr path -> domain -> list of (site, locked, method name)
        sites: dict[str, dict[str, list[tuple[ast.AST, bool, str]]]] = {}
        for name, method in methods.items():
            if name in {"__init__", "__new__", "__post_init__"}:
                continue
            doms = domains(name)
            for site, attr in self._mutations(method):
                locked = _is_locked(module, site)
                slot = sites.setdefault(attr, {})
                for d in doms:
                    slot.setdefault(d, []).append((site, locked, name))

        for attr in sorted(sites):
            slot = sites[attr]
            if len(slot) < 2:
                continue
            unlocked = [
                (site, meth)
                for entries in slot.values()
                for site, locked, meth in entries
                if not locked
            ]
            if not unlocked:
                continue
            reported: set[int] = set()
            for site, meth in unlocked:
                line = getattr(site, "lineno", 0)
                if line in reported:
                    continue
                reported.add(line)
                worker_methods = sorted(
                    {m for _, _, m in slot.get("worker", ())}
                )
                caller_methods = sorted(
                    {m for _, _, m in slot.get("caller", ())}
                )
                yield self.make(
                    module,
                    site,
                    f"self.{attr} mutated in {meth}() from both thread "
                    f"domains (worker: {', '.join(worker_methods)}; caller: "
                    f"{', '.join(caller_methods)}) without the class lock; "
                    "guard with the registered lock or confine to one thread",
                )

    @staticmethod
    def _mutations(method: ast.AST) -> Iterator[tuple[ast.AST, str]]:
        for node in ast.walk(method):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    path = _self_attr_path(tgt)
                    if path is not None:
                        yield node, path
                    elif isinstance(tgt, ast.Subscript):
                        base = _self_attr_path(tgt.value)
                        if base is not None:
                            yield node, base
            elif isinstance(node, ast.AugAssign):
                path = _self_attr_path(node.target)
                if path is not None:
                    yield node, path
                elif isinstance(node.target, ast.Subscript):
                    base = _self_attr_path(node.target.value)
                    if base is not None:
                        yield node, base
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                base = _self_attr_path(node.func.value)
                if base is not None:
                    yield node, base


class TeardownOrderRule(Rule):
    id = "teardown-order"
    pack = "concurrency"
    description = (
        "thread.join() in a teardown method before any stop signal "
        "(sentinel put / event set / flag assignment / close)"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for stmt in node.body:
                if (
                    isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and stmt.name in _TEARDOWN_METHODS
                ):
                    yield from self._check_teardown(module, stmt)

    def _check_teardown(
        self, module: LintModule, method: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[Finding]:
        joins: list[ast.Call] = []
        signal_lines: list[int] = []
        for node in ast.walk(method):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                attr = node.func.attr
                if attr == "join" and not node.args:
                    joins.append(node)  # no positional args: thread/queue join, not str.join
                elif attr in {
                    "put",
                    "put_nowait",
                    "set",
                    "close",
                    "cancel",
                    "shutdown",
                    "terminate",
                    "send",
                } or attr.startswith("stop"):
                    signal_lines.append(node.lineno)
            elif isinstance(node, ast.Assign):
                # ``self._closed = True``-style flag writes count as signals.
                for tgt in node.targets:
                    if _self_attr_path(tgt) is not None:
                        signal_lines.append(node.lineno)
        for join in joins:
            if _self_attr_path(join.func.value) is None and dotted_name(join.func.value) is None:
                continue
            before = [ln for ln in signal_lines if ln < join.lineno]
            if not before:
                yield self.make(
                    module,
                    join,
                    "join() before any stop signal in a teardown method; "
                    "signal the worker (sentinel/event/flag/close) before "
                    "joining or the join can hang forever",
                )


class NonDaemonThreadLeakRule(Rule):
    id = "nondaemon-thread-leak"
    pack = "concurrency"
    description = (
        "threading.Thread created without daemon=True and never joined "
        "in its enclosing scope; leaks past interpreter teardown"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if resolved_call_name(node, aliases) != "threading.Thread":
                continue
            daemon = None
            for kw in node.keywords:
                if kw.arg == "daemon" and isinstance(kw.value, ast.Constant):
                    daemon = kw.value.value
            if daemon is True:
                continue
            scope = self._enclosing_scope(module, node)
            if self._has_join(scope):
                continue
            yield self.make(
                module,
                node,
                "non-daemon Thread with no join() in the enclosing "
                "class/module; pass daemon=True or join it in close()",
            )

    @staticmethod
    def _enclosing_scope(module: LintModule, node: ast.AST) -> ast.AST:
        best: ast.AST = module.tree
        for parent in module.parents(node):
            if isinstance(parent, ast.ClassDef):
                return parent
        return best

    @staticmethod
    def _has_join(scope: ast.AST) -> bool:
        for node in ast.walk(scope):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and not node.args
            ):
                return True
        return False


CONCURRENCY_RULES: list[Rule] = [
    CrossThreadMutationRule(),
    TeardownOrderRule(),
    NonDaemonThreadLeakRule(),
]
