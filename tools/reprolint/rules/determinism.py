"""Determinism rule pack.

These rules guard the engine's core invariant: every configuration of
the same seeded simulation must produce a bit-identical trajectory.
They target the bug classes that have actually corrupted runs in this
repo's history: ambient entropy sources on the tick path, iteration
order leaking out of hash-based containers into ⊕-merge / broadcast /
blob-encode paths, and ``id()``-keyed caches that outlive their
referent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..engine import Finding, LintModule, Rule
from ._util import dotted_name, import_aliases, resolved_call_name, scope_walk

# -- nondet-call -----------------------------------------------------------

_BANNED_CALLS: dict[str, str] = {
    "time.time": "wall-clock time; use the epoch counter (or time.perf_counter in obs-only diagnostics)",
    "time.time_ns": "wall-clock time; use the epoch counter",
    "datetime.datetime.now": "wall-clock time; derive timestamps outside the tick path",
    "datetime.datetime.utcnow": "wall-clock time; derive timestamps outside the tick path",
    "datetime.datetime.today": "wall-clock time; derive timestamps outside the tick path",
    "datetime.date.today": "wall-clock date; derive timestamps outside the tick path",
    "os.urandom": "OS entropy; use the simulation's seeded RNG",
    "uuid.uuid1": "host/time-derived UUID; use deterministic ids",
    "uuid.uuid4": "random UUID; use deterministic ids",
}
_BANNED_PREFIXES: dict[str, str] = {
    "random.": "process-global RNG; use a seeded random.Random owned by the simulation",
    "secrets.": "cryptographic entropy; use the simulation's seeded RNG",
    "numpy.random.": "process-global RNG; use a seeded generator owned by the simulation",
}
# random.Random(seed) constructs an *owned* seeded generator -- the
# sanctioned way to get randomness -- so it is allowlisted.
_ALLOWED_CALLS = frozenset({"random.Random", "random.SystemRandom.__bad__"})


class NondetCallRule(Rule):
    id = "nondet-call"
    pack = "determinism"
    description = (
        "ambient entropy (random/time/datetime/os.urandom/uuid/secrets) "
        "called on the tick path"
    )
    requires_role = "tick"

    def check(self, module: LintModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolved_call_name(node, aliases)
            if name is None or name in _ALLOWED_CALLS:
                continue
            reason = _BANNED_CALLS.get(name)
            if reason is None:
                for prefix, why in _BANNED_PREFIXES.items():
                    if name.startswith(prefix) and name not in _ALLOWED_CALLS:
                        reason = why
                        break
            if reason is not None:
                yield self.make(
                    module, node, f"nondeterministic call {name}(): {reason}"
                )


# -- unstable-hash ---------------------------------------------------------


class UnstableHashRule(Rule):
    id = "unstable-hash"
    pack = "determinism"
    description = (
        "builtin hash() on the tick path (PYTHONHASHSEED-dependent for "
        "str/bytes); use repro.engine.rng.stable_hash"
    )
    requires_role = "tick"

    def check(self, module: LintModule) -> Iterator[Finding]:
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Name) and func.id == "hash"):
                continue
            if aliases.get("hash", "hash") != "hash":
                continue  # shadowed by an import
            if self._inside_dunder_hash(module, node):
                continue
            yield self.make(
                module,
                node,
                "builtin hash() is PYTHONHASHSEED-dependent for str/bytes; "
                "use repro.engine.rng.stable_hash",
            )

    @staticmethod
    def _inside_dunder_hash(module: LintModule, node: ast.AST) -> bool:
        # __hash__ implementations legitimately delegate to hash(); the
        # result never crosses process boundaries un-normalised.
        for parent in module.parents(node):
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return parent.name == "__hash__"
        return False


# -- unsorted-set-iter -----------------------------------------------------

_ORDER_INSENSITIVE = frozenset(
    {"sorted", "len", "min", "max", "sum", "any", "all", "set", "frozenset"}
)


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        return name in {"set", "frozenset"}
    if isinstance(node, ast.Name):
        return node.id in set_names
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, set_names) or _is_set_expr(
            node.right, set_names
        )
    return False


def _set_annotation(ann: ast.AST | None) -> bool:
    if ann is None:
        return False
    text = ast.dump(ann)
    return "'set'" in text or "'frozenset'" in text or "'Set'" in text


def _collect_set_names(scope: ast.AST) -> set[str]:
    """Local names bound to set-valued expressions inside ``scope``."""
    names: set[str] = set()
    for node in scope_walk(scope):
        if isinstance(node, ast.Assign):
            if _is_set_expr(node.value, names):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        names.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            if _set_annotation(node.annotation) or (
                node.value is not None and _is_set_expr(node.value, names)
            ):
                names.add(node.target.id)
        elif isinstance(node, ast.arg) and _set_annotation(node.annotation):
            names.add(node.arg)
    return names


class UnsortedSetIterRule(Rule):
    id = "unsorted-set-iter"
    pack = "determinism"
    description = (
        "iterating a set without sorted(); set order is insertion/hash "
        "dependent and leaks into merge/broadcast/encode paths"
    )
    requires_role = "tick"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for scope in self._scopes(module.tree):
            set_names = _collect_set_names(scope)
            if not set_names and not self._has_set_literals(scope):
                continue
            for node in scope_walk(scope):
                if isinstance(node, ast.For):
                    yield from self._flag(module, node.iter, set_names)
                elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                    for gen in node.generators:
                        yield from self._flag(module, gen.iter, set_names, comp=node)
                elif isinstance(node, ast.Call):
                    name = dotted_name(node.func)
                    if name in {"list", "tuple", "enumerate"} and node.args:
                        yield from self._flag(module, node.args[0], set_names)

    @staticmethod
    def _scopes(tree: ast.AST) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _has_set_literals(scope: ast.AST) -> bool:
        return any(
            isinstance(n, (ast.Set, ast.SetComp)) for n in scope_walk(scope)
        )

    def _flag(
        self,
        module: LintModule,
        iter_expr: ast.AST,
        set_names: set[str],
        comp: ast.AST | None = None,
    ) -> Iterator[Finding]:
        if not _is_set_expr(iter_expr, set_names):
            return
        if isinstance(iter_expr, (ast.Set, ast.SetComp)) and comp is None:
            # ``for x in {"a", "b"}`` over a literal is a membership-style
            # constant; only flag when it feeds a collecting comprehension.
            return
        # Allow when an order-insensitive consumer wraps the iteration.
        anchor = comp if comp is not None else iter_expr
        for parent in module.parents(anchor):
            if isinstance(parent, ast.Call):
                name = dotted_name(parent.func)
                if name in _ORDER_INSENSITIVE:
                    return
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
        if isinstance(anchor, ast.SetComp):
            return  # set -> set keeps order-insensitivity
        label = (
            iter_expr.id
            if isinstance(iter_expr, ast.Name)
            else ast.unparse(iter_expr)
        )
        yield self.make(
            module,
            anchor if comp is not None else iter_expr,
            f"iteration over set {label!r} without sorted(); wrap in "
            "sorted(...) before the order can reach a merge/broadcast/"
            "encode path",
        )


# -- unsorted-keys-iter ----------------------------------------------------


class UnsortedKeysIterRule(Rule):
    id = "unsorted-keys-iter"
    pack = "determinism"
    description = (
        "iterating d.keys() directly; iterate the dict (deterministic "
        "insertion order) or sorted(d) when order must be canonical"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            iters: list[ast.AST] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in {"list", "tuple"} and node.args:
                    iters.append(node.args[0])
            for it in iters:
                if (
                    isinstance(it, ast.Call)
                    and isinstance(it.func, ast.Attribute)
                    and it.func.attr == "keys"
                    and not it.args
                ):
                    yield self.make(
                        module,
                        it,
                        "iterating .keys() directly; iterate the dict itself "
                        "(insertion order is deterministic) or sorted(d) for "
                        "a canonical order",
                    )


# -- id-cache-unpinned -----------------------------------------------------


def _id_referents(expr: ast.AST) -> list[str]:
    """Names passed to ``id(...)`` anywhere inside ``expr``."""
    out: list[str] = []
    for node in ast.walk(expr):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
            and len(node.args) == 1
            and isinstance(node.args[0], ast.Name)
        ):
            out.append(node.args[0].id)
    return out


def _pins_referent(value: ast.AST, referent: str, module: LintModule) -> bool:
    """True if ``value`` stores a *direct* reference to ``referent``.

    A bare ``Name`` load counts (including as a tuple/list element or a
    call argument -- constructors conventionally retain their args, as
    ``Interpreter(script, ...)`` does).  ``referent.attr`` does NOT
    count: storing an attribute of the object does not keep the object
    alive, which is exactly the id()-reuse aliasing bug.
    """
    for node in ast.walk(value):
        if isinstance(node, ast.Name) and node.id == referent:
            parent = module.parent(node)
            if isinstance(parent, ast.Attribute) and parent.value is node:
                continue
            if isinstance(parent, ast.Subscript) and parent.value is node:
                continue
            if isinstance(parent, ast.Call) and parent.func is node:
                continue
            if isinstance(parent, ast.comprehension):
                # ``[f(x) for x in referent]`` stores f(x) results, not
                # the referent itself -- no pin.
                continue
            return True
    return False


class IdCacheUnpinnedRule(Rule):
    id = "id-cache-unpinned"
    pack = "determinism"
    description = (
        "dict keyed by id(obj) whose value does not pin obj; a collected "
        "object's recycled id silently serves a stale cache entry"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for scope in self._scopes(module.tree):
            assigns = self._name_assignments(scope)
            for node in scope_walk(scope):
                if isinstance(node, ast.Assign):
                    for tgt in node.targets:
                        if isinstance(tgt, ast.Subscript):
                            yield from self._check_store(
                                module, tgt.value, tgt.slice, node.value, assigns, node
                            )
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "setdefault"
                    and len(node.args) == 2
                ):
                    yield from self._check_store(
                        module, node.func.value, node.args[0], node.args[1], assigns, node
                    )

    @staticmethod
    def _scopes(tree: ast.AST) -> Iterator[ast.AST]:
        yield tree
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def _name_assignments(scope: ast.AST) -> dict[str, list[ast.AST]]:
        out: dict[str, list[ast.AST]] = {}
        for node in scope_walk(scope):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        out.setdefault(tgt.id, []).append(node.value)
            elif (
                isinstance(node, ast.AnnAssign)
                and isinstance(node.target, ast.Name)
                and node.value is not None
            ):
                out.setdefault(node.target.id, []).append(node.value)
        return out

    def _check_store(
        self,
        module: LintModule,
        dict_expr: ast.AST,
        key_expr: ast.AST,
        value_expr: ast.AST,
        assigns: dict[str, list[ast.AST]],
        site: ast.AST,
    ) -> Iterator[Finding]:
        key_exprs = [key_expr]
        if isinstance(key_expr, ast.Name):
            key_exprs = assigns.get(key_expr.id, [])
        referents: list[str] = []
        for ke in key_exprs:
            referents.extend(_id_referents(ke))
        if not referents:
            return
        # Counter/constant idiom (``refs[id(p)] = refs.get(id(p), 0) + 1``)
        # stores no object at all -- id reuse cannot alias anything.
        if self._is_counter_value(value_expr, dict_expr):
            return
        dict_name = dotted_name(dict_expr) or ast.unparse(dict_expr)
        for referent in referents:
            values = [value_expr]
            if isinstance(value_expr, ast.Name):
                values = assigns.get(value_expr.id, [value_expr])
            ok = all(
                self._value_pins(v, referent, dict_name, module) for v in values
            )
            if not ok:
                yield self.make(
                    module,
                    site,
                    f"cache {dict_name!r} keyed by id({referent}) does not "
                    f"pin {referent!r}; store the referent in the value "
                    "(e.g. a (obj, result) tuple) so a recycled id cannot "
                    "alias a stale entry",
                )

    @staticmethod
    def _is_counter_value(value: ast.AST, dict_expr: ast.AST) -> bool:
        if isinstance(value, ast.Constant):
            return True
        if isinstance(value, ast.BinOp):
            return True  # arithmetic on prior entries, no object stored
        return False

    def _value_pins(
        self, value: ast.AST, referent: str, dict_name: str, module: LintModule
    ) -> bool:
        if _pins_referent(value, referent, module):
            return True
        # Reading back from the same cache returns an already-pinned
        # value: ``entry = cache.pop(key, None)`` / ``cache.get(key)``.
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Attribute):
            if value.func.attr in {"get", "pop", "setdefault"}:
                owner = dotted_name(value.func.value)
                if owner == dict_name:
                    return True
        return False


# -- dict-mutation-in-iteration --------------------------------------------

_DICT_MUTATORS = frozenset({"pop", "popitem", "clear", "update", "setdefault"})


class DictMutationInIterationRule(Rule):
    id = "dict-mutation-in-iteration"
    pack = "determinism"
    description = "mutating a dict while iterating it"

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.For):
                continue
            target = self._iterated_dict(node.iter)
            if target is None:
                continue
            for inner in ast.walk(node):
                yield from self._flag_mutation(module, inner, target)

    @staticmethod
    def _iterated_dict(iter_expr: ast.AST) -> str | None:
        # ``for k in d`` / ``for k, v in d.items()`` / ``.keys()`` / ``.values()``
        if isinstance(iter_expr, ast.Name):
            return iter_expr.id
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr in {"items", "keys", "values"}
        ):
            return dotted_name(iter_expr.func.value)
        return None

    def _flag_mutation(
        self, module: LintModule, node: ast.AST, target: str
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Delete):
            for t in node.targets:
                if isinstance(t, ast.Subscript) and dotted_name(t.value) == target:
                    yield self.make(
                        module, node, f"del {target}[...] while iterating {target!r}"
                    )
        elif isinstance(node, ast.Assign):
            for t in node.targets:
                if isinstance(t, ast.Subscript) and dotted_name(t.value) == target:
                    yield self.make(
                        module,
                        node,
                        f"assignment to {target}[...] while iterating {target!r}; "
                        "collect changes and apply after the loop",
                    )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_MUTATORS
            and dotted_name(node.func.value) == target
        ):
            yield self.make(
                module,
                node,
                f"{target}.{node.func.attr}(...) while iterating {target!r}",
            )


DETERMINISM_RULES: list[Rule] = [
    NondetCallRule(),
    UnstableHashRule(),
    UnsortedSetIterRule(),
    UnsortedKeysIterRule(),
    IdCacheUnpinnedRule(),
    DictMutationInIterationRule(),
]
