"""Shared AST helpers for the rule packs."""

from __future__ import annotations

import ast
from typing import Iterator


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to fully qualified import paths.

    ``import time`` -> {"time": "time"};
    ``import numpy as np`` -> {"np": "numpy"};
    ``from datetime import datetime as dt`` -> {"dt": "datetime.datetime"}.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(node: ast.AST) -> str | None:
    """Return ``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    cur = node
    while isinstance(cur, ast.Attribute):
        parts.append(cur.attr)
        cur = cur.value
    if isinstance(cur, ast.Name):
        parts.append(cur.id)
        return ".".join(reversed(parts))
    return None


def resolved_call_name(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Fully qualified dotted name of a call target, following imports."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    base = aliases.get(head, head)
    return f"{base}.{rest}" if rest else base


def enclosing_function(
    module: "LintModuleLike", node: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for parent in module.parents(node):
        if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return parent
    return None


def enclosing_class(module: "LintModuleLike", node: ast.AST) -> ast.ClassDef | None:
    for parent in module.parents(node):
        if isinstance(parent, ast.ClassDef):
            return parent
    return None


def walk_functions(tree: ast.AST) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def scope_walk(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk ``scope`` without descending into nested function scopes.

    Class bodies ARE descended into (their statements resolve names in
    the enclosing scope for our purposes); nested def/lambda are not --
    they get their own pass when the caller iterates scopes.
    """
    stack: list[ast.AST] = [scope]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            stack.append(child)


class LintModuleLike:
    """Protocol stand-in (kept duck-typed so rules stay import-light)."""

    def parents(self, node: ast.AST) -> Iterator[ast.AST]:  # pragma: no cover
        raise NotImplementedError
