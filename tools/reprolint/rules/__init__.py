"""Rule registry: determinism, concurrency, and wire packs."""

from __future__ import annotations

from ..engine import Rule
from .concurrency import CONCURRENCY_RULES
from .determinism import DETERMINISM_RULES
from .wire import WIRE_RULES

ALL_RULES: list[Rule] = [*DETERMINISM_RULES, *CONCURRENCY_RULES, *WIRE_RULES]

RULES_BY_ID: dict[str, Rule] = {r.id: r for r in ALL_RULES}

__all__ = ["ALL_RULES", "RULES_BY_ID"]
