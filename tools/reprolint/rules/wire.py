"""Wire/protocol rule pack.

The repo has two framed byte formats: the socket transport's
``>BI``-headered frames (``serve/transport.py``, ``PROTOCOL_VERSION``)
and the epoch log's ``>2sBqII`` record header (``persist/framing.py``,
``FORMAT_VERSION``).  These rules keep the formats honest: every
``struct`` format string must pin an explicit byte order, every module
that packs frames must carry a version constant, every encoder must
have a decode/apply/iter counterpart somewhere in the tree, and every
transport ``recv`` must sit under a handler for the ``FrameError``
taxonomy (``FrameError`` ⊂ ``TransportError`` ⊂ ``OSError``).
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from ..engine import Finding, LintModule, Project, Rule
from ._util import dotted_name, import_aliases, resolved_call_name

_STRUCT_FUNCS = frozenset(
    {
        "struct.Struct",
        "struct.pack",
        "struct.unpack",
        "struct.pack_into",
        "struct.unpack_from",
        "struct.calcsize",
        "struct.iter_unpack",
    }
)
_BYTE_ORDER_PREFIXES = (">", "<", "!", "=")
_VERSION_NAME_RE = re.compile(r"(^|_)(PROTOCOL|FORMAT|WIRE)_VERSION$")


def _struct_format_calls(module: LintModule) -> Iterator[tuple[ast.Call, str]]:
    aliases = import_aliases(module.tree)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        name = resolved_call_name(node, aliases)
        if name not in _STRUCT_FUNCS:
            continue
        if not node.args:
            continue
        fmt = node.args[0]
        if isinstance(fmt, ast.Constant) and isinstance(fmt.value, str):
            yield node, fmt.value


class StructByteOrderRule(Rule):
    id = "struct-byte-order"
    pack = "wire"
    description = (
        "struct format string without an explicit byte order; native "
        "order/alignment differs across hosts and breaks the wire format"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node, fmt in _struct_format_calls(module):
            if not fmt.startswith(_BYTE_ORDER_PREFIXES):
                yield self.make(
                    module,
                    node,
                    f"struct format {fmt!r} has no explicit byte order; "
                    "prefix with '>' (network order) so frames are "
                    "host-independent",
                )


class WireVersionConstantRule(Rule):
    id = "wire-version-constant"
    pack = "wire"
    description = (
        "module packs struct frames but defines/imports no "
        "*_VERSION constant to stamp the format"
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        uses = list(_struct_format_calls(module))
        if not uses:
            return
        if self._has_version_name(module.tree):
            return
        node = uses[0][0]
        yield self.make(
            module,
            node,
            "struct frame packing without a PROTOCOL_VERSION/FORMAT_VERSION "
            "constant in the module; version every wire format so decoders "
            "can reject mismatches",
        )

    @staticmethod
    def _has_version_name(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and _VERSION_NAME_RE.search(tgt.id):
                        return True
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and _VERSION_NAME_RE.search(
                    node.target.id
                ):
                    return True
            elif isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    local = alias.asname or alias.name
                    if _VERSION_NAME_RE.search(local):
                        return True
        return False


class EncodeDecodePairRule(Rule):
    id = "encode-decode-pair"
    pack = "wire"
    description = (
        "encoder function with no decode/apply/iter/read counterpart "
        "anywhere in the scanned tree (and vice versa)"
    )

    _DECODER_PREFIXES = ("decode_", "apply_", "iter_", "read_", "load_")
    _ENCODER_PREFIXES = ("encode_", "write_", "dump_", "build_")

    def finalize(self, project: Project) -> Iterator[Finding]:
        # name -> (module, node) for every top-level / class-level def.
        defs: dict[str, tuple[LintModule, ast.AST]] = {}
        for module in project.modules:
            for node in ast.walk(module.tree):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    defs.setdefault(node.name, (module, node))
        names = set(defs)

        def has_counterpart(stem: str, prefixes: tuple[str, ...]) -> bool:
            stems = {stem}
            # singular/plural stems pair up: encode_record / iter_records.
            if stem.endswith("s"):
                stems.add(stem[:-1])
            else:
                stems.add(stem + "s")
            return any(p + s in names for p in prefixes for s in stems)

        for name in sorted(names):
            module, node = defs[name]
            if name.startswith("encode_"):
                stem = name[len("encode_"):]
                if not has_counterpart(stem, self._DECODER_PREFIXES):
                    yield self.make(
                        module,
                        node,
                        f"encoder {name}() has no decode_/apply_/iter_/read_ "
                        "counterpart in the scanned tree; every wire format "
                        "needs both directions",
                    )
            elif name.startswith("decode_"):
                stem = name[len("decode_"):]
                if not has_counterpart(stem, self._ENCODER_PREFIXES):
                    yield self.make(
                        module,
                        node,
                        f"decoder {name}() has no encode_/write_/dump_ "
                        "counterpart in the scanned tree",
                    )


class RecvFrameGuardRule(Rule):
    id = "recv-frame-guard"
    pack = "wire"
    description = (
        "transport recv() outside a try handling the FrameError taxonomy "
        "(FrameError/TransportError/OSError/EOFError)"
    )

    _RECEIVER_HINTS = ("transport", "feed", "client", "conn_to_server")
    _HANDLED = frozenset(
        {
            "FrameError",
            "TransportError",
            "OSError",
            "EOFError",
            "ConnectionError",
            "Exception",
            "BaseException",
        }
    )

    def check(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "recv"
            ):
                continue
            receiver = (dotted_name(node.func.value) or "").lower()
            if not any(h in receiver for h in self._RECEIVER_HINTS):
                continue
            if self._guarded(module, node):
                continue
            yield self.make(
                module,
                node,
                f"recv() on {receiver!r} outside a try handling "
                "FrameError/TransportError/OSError/EOFError; a torn or "
                "desynced frame will escape as an unclassified exception",
            )

    def _guarded(self, module: LintModule, node: ast.AST) -> bool:
        child = node
        for parent in module.parents(node):
            if isinstance(parent, ast.Try):
                in_body = any(self._contains(stmt, child) for stmt in parent.body)
                if in_body and self._handles_taxonomy(parent):
                    return True
            if isinstance(parent, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return False
        return False

    @staticmethod
    def _contains(root: ast.AST, needle: ast.AST) -> bool:
        return any(n is needle for n in ast.walk(root))

    def _handles_taxonomy(self, try_node: ast.Try) -> bool:
        for handler in try_node.handlers:
            if handler.type is None:
                return True  # bare except
            if isinstance(handler.type, ast.Tuple):
                types: list[ast.expr] = list(handler.type.elts)
            else:
                types = [handler.type]
            for t in types:
                name = dotted_name(t)
                if name is not None and name.split(".")[-1] in self._HANDLED:
                    return True
        return False


WIRE_RULES: list[Rule] = [
    StructByteOrderRule(),
    WireVersionConstantRule(),
    EncodeDecodePairRule(),
    RecvFrameGuardRule(),
]
