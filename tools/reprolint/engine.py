"""Core engine: module loading, role detection, suppressions, dispatch.

The engine parses every ``.py`` file under the given paths into a
:class:`LintModule` (AST + source lines + parent links + role tags),
runs each rule's per-module ``check`` pass, then each rule's
project-wide ``finalize`` pass, and finally applies inline
suppressions.  Suppressions *require* a justification::

    x = some_call()  # reprolint: disable=nondet-call -- seeded fallback only

A suppression without the ``-- justification`` text does not suppress
anything; it is itself reported as a ``bad-suppression`` finding.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator

# Path segments that put a module on the deterministic tick path.  Rules
# with ``requires_role = "tick"`` only run on these modules.  A module
# can override its role with a marker comment in the first five lines:
#   # reprolint: role=tick     (opt in)
#   # reprolint: role=support  (opt out)
TICK_PATH_SEGMENTS = frozenset({"engine", "env", "sgl", "indexes", "algebra"})

_SUPPRESS_RE = re.compile(
    r"#\s*reprolint:\s*disable=([A-Za-z0-9_,-]+)((?:\s+--\s*)(.*))?"
)
_ROLE_RE = re.compile(r"#\s*reprolint:\s*role=([A-Za-z-]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule: str
    pack: str
    message: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class Suppression:
    line: int
    rules: tuple[str, ...]
    justification: str


class LintModule:
    """A parsed source file plus the per-file metadata rules need."""

    def __init__(self, path: Path, source: str, relpath: str) -> None:
        self.path = path
        self.relpath = relpath
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self.role = self._detect_role()
        self.suppressions = self._parse_suppressions()
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # -- structure helpers -------------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def parents(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    # -- role & suppression parsing ---------------------------------------
    def _detect_role(self) -> str:
        for raw in self.lines[:5]:
            m = _ROLE_RE.search(raw)
            if m:
                return m.group(1)
        parts = set(Path(self.relpath).parts)
        if parts & TICK_PATH_SEGMENTS:
            return "tick"
        return "support"

    def _parse_suppressions(self) -> dict[int, Suppression]:
        out: dict[int, Suppression] = {}
        for idx, raw in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(raw)
            if not m:
                continue
            rules = tuple(r.strip() for r in m.group(1).split(",") if r.strip())
            justification = (m.group(3) or "").strip()
            out[idx] = Suppression(idx, rules, justification)
        return out

    def suppression_for(self, lineno: int, rule: str) -> Suppression | None:
        """Suppression on the flagged line or in the comment block above.

        Justifications often span several comment lines; any line of the
        contiguous standalone-comment block directly above the flagged
        line may carry the ``disable=`` marker.
        """
        candidates = [lineno]
        ln = lineno - 1
        while ln >= 1 and self.line_text(ln).lstrip().startswith("#"):
            candidates.append(ln)
            ln -= 1
        for candidate in candidates:
            sup = self.suppressions.get(candidate)
            if sup is None:
                continue
            if rule in sup.rules or "all" in sup.rules:
                return sup
        return None


@dataclass
class Project:
    """All modules in one lint run, for cross-file ``finalize`` passes."""

    modules: list[LintModule] = field(default_factory=list)


class Rule:
    """Base class for lint rules.

    ``check`` runs once per module; ``finalize`` runs once per project
    after every module has been checked (for cross-file rules such as
    encoder/decoder pairing).
    """

    id: str = ""
    pack: str = ""
    description: str = ""
    requires_role: str | None = None  # e.g. "tick"; None = every module

    def check(self, module: LintModule) -> Iterator[Finding]:
        return iter(())

    def finalize(self, project: Project) -> Iterator[Finding]:
        return iter(())

    def make(self, module: LintModule, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=module.relpath,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            pack=self.pack,
            message=message,
        )


def discover_files(paths: Iterable[str | Path]) -> list[Path]:
    files: list[Path] = []
    for entry in paths:
        p = Path(entry)
        if p.is_dir():
            files.extend(sorted(p.rglob("*.py")))
        elif p.suffix == ".py" and p.is_file():
            files.append(p)
    # De-duplicate while keeping a deterministic order.
    seen: set[Path] = set()
    ordered: list[Path] = []
    for f in files:
        rp = f.resolve()
        if rp not in seen:
            seen.add(rp)
            ordered.append(f)
    return ordered


def load_module(path: Path, root: Path | None = None) -> LintModule:
    source = path.read_text(encoding="utf-8")
    base = root if root is not None else Path.cwd()
    try:
        rel = path.resolve().relative_to(base.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return LintModule(path, source, rel)


def lint_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule],
    root: Path | None = None,
    only_files: set[str] | None = None,
) -> tuple[list[Finding], list[str]]:
    """Lint ``paths`` with ``rules``.

    Returns ``(findings, errors)`` where ``errors`` are files that could
    not be parsed.  ``only_files`` (relpaths) restricts *reporting* to a
    subset of files while still parsing the whole tree, so cross-file
    rules keep full context in ``--changed-only`` mode.
    """
    rule_list = list(rules)
    project = Project()
    errors: list[str] = []
    for path in discover_files(paths):
        try:
            project.modules.append(load_module(path, root=root))
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            errors.append(f"{path}: {exc}")

    raw: list[Finding] = []
    for module in project.modules:
        for rule in rule_list:
            if rule.requires_role is not None and module.role != rule.requires_role:
                continue
            raw.extend(rule.check(module))
    for rule in rule_list:
        raw.extend(rule.finalize(project))

    by_rel = {m.relpath: m for m in project.modules}
    findings: list[Finding] = []
    used: set[tuple[str, int]] = set()
    for f in raw:
        module = by_rel.get(f.path)
        if module is not None:
            sup = module.suppression_for(f.line, f.rule)
            if sup is not None:
                used.add((f.path, sup.line))
                if sup.justification:
                    continue  # properly suppressed
                # Unjustified: the suppression itself is the finding.
                findings.append(
                    Finding(
                        path=f.path,
                        line=sup.line,
                        col=0,
                        rule="bad-suppression",
                        pack="meta",
                        message=(
                            "suppression without justification; write "
                            "'# reprolint: disable=%s -- <why>'" % f.rule
                        ),
                    )
                )
                continue
        findings.append(f)

    if only_files is not None:
        findings = [f for f in findings if f.path in only_files]

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    # Collapse duplicate bad-suppression findings for one comment line.
    deduped: list[Finding] = []
    seen_keys: set[tuple[str, int, int, str]] = set()
    for f in findings:
        key = (f.path, f.line, f.col, f.rule)
        if key in seen_keys:
            continue
        seen_keys.add(key)
        deduped.append(f)
    return deduped, errors
