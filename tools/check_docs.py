"""Docs health gate: links resolve, anchors exist, knobs are documented.

Two checks over ``README.md`` and ``docs/**/*.md``:

1. **Intra-repo links** -- every relative link target must exist, and a
   ``#fragment`` into a markdown file must match one of that file's
   heading anchors (GitHub's slugging: lowercase, punctuation stripped,
   spaces to hyphens, duplicate slugs suffixed ``-1``, ``-2``, ...).
   External (``http://``, ``https://``, ``mailto:``) links are ignored
   -- CI must not flake on the outside world.

2. **EngineConfig coverage** -- every field of the ``EngineConfig``
   dataclass (parsed from ``src/repro/engine/clock.py`` with ``ast``,
   so the list can never drift from the code) must be mentioned in at
   least one scanned document.  Adding a knob without documenting it
   fails the build.

    python tools/check_docs.py [--repo-root PATH]

Exit 0 when clean; exit 1 listing every problem (never stops at the
first, so one CI run shows the full repair list).
"""

from __future__ import annotations

import argparse
import ast
import glob
import os
import re
import sys

#: ``[text](target)`` inline links; images (``![alt](...)``) included,
#: since a broken image path is just as dead.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")

_FENCE = re.compile(r"^(```|~~~)")

#: GitHub's anchor slugger keeps word characters, spaces, and hyphens.
_SLUG_STRIP = re.compile(r"[^\w\- ]", re.UNICODE)

#: Markdown emphasis/code markers stripped from heading text before
#: slugging (GitHub slugs the *rendered* text, so ````code```` spans
#: contribute their content, not their backticks).
_MD_MARKUP = re.compile(r"[`*]|\[([^\]]*)\]\([^)]*\)")


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """One heading's anchor, deduplicated against earlier *seen* slugs."""
    text = _MD_MARKUP.sub(lambda m: m.group(1) or "", heading)
    slug = _SLUG_STRIP.sub("", text.lower()).replace(" ", "-")
    n = seen.get(slug, 0)
    seen[slug] = n + 1
    return slug if n == 0 else f"{slug}-{n}"


def strip_code_blocks(lines: list[str]) -> list[str]:
    """Blank out fenced code blocks (their ``#`` lines are not headings
    and their bracket syntax is not links)."""
    out, fenced = [], False
    for line in lines:
        if _FENCE.match(line.strip()):
            fenced = not fenced
            out.append("")
        else:
            out.append("" if fenced else line)
    return out


def heading_anchors(path: str) -> set[str]:
    with open(path, encoding="utf-8") as fh:
        lines = strip_code_blocks(fh.read().splitlines())
    seen: dict[str, int] = {}
    return {
        github_slug(m.group(2), seen)
        for line in lines
        if (m := _HEADING.match(line))
    }


def check_links(md_files: list[str], repo_root: str) -> list[str]:
    problems = []
    anchors = {os.path.abspath(p): heading_anchors(p) for p in md_files}
    for path in md_files:
        with open(path, encoding="utf-8") as fh:
            lines = strip_code_blocks(fh.read().splitlines())
        rel = os.path.relpath(path, repo_root)
        for lineno, line in enumerate(lines, 1):
            for target in _LINK.findall(line):
                if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # scheme
                    continue
                dest, _, fragment = target.partition("#")
                if dest:
                    dest_path = os.path.abspath(
                        os.path.join(os.path.dirname(path), dest)
                    )
                    if not os.path.exists(dest_path):
                        problems.append(
                            f"{rel}:{lineno}: broken link {target!r} "
                            f"(no such file {dest!r})"
                        )
                        continue
                else:  # bare "#anchor" -> this file
                    dest_path = os.path.abspath(path)
                if not fragment:
                    continue
                if not dest_path.endswith(".md"):
                    continue  # anchors into non-markdown: not ours to judge
                if dest_path not in anchors:
                    anchors[dest_path] = heading_anchors(dest_path)
                if fragment not in anchors[dest_path]:
                    problems.append(
                        f"{rel}:{lineno}: broken anchor {target!r} "
                        f"(no heading slugs to #{fragment} in "
                        f"{os.path.relpath(dest_path, repo_root)})"
                    )
    return problems


def engine_config_fields(clock_py: str) -> list[str]:
    """EngineConfig's field names, straight from the dataclass source."""
    with open(clock_py, encoding="utf-8") as fh:
        tree = ast.parse(fh.read(), filename=clock_py)
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef) and node.name == "EngineConfig":
            return [
                stmt.target.id
                for stmt in node.body
                if isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
            ]
    raise SystemExit(f"no EngineConfig class found in {clock_py}")


def check_knob_coverage(md_files: list[str], repo_root: str) -> list[str]:
    corpus = ""
    for path in md_files:
        with open(path, encoding="utf-8") as fh:
            corpus += fh.read() + "\n"
    clock_py = os.path.join(repo_root, "src", "repro", "engine", "clock.py")
    problems = []
    for name in engine_config_fields(clock_py):
        if not re.search(rf"\b{re.escape(name)}\b", corpus):
            problems.append(
                f"EngineConfig.{name} is not mentioned in README.md or "
                "docs/ -- document the knob (the README table is the "
                "usual home)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--repo-root",
        default=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        help="repository root (default: the parent of tools/)",
    )
    args = parser.parse_args(argv)
    root = os.path.abspath(args.repo_root)

    md_files = sorted(
        [os.path.join(root, "README.md")]
        + glob.glob(os.path.join(root, "docs", "**", "*.md"), recursive=True)
    )
    missing = [p for p in md_files if not os.path.exists(p)]
    if missing:
        for path in missing:
            print(f"ERROR: expected document missing: {path}")
        return 1

    problems = check_links(md_files, root) + check_knob_coverage(
        md_files, root
    )
    for problem in problems:
        prefix = (
            "::error::" if os.environ.get("GITHUB_ACTIONS") == "true"
            else "ERROR: "
        )
        print(f"{prefix}{problem}")
    if problems:
        return 1
    print(
        f"docs ok: {len(md_files)} files, links and anchors resolve, "
        "every EngineConfig field documented"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
