"""Spectator read replicas: watch a battle from outside the simulation.

Runs a battle in this process with the spectator feed enabled, spawns a
:class:`~repro.serve.spectator.SpectatorReplica` server process
subscribed over loopback TCP, and -- while the battle keeps ticking --
streams live per-team aggregates out of the *replica*, never touching
the simulation's own evaluator.

The replica holds its own copy of ``E``, kept current by the engine's
epoch-versioned delta broadcasts (snapshot catch-up on join), plus
retained incrementally-maintained index structures; every answer is
pinned to one consistent tick epoch and is bit-identical to what the
engine itself would compute at that epoch.

    PYTHONPATH=src python examples/spectator.py
"""

from repro import BattleSimulation, unit_ref

#: A query compiled *from source, by the replica*: the client ships this
#: restricted-SQL aggregate over the wire; the replica classifies its
#: shape and answers it from a retained divisible index.
TEAM_STRENGTH = """
function TeamStrength(p) returns
SELECT Count(*) AS n, Sum(health) AS hp, Avg(health) AS avg_hp
FROM E e
WHERE e.player = p;
"""


def main() -> None:
    with BattleSimulation(
        400, seed=11, density=0.02, spectators=True
    ) as sim:
        print(f"battle of 400 units; spectator feed at {sim.spectator_address}")
        with sim.spawn_spectator() as spectator:
            with spectator.client() as client:
                for _ in range(8):
                    sim.tick()
                    epoch = sim.engine.tick_count + 1
                    # pinning the epoch waits (server-side) until the
                    # replica has applied this tick's delta
                    teams = [
                        client.query(TEAM_STRENGTH, p, epoch=epoch).value
                        for p in (0, 1)
                    ]
                    hist = client.query(
                        "hp_histogram", epoch=epoch, bucket=25
                    ).value
                    center = sim.grid_size / 2.0
                    knn = client.query(
                        "knn", 3, center, center, epoch=epoch
                    ).value
                    print(
                        f"epoch {epoch:2d}  "
                        + "  ".join(
                            f"team {p}: {t['n']:3d} units "
                            f"{t['hp']:6.0f} hp"
                            for p, t in enumerate(teams)
                        )
                        + f"  | hp buckets {[c for _, c in hist]}"
                        + f"  | mid-field units {[k for k, _ in knn]}"
                    )
                # a unit-parameterised registered aggregate works too:
                # the replica substitutes its own row for the key
                nearby = client.query(
                    "CountEnemiesInRange", unit_ref(0), 10
                )
                print(
                    f"enemies within 10 of unit 0 at epoch {nearby.epoch}: "
                    f"{nearby.value}"
                )
                status = client.status()
        print(
            f"replica applied {status['updates_applied']} updates "
            f"({status['snapshots_applied']} snapshot) and answered "
            f"{status['engine_stats']['queries']} queries; "
            f"publisher shipped "
            f"{sim.engine.publisher.stats.bytes_sent / 1024:.1f} KiB total"
        )


if __name__ == "__main__":
    main()
