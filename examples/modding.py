"""Modding: swap a unit's AI script without touching the engine.

Section 2 of the paper argues data-driven AI lets *players* mod unit
behaviour (the Warcraft III AMAI project).  This example plays the same
battle twice -- once with the stock archer script, once with a modded
"berserker archer" that never retreats and always charges the weakest
enemy -- and compares outcomes.  The mod is pure data: a different SGL
string compiled against the same registry.

    python examples/modding.py
"""

from repro import BattleSimulation, compile_script

BERSERKER_ARCHER = """
main(u) {
  (let c = CountEnemiesInRange(u, u.sight)) {
    if (c > 0) then
      perform Rush(u);
  }
}

Rush(u) {
  (let n = CountEnemiesInRange(u, u.range)) {
    if (n > 0 and u.cooldown = 0) then
      (let target = WeakestEnemyInRange(u, u.range)) {
        perform FireAt(u, target.key);
        perform UseWeapon(u);
      };
    if (n = 0) then
      (let t = NearestEnemy(u)) {
        perform MoveInDirection(u, t.posx - u.posx, t.posy - u.posy);
      }
  }
}
"""


def play(modded: bool, ticks: int = 15):
    sim = BattleSimulation(
        200, mode="indexed", seed=21, density=0.06, resurrection=False,
    )
    if modded:
        # mod player 0's archers only: players keep distinct scripts
        stock = sim.scripts["archer"]
        berserker = compile_script(
            BERSERKER_ARCHER, sim.registry, sim.schema
        )
        original_for = sim.engine.script_for

        def script_for(row):
            if row["unittype"] == "archer" and row["player"] == 0:
                return berserker
            return original_for(row)

        sim.engine.script_for = script_for
        assert stock is not berserker
    sim.run(ticks)
    survivors = {0: 0, 1: 0}
    for row in sim.environment:
        survivors[row["player"]] += 1
    return survivors, sim.summary


def main() -> None:
    print("== Stock archers on both sides ==")
    stock_survivors, stock_summary = play(modded=False)
    print(f"survivors: player0={stock_survivors[0]} "
          f"player1={stock_survivors[1]} "
          f"(damage dealt: {stock_summary.total_damage:.0f})")

    print("\n== Player 0 mods its archers into berserkers ==")
    mod_survivors, mod_summary = play(modded=True)
    print(f"survivors: player0={mod_survivors[0]} "
          f"player1={mod_survivors[1]} "
          f"(damage dealt: {mod_summary.total_damage:.0f})")

    delta = mod_summary.total_damage - stock_summary.total_damage
    print(
        f"\nThe mod changed total battle damage by {delta:+.0f} without a\n"
        "single engine change -- and the optimizer indexed the modded\n"
        "script's aggregates exactly like the stock ones."
    )


if __name__ == "__main__":
    main()
