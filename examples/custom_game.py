"""A custom data-driven game built on the public API: zombie outbreak.

Demonstrates everything a game designer needs to ship their own game on
this engine -- no engine code, just data (Section 2's data-driven
architecture):

* a custom tagged schema;
* built-in aggregates/actions written in the restricted SQL fragment;
* per-unit-type SGL scripts (civilians flee, zombies chase and bite);
* custom game mechanics (bitten civilians rise as zombies).

The optimizer classifies the new aggregates automatically: the nearest-
zombie query gets a kD-tree, the panic count a Figure-8 tree.

    python examples/custom_game.py
"""

from repro import (
    Attribute,
    AttributeType,
    EnvironmentTable,
    FunctionRegistry,
    GameDefinition,
    Schema,
    compile_script,
    explain_script,
)
from repro.engine.movement import run_movement_phase

GRID = 40

SCHEMA = Schema(
    [
        Attribute("key", AttributeType.CONST),
        Attribute("unittype", AttributeType.CONST),
        Attribute("posx", AttributeType.CONST),
        Attribute("posy", AttributeType.CONST),
        Attribute("health", AttributeType.CONST),
        Attribute("speed", AttributeType.CONST),
        Attribute("movevect_x", AttributeType.SUM, default=0.0),
        Attribute("movevect_y", AttributeType.SUM, default=0.0),
        Attribute("damage", AttributeType.SUM, default=0),
    ]
)

BUILTINS = """
function NearestOfType(u, kind) returns
SELECT ArgMin((e.posx - u.posx) * (e.posx - u.posx)
            + (e.posy - u.posy) * (e.posy - u.posy))
FROM E e
WHERE e.unittype = kind;

function CountTypeInRange(u, kind, radius) returns
SELECT Count(*)
FROM E e
WHERE e.unittype = kind
  AND e.posx >= u.posx - radius AND e.posx <= u.posx + radius
  AND e.posy >= u.posy - radius AND e.posy <= u.posy + radius;

function Move(u, vx, vy) returns
SELECT e.key, vx AS movevect_x, vy AS movevect_y
FROM E e WHERE e.key = u.key;

function Bite(u, target_key) returns
SELECT e.key, e.damage + 1 + Random(e, 1) % 2 AS damage
FROM E e WHERE e.key = target_key;
"""

CIVILIAN = """
main(u) {
  (let danger = CountTypeInRange(u, 'zombie', _PANIC_RANGE)) {
    if (danger > 0) then
      (let z = NearestOfType(u, 'zombie')) {
        perform Move(u, u.posx - z.posx, u.posy - z.posy);
      };
    if (danger = 0) then
      perform Move(u, Random(1) % 3 - 1, Random(2) % 3 - 1);
  }
}
"""

ZOMBIE = """
main(u) {
  (let prey = CountTypeInRange(u, 'civilian', _SMELL_RANGE)) {
    if (prey > 0) then
      (let c = NearestOfType(u, 'civilian')) {
        if (abs(c.posx - u.posx) <= 1 and abs(c.posy - u.posy) <= 1) then
          perform Bite(u, c.key);
        else
          perform Move(u, c.posx - u.posx, c.posy - u.posy);
      }
  }
}
"""


def mechanics(combined: EnvironmentTable, rng, tick: int) -> EnvironmentTable:
    """Bitten civilians lose health; at zero they rise as zombies."""
    defaults = SCHEMA.effect_defaults()
    rows = []
    for row in combined:
        new_row = dict(row)
        new_row["health"] = new_row["health"] - new_row["damage"]
        if new_row["health"] <= 0 and new_row["unittype"] == "civilian":
            new_row["unittype"] = "zombie"
            new_row["health"] = 5
            new_row["speed"] = 2
        rows.append(new_row)
    run_movement_phase(rows, GRID, rng)
    for row in rows:
        row.update(defaults)
    out = EnvironmentTable(SCHEMA)
    out.rows.extend(rows)
    return out


def build_world(n_civilians=60, n_zombies=6) -> EnvironmentTable:
    import random

    placer = random.Random(13)
    env = EnvironmentTable(SCHEMA)
    taken = set()
    key = 0
    for unittype, count, health, speed in (
        ("civilian", n_civilians, 3, 2),
        ("zombie", n_zombies, 5, 2),
    ):
        for _ in range(count):
            while True:
                x, y = placer.randrange(GRID), placer.randrange(GRID)
                if (x, y) not in taken:
                    taken.add((x, y))
                    break
            env.insert_unit(
                key=key, unittype=unittype, posx=x, posy=y,
                health=health, speed=speed,
            )
            key += 1
    return env


def main() -> None:
    registry = FunctionRegistry()
    registry.register_constants({"_PANIC_RANGE": 8, "_SMELL_RANGE": 16})
    registry.register_sql(BUILTINS)

    game = GameDefinition(
        schema=SCHEMA,
        registry=registry,
        scripts={
            "civilian": compile_script(CIVILIAN, registry, SCHEMA),
            "zombie": compile_script(ZOMBIE, registry, SCHEMA),
        },
    )
    engine = game.engine(build_world(), mechanics, mode="indexed", seed=42)

    print("== Zombie outbreak (custom game on the repro engine) ==")
    for _ in range(25):
        engine.tick()
        counts = {"civilian": 0, "zombie": 0}
        for row in engine.env:
            counts[row["unittype"]] += 1
        if engine.tick_count % 5 == 0:
            print(
                f"tick {engine.tick_count:2d}: "
                f"{counts['civilian']:3d} civilians, "
                f"{counts['zombie']:3d} zombies"
            )
        if counts["civilian"] == 0:
            print(f"humanity fell at tick {engine.tick_count}")
            break

    print("\n== How the optimizer indexes the zombie script ==")
    print(explain_script(ZOMBIE, registry))


if __name__ == "__main__":
    main()
