"""Quickstart: run an epic battle and inspect what the optimizer did.

Runs the paper's battle simulation (knights, archers, healers with d20
mechanics) on the indexed engine, prints per-tick statistics, and shows
the EXPLAIN output for the paper's Figure 3 script.

The engine's per-tick index strategy is configurable via
``index_maintenance``: ``"rebuild"`` (the paper's from-scratch default),
``"incremental"`` (patch retained indexes with the tick's row delta),
or ``"auto"`` (cost-based choice per tick).  All three are bit-identical
in trajectory; ``benchmarks/bench_incremental.py`` sweeps where each
wins.

    python examples/quickstart.py
"""

from repro import BattleSimulation, explain_script
from repro.game.scripts import FIGURE_3_SCRIPT, build_registry


def main() -> None:
    print("== A 500-unit battle on the indexed engine ==")
    # index_maintenance="auto" lets the engine patch retained indexes
    # with row deltas on quiet ticks and rebuild on busy ones
    sim = BattleSimulation(500, mode="indexed", seed=7,
                           index_maintenance="auto")
    print(f"grid: {sim.grid_size}x{sim.grid_size} "
          f"({len(sim.environment)} units at 1% density)")

    for _ in range(10):
        stats = sim.tick()
        print(
            f"tick {stats.tick:2d}: {stats.total_time * 1000:7.1f} ms "
            f"({stats.effect_rows} effect rows, "
            f"{stats.aoe_records} deferred auras)"
        )

    summary = sim.summary
    print(
        f"\n10 ticks in {summary.total_time:.2f}s | "
        f"damage dealt: {summary.total_damage:.0f} | "
        f"healing: {summary.total_healing:.0f} | "
        f"deaths: {summary.deaths} (all resurrected: "
        f"{summary.resurrections == summary.deaths})"
    )

    print("\n== Index probes the evaluator answered ==")
    for counter, count in sorted(sim.engine.agg_eval.stats.items()):
        print(f"  {counter:20s} {count}")

    print("\n== EXPLAIN for the paper's Figure 3 script ==")
    print(explain_script(FIGURE_3_SCRIPT, build_registry()))


if __name__ == "__main__":
    main()
