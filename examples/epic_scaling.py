"""Epic scaling: the Figure 10 experiment as a live demo.

Runs identical battles through the naive and the indexed engine at
growing unit counts and prints the per-tick cost side by side --
the naive curve is quadratic, the indexed one is ~n log n, exactly the
trade-off Figure 1 of the paper frames (expressiveness vs unit count).

    python examples/epic_scaling.py [max_units]
"""

import sys
import time

from repro import BattleSimulation


def tick_time(n_units: int, mode: str, ticks: int = 1) -> float:
    sim = BattleSimulation(n_units, mode=mode, seed=0)
    start = time.perf_counter()
    sim.run(ticks)
    return (time.perf_counter() - start) / ticks


def main() -> None:
    max_units = int(sys.argv[1]) if len(sys.argv) > 1 else 400
    naive_cap = min(max_units, 400)  # the naive engine is the point

    print(f"{'units':>6} {'naive s/tick':>13} {'indexed s/tick':>15} "
          f"{'speedup':>8}")
    n = 50
    while n <= max_units:
        indexed = tick_time(n, "indexed", ticks=2)
        if n <= naive_cap:
            naive = tick_time(n, "naive")
            print(f"{n:>6} {naive:>13.3f} {indexed:>15.4f} "
                  f"{naive / indexed:>7.1f}x")
        else:
            print(f"{n:>6} {'(skipped)':>13} {indexed:>15.4f} {'-':>8}")
        n *= 2

    print(
        "\nThe naive engine re-scans all n units for each of the ~10\n"
        "aggregates every unit evaluates per tick: O(n^2).  The indexed\n"
        "engine rebuilds the Section 5.3 structures each tick and answers\n"
        "each aggregate in O(log n): the same game, an order of magnitude\n"
        "more units."
    )


if __name__ == "__main__":
    main()
