"""Full battle simulation: the paper's headline equivalence and invariants.

The critical guarantee of Section 6: the naive and the indexed engines
are the *same game* -- identical trajectories, different wall-clock.
"""

import pytest

from repro.game.battle import BattleSimulation


def signatures_match(a: BattleSimulation, b: BattleSimulation, ticks: int):
    for t in range(ticks):
        a.tick()
        b.tick()
        if a.state_signature() != b.state_signature():
            return t + 1
    return None


class TestNaiveIndexedEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_trajectories_identical(self, seed):
        naive = BattleSimulation(40, mode="naive", seed=seed)
        indexed = BattleSimulation(40, mode="indexed", seed=seed)
        diverged = signatures_match(naive, indexed, ticks=6)
        assert diverged is None, f"diverged at tick {diverged}"

    def test_two_army_formation_equivalence(self):
        naive = BattleSimulation(40, mode="naive", seed=5,
                                 formation="two_army")
        indexed = BattleSimulation(40, mode="indexed", seed=5,
                                   formation="two_army")
        assert signatures_match(naive, indexed, ticks=6) is None

    def test_aoe_optimization_equivalence(self):
        with_aoe = BattleSimulation(40, mode="indexed", seed=3,
                                    optimize_aoe=True)
        without = BattleSimulation(40, mode="indexed", seed=3,
                                   optimize_aoe=False)
        assert signatures_match(with_aoe, without, ticks=6) is None

    def test_cascade_toggle_equivalence(self):
        on = BattleSimulation(40, mode="indexed", seed=3, cascade=True)
        off = BattleSimulation(40, mode="indexed", seed=3, cascade=False)
        assert signatures_match(on, off, ticks=5) is None


class TestMaintenanceModeEquivalence:
    """The incremental-maintenance subsystem must be invisible in the
    trajectory: naive, rebuild, incremental, and auto are the same game.
    """

    SCENARIOS = [
        # (seed, formation, resurrection)
        (0, "uniform", True),
        (1, "two_army", True),
        (2, "uniform", False),
        (3, "two_army", False),
    ]

    @pytest.mark.parametrize("maintenance", ["rebuild", "incremental", "auto"])
    @pytest.mark.parametrize("seed,formation,resurrection", SCENARIOS)
    def test_matches_naive_trajectory(
        self, maintenance, seed, formation, resurrection
    ):
        naive = BattleSimulation(
            40, mode="naive", seed=seed, formation=formation,
            resurrection=resurrection,
        )
        indexed = BattleSimulation(
            40, mode="indexed", seed=seed, formation=formation,
            resurrection=resurrection, index_maintenance=maintenance,
        )
        diverged = signatures_match(naive, indexed, ticks=6)
        assert diverged is None, (
            f"{maintenance} diverged from naive at tick {diverged}"
        )

    def test_incremental_actually_applies_deltas(self):
        sim = BattleSimulation(40, seed=0, index_maintenance="incremental")
        sim.run(6)
        assert sim.engine.agg_eval.stats.get("delta_ticks", 0) >= 5

    def test_incremental_vs_rebuild_bitwise(self):
        rebuild = BattleSimulation(50, seed=7, density=0.05)
        incremental = BattleSimulation(
            50, seed=7, density=0.05, index_maintenance="incremental"
        )
        assert signatures_match(rebuild, incremental, ticks=8) is None


class TestDeterminism:
    def test_same_seed_same_run(self):
        a = BattleSimulation(30, mode="indexed", seed=11)
        b = BattleSimulation(30, mode="indexed", seed=11)
        a.run(5)
        b.run(5)
        assert a.state_signature() == b.state_signature()

    def test_different_seed_different_run(self):
        a = BattleSimulation(30, mode="indexed", seed=11)
        b = BattleSimulation(30, mode="indexed", seed=12)
        a.run(5)
        b.run(5)
        assert a.state_signature() != b.state_signature()


class TestInvariants:
    def test_resurrection_keeps_population(self):
        sim = BattleSimulation(50, mode="indexed", seed=2, density=0.05)
        sim.run(10)
        assert len(sim.environment) == 50
        assert sim.summary.deaths == sim.summary.resurrections

    def test_without_resurrection_population_shrinks_or_holds(self):
        sim = BattleSimulation(50, mode="indexed", seed=2, density=0.05,
                               resurrection=False)
        sim.run(10)
        assert len(sim.environment) <= 50

    def test_health_bounded(self):
        sim = BattleSimulation(40, mode="indexed", seed=4, density=0.05)
        sim.run(8)
        for row in sim.environment:
            assert 0 < row["health"] <= row["max_health"]

    def test_positions_on_grid_and_distinct(self):
        sim = BattleSimulation(40, mode="indexed", seed=4, density=0.05)
        sim.run(8)
        cells = set()
        for row in sim.environment:
            assert 0 <= row["posx"] < sim.grid_size
            assert 0 <= row["posy"] < sim.grid_size
            cells.add((row["posx"], row["posy"]))
        assert len(cells) == len(sim.environment)

    def test_effect_attributes_reset_between_ticks(self):
        sim = BattleSimulation(30, mode="indexed", seed=1)
        sim.run(3)
        for row in sim.environment:
            assert row["damage"] == 0
            assert row["inaura"] == 0
            assert row["movevect_x"] == 0

    def test_combat_happens(self):
        # a dense battle must actually produce damage
        sim = BattleSimulation(60, mode="indexed", seed=6, density=0.08)
        sim.run(10)
        assert sim.summary.total_damage > 0

    def test_healing_happens(self):
        sim = BattleSimulation(60, mode="indexed", seed=6, density=0.08)
        sim.run(10)
        assert sim.summary.total_healing > 0

    def test_cooldowns_respected(self):
        sim = BattleSimulation(40, mode="indexed", seed=9, density=0.08)
        sim.run(6)
        for row in sim.environment:
            assert row["cooldown"] >= 0

    def test_tick_stats_recorded(self):
        sim = BattleSimulation(30, mode="indexed", seed=1)
        summary = sim.run(4)
        assert summary.ticks == 4
        assert len(summary.tick_stats) == 4
        assert all(s.total_time > 0 for s in summary.tick_stats)
        assert summary.total_time > 0

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            BattleSimulation(10, mode="turbo")

    def test_invalid_formation_rejected(self):
        with pytest.raises(ValueError):
            BattleSimulation(10, formation="circle")


class TestEvaluatorUsage:
    def test_indexed_engine_uses_every_index_family(self):
        sim = BattleSimulation(80, mode="indexed", seed=3, density=0.05)
        sim.run(4)
        stats = sim.engine.agg_eval.stats
        assert stats.get("probe_divisible", 0) > 0
        assert stats.get("build_sweep", 0) > 0
        assert stats.get("probe_kdtree", 0) > 0

    def test_no_sweep_misses_for_battle_scripts(self):
        sim = BattleSimulation(80, mode="indexed", seed=3, density=0.05)
        sim.run(4)
        assert sim.engine.agg_eval.stats.get("sweep_miss", 0) == 0

    def test_aoe_deferral_records(self):
        sim = BattleSimulation(80, mode="indexed", seed=3, density=0.08)
        stats = [sim.tick() for _ in range(6)]
        assert any(s.aoe_records > 0 for s in stats)
