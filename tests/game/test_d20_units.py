"""d20 mechanics, unit templates, and workload generation."""

import pytest

from repro.game.d20 import (
    armor_class,
    attack_hits,
    damage_roll,
    expected_damage,
    resolve_attack,
)
from repro.game.scenario import (
    composition_counts,
    grid_size_for_density,
    two_army_battle,
    uniform_battle,
)
from repro.game.units import ARCHER, HEALER, KNIGHT, PROFILES, unit_row


class TestD20:
    def test_armor_class_base_10(self):
        assert armor_class(0) == 10
        assert armor_class(4) == 14

    def test_attack_meets_or_beats(self):
        assert attack_hits(10, 4, 14)
        assert not attack_hits(9, 4, 14)

    def test_damage_minimum_one(self):
        assert damage_roll(1, -3) == 1
        assert damage_roll(4, 2) == 6

    def test_resolve_attack_deterministic(self):
        rolls = {1: 15, 2: 3}  # d20 raw, damage-die raw
        rand = lambda i: rolls[i]  # noqa: E731
        damage = resolve_attack(4, 8, 2, 2, rand)
        # d20 = 15 % 20 + 1 = 16, hits AC 12; die = 3 % 8 + 1 = 4; +2 bonus
        assert damage == 6

    def test_resolve_attack_miss(self):
        rand = lambda i: 0  # noqa: E731  d20 roll = 1
        assert resolve_attack(0, 8, 0, 9, rand) == 0

    def test_sgl_firat_matches_python_reference(self, registry, schema):
        """The FireAt arithmetic encoding == the d20 Python reference."""
        from repro.sgl.evalterm import EvalContext, eval_term
        from repro.sgl.interp import NaiveAggregateEvaluator
        from tests.conftest import make_env

        env = make_env(schema, n=4)
        attacker, target = env.rows[0], env.rows[1]
        fire = registry.actions["FireAt"].spec
        damage_term = fire.effects["damage"]

        for raw1 in (0, 7, 13, 19):
            for raw2 in (0, 3, 5):
                randoms = {1: raw1, 2: raw2}
                ctx = EvalContext(
                    env=env, registry=registry,
                    agg_eval=NaiveAggregateEvaluator(),
                    rng=lambda row, i: randoms[i],
                    bindings={"u": attacker, "target_key": target["key"],
                              "e": target},
                    unit=attacker,
                )
                sgl_damage = eval_term(damage_term, ctx)
                py_damage = resolve_attack(
                    attacker["attack_bonus"], attacker["damage_die"],
                    attacker["damage_bonus"], target["armor"],
                    lambda i: randoms[i],
                )
                assert sgl_damage == py_damage, (raw1, raw2)

    def test_expected_damage_monotone_in_armor(self):
        high = expected_damage(4, 8, 2, 0)
        low = expected_damage(4, 8, 2, 6)
        assert high > low


class TestUnits:
    def test_profiles_exist(self):
        assert set(PROFILES) == {KNIGHT, ARCHER, HEALER}

    def test_paper_relationships(self):
        knight, archer = PROFILES[KNIGHT], PROFILES[ARCHER]
        # knights are armored and hit hardest but reach only arm's length
        assert knight.armor > archer.armor
        assert knight.damage_die > archer.damage_die
        assert knight.attack_range < archer.attack_range

    def test_unit_row_complete(self, schema):
        row = unit_row(5, 1, KNIGHT, 3, 4, schema=schema)
        schema.validate_row(row)
        assert row["health"] == row["max_health"]
        assert row["damage"] == 0

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError):
            unit_row(0, 0, "dragon", 0, 0)


class TestScenario:
    def test_grid_size_one_percent(self):
        size = grid_size_for_density(100, 0.01)
        assert size * size >= 100 / 0.01

    def test_grid_size_invalid_density(self):
        with pytest.raises(ValueError):
            grid_size_for_density(10, 0)

    def test_composition_counts_sum(self):
        counts = composition_counts(101)
        assert sum(counts.values()) == 101

    def test_composition_fractions_respected(self):
        counts = composition_counts(1000, {KNIGHT: 0.5, ARCHER: 0.5})
        assert counts[KNIGHT] == 500 and counts[ARCHER] == 500

    def test_uniform_battle_positions_distinct(self, schema):
        env, grid = uniform_battle(80, seed=3, schema=schema)
        cells = {(r["posx"], r["posy"]) for r in env}
        assert len(cells) == 80
        assert all(0 <= r["posx"] < grid for r in env)

    def test_uniform_battle_deterministic(self, schema):
        a, _ = uniform_battle(40, seed=7, schema=schema)
        b, _ = uniform_battle(40, seed=7, schema=schema)
        assert a == b

    def test_uniform_battle_both_players(self, schema):
        env, _ = uniform_battle(40, seed=1, schema=schema)
        players = {r["player"] for r in env}
        assert players == {0, 1}

    def test_two_army_battle_clusters(self, schema):
        env, grid = two_army_battle(60, seed=2, schema=schema)
        band = max(grid // 8, 1)
        for row in env:
            if row["player"] == 0:
                assert row["posx"] < band
            else:
                assert row["posx"] >= grid - band

    def test_two_army_counts(self, schema):
        env, _ = two_army_battle(61, seed=2, schema=schema)
        assert len(env) == 61
