"""Autouse thread-leak guard: close() must not strand worker threads."""

import threading

import pytest

from tests.conftest import assert_no_thread_leaks


@pytest.fixture(autouse=True)
def _no_nondaemon_thread_leaks():
    before = set(threading.enumerate())
    yield
    assert_no_thread_leaks(before)
