"""Spectator time travel: any retained epoch, bit-identical answers.

The drill records the authoritative engine's answers at every epoch
while the battle runs, then asks the spectator for each *historical*
epoch after the replica has long moved on.  Reconstruction goes
checkpoint + deltas through the same ReplicaTable/QueryEngine path as
a live answer, so every value must match bit-for-bit -- across every
query kind, not just the cheap ones.  Eviction is loud: an epoch
outside the retained span errors with the span, never approximates.
"""

import time

import pytest

from repro.game.battle import BattleSimulation
from repro.serve.queries import AuthoritativeQueryService, unit_ref
from repro.serve.spectator import SpectatorError

TEAM_HP_SQL = """
function TeamHp(p) returns
SELECT Count(*) AS n, Sum(health) AS hp
FROM E e
WHERE e.player = p;
"""

QUERY_MATRIX = [
    (TEAM_HP_SQL, (0,), {}),
    ("CountFriendlyKnights", (unit_ref(0),), {}),
    ("team_counts", (), {}),
    ("hp_histogram", (), {"bucket": 25}),
    ("knn", (4, 12.0, 12.0), {}),
]


def wait_for_epoch(client, epoch, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if client.status()["epoch"] == epoch:
            return
        time.sleep(0.02)
    raise AssertionError(f"replica never reached epoch {epoch}")


@pytest.fixture()
def battle():
    with BattleSimulation(
        48, density=0.02, seed=19, spectators=True
    ) as sim:
        yield sim


def test_time_travel_bit_identical_at_every_epoch(battle):
    """The acceptance drill: record live, query historically, compare."""
    with battle.spawn_spectator(
        payload={"history_checkpoint_every": 3}
    ) as spectator:
        with spectator.client() as client:
            authority = AuthoritativeQueryService(battle.engine)
            want = {}
            for _ in range(8):
                battle.tick()
                epoch = battle.engine.tick_count + 1
                want[epoch] = [
                    authority.answer(q, *args, **params).value
                    for q, args, params in QUERY_MATRIX
                ]
            latest = battle.engine.tick_count + 1
            wait_for_epoch(client, latest)
            # the replica is at `latest`; every earlier epoch is history
            for epoch, values in want.items():
                for (q, args, params), expect in zip(QUERY_MATRIX, values):
                    got = client.query(q, *args, epoch=epoch, **params)
                    assert got.epoch == epoch
                    assert got.value == expect, (q, epoch)
            span = client.status()["history_span"]
            assert span[0] <= min(want) and span[1] == latest


def test_repeated_queries_reuse_reconstruction(battle):
    """Same-epoch queries hit the cached engine -- and still match."""
    with battle.spawn_spectator() as spectator:
        with spectator.client() as client:
            battle.run(4)
            target = 3  # an epoch well behind the replica
            wait_for_epoch(client, battle.engine.tick_count + 1)
            first = client.query("team_counts", epoch=target)
            again = client.query("hp_histogram", bucket=25, epoch=target)
            third = client.query("team_counts", epoch=target)
            assert first.epoch == again.epoch == third.epoch == target
            assert first.value == third.value


def test_evicted_epoch_errors_with_span(battle):
    with battle.spawn_spectator(
        payload={"history_retain": 3, "history_checkpoint_every": 2}
    ) as spectator:
        with spectator.client() as client:
            battle.run(8)
            latest = battle.engine.tick_count + 1
            wait_for_epoch(client, latest)
            span = client.status()["history_span"]
            assert span[1] == latest
            assert span[0] > 2  # old epochs actually evicted
            # inside the span: served
            answer = client.query("team_counts", epoch=span[0])
            assert answer.epoch == span[0]
            # evicted: loud error naming what IS retained
            with pytest.raises(
                SpectatorError, match=r"superseded.*retains epochs"
            ):
                client.query("team_counts", epoch=2)


def test_query_errors_at_historical_epochs_are_not_fatal(battle):
    with battle.spawn_spectator() as spectator:
        with spectator.client() as client:
            battle.run(3)
            wait_for_epoch(client, battle.engine.tick_count + 1)
            with pytest.raises(SpectatorError, match="unknown aggregate"):
                client.query("NoSuchAggregate", epoch=2)
            # the server survives and still time-travels
            assert client.query("team_counts", epoch=2).epoch == 2
