"""The transport layer: framing, version/size guards, pipe parity.

The socket path is the untrusted one: every frame carries a protocol
version byte and a length that is validated against the max-frame
guard *before* any payload is read, so a bad peer can neither wedge a
reader behind a never-completing frame nor make it allocate an absurd
buffer.  Pipe transports are kernel-framed and only need interface
parity.
"""

import multiprocessing
import pickle
import socket
import struct

import pytest

from repro.serve.transport import (
    DEFAULT_MAX_FRAME,
    PROTOCOL_VERSION,
    FrameError,
    PipeTransport,
    SocketTransport,
    TransportError,
)

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "socketpair"),
    reason="platform lacks socketpair support",
)


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    left = SocketTransport(a, timeout=5.0)
    right = SocketTransport(b, timeout=5.0)
    yield left, right
    left.close()
    right.close()


class TestSocketTransport:
    def test_round_trip_both_directions(self, pair):
        left, right = pair
        left.send({"tick": 3, "rows": [1, 2, 3]})
        assert right.recv() == {"tick": 3, "rows": [1, 2, 3]}
        right.send(("reply", 3))
        assert left.recv() == ("reply", 3)

    def test_prepickled_blob_fanout(self, pair):
        """send_bytes ships an already-pickled blob (the broadcast path:
        pickle once, fan out to many subscribers)."""
        left, right = pair
        blob = pickle.dumps(("snapshot", 7, [{"key": 1}]))
        sent = left.send_bytes(blob)
        assert sent == len(blob) + 5  # header is version + 4-byte length
        assert right.recv() == ("snapshot", 7, [{"key": 1}])

    def test_multiple_frames_queue(self, pair):
        left, right = pair
        for i in range(5):
            left.send(i)
        assert [right.recv() for _ in range(5)] == list(range(5))

    def test_poll(self, pair):
        left, right = pair
        assert not right.poll(0.0)
        left.send("x")
        assert right.poll(1.0)
        assert right.recv() == "x"

    def test_version_mismatch_rejected(self, pair):
        left, right = pair
        raw = struct.pack(">BI", PROTOCOL_VERSION + 1, 3) + b"abc"
        left._sock.sendall(raw)
        with pytest.raises(FrameError, match="version mismatch"):
            right.recv()

    def test_oversized_frame_rejected_before_reading(self):
        """A declared length beyond the guard is refused on the header
        alone -- the advertised gigabyte is never read or allocated."""
        a, b = socket.socketpair()
        try:
            right = SocketTransport(b, max_frame=1024, timeout=5.0)
            a.sendall(struct.pack(">BI", PROTOCOL_VERSION, 1 << 30))
            with pytest.raises(FrameError, match="refusing to read"):
                right.recv()
        finally:
            a.close()
            b.close()

    def test_oversized_send_refused_locally(self):
        a, b = socket.socketpair()
        try:
            left = SocketTransport(a, max_frame=64, timeout=5.0)
            with pytest.raises(FrameError, match="refusing to send"):
                left.send_bytes(b"x" * 65)
        finally:
            a.close()
            b.close()

    def test_undecodable_payload_is_frame_error(self, pair):
        left, right = pair
        left._sock.sendall(struct.pack(">BI", PROTOCOL_VERSION, 4) + b"????")
        with pytest.raises(FrameError, match="undecodable"):
            right.recv()

    def test_clean_close_is_eof(self, pair):
        left, right = pair
        left.close()
        with pytest.raises(EOFError):
            right.recv()

    def test_truncated_frame_is_eof(self, pair):
        """A peer dying mid-frame (the dropped-socket-mid-delta fault)
        surfaces as EOF, not a hang or a garbage message."""
        left, right = pair
        left._sock.sendall(struct.pack(">BI", PROTOCOL_VERSION, 100) + b"only")
        left.close()
        with pytest.raises(EOFError, match="mid-frame"):
            right.recv()

    def test_slow_writer_mid_frame_timeout_kills_transport(self):
        """A timeout that fires after part of a frame was consumed must
        not leave the stream desynchronized: the next recv would parse
        leftover payload bytes as a header.  The transport raises
        FrameError and refuses further use."""
        a, b = socket.socketpair()
        try:
            right = SocketTransport(b, timeout=0.2)
            # slow writer: full header claiming 100 bytes, then stalls
            # after 4 payload bytes
            a.sendall(struct.pack(">BI", PROTOCOL_VERSION, 100) + b"only")
            with pytest.raises(FrameError, match="mid-frame"):
                right.recv()
            # the writer wakes up and sends the rest -- but the reader
            # already lost its place, so the transport must refuse to
            # parse those bytes as a fresh frame instead of returning
            # garbage (or blocking on a payload that is really a header)
            a.sendall(b"x" * 96)
            with pytest.raises(FrameError, match="desynchronized"):
                right.recv()
            with pytest.raises(FrameError, match="desynchronized"):
                right.send(("tick", 1))
        finally:
            a.close()
            b.close()

    def test_idle_timeout_between_frames_keeps_transport_alive(self):
        """A timeout with no bytes read leaves the stream on a frame
        boundary: plain TimeoutError, and the transport still works."""
        a, b = socket.socketpair()
        try:
            left = SocketTransport(a, timeout=5.0)
            right = SocketTransport(b, timeout=0.2)
            with pytest.raises(TimeoutError):
                right.recv()
            left.send("late")
            assert right.recv() == "late"
        finally:
            a.close()
            b.close()

    def test_version_mismatch_desynchronizes(self, pair):
        """The mismatched frame's payload is never read, so the stream
        is mid-frame: the transport must go dead, not resync by luck."""
        left, right = pair
        left._sock.sendall(struct.pack(">BI", PROTOCOL_VERSION + 1, 3) + b"abc")
        with pytest.raises(FrameError, match="version mismatch"):
            right.recv()
        with pytest.raises(FrameError, match="desynchronized"):
            right.recv()

    def test_undecodable_payload_keeps_stream_synced(self, pair):
        """A garbage payload is fully consumed -- the *message* is bad,
        the stream position is fine, and later frames still arrive."""
        left, right = pair
        left._sock.sendall(struct.pack(">BI", PROTOCOL_VERSION, 4) + b"????")
        with pytest.raises(FrameError, match="undecodable"):
            right.recv()
        left.send("next")
        assert right.recv() == "next"

    def test_frame_error_is_os_error(self):
        """Generic transport fault paths (respawn/drop on OSError) must
        catch protocol violations without naming FrameError."""
        assert issubclass(FrameError, TransportError)
        assert issubclass(TransportError, OSError)

    def test_default_max_frame_accepts_large_snapshots(self, pair):
        import threading

        left, right = pair
        assert DEFAULT_MAX_FRAME >= 64 * 1024 * 1024
        blob = b"x" * (1 << 20)  # a 1 MiB frame passes untouched
        received = []
        reader = threading.Thread(target=lambda: received.append(right.recv()))
        reader.start()  # frame exceeds the kernel buffer; drain concurrently
        left.send_bytes(pickle.dumps(blob))
        reader.join(timeout=10)
        assert received == [blob]


class TestPipeTransport:
    def test_round_trip_and_byte_count(self):
        parent, child = multiprocessing.Pipe()
        left, right = PipeTransport(parent), PipeTransport(child)
        sent = left.send(("tick", 1))
        assert sent == len(pickle.dumps(("tick", 1), protocol=pickle.HIGHEST_PROTOCOL))
        assert right.recv() == ("tick", 1)
        right.send_bytes(pickle.dumps("ack"))
        assert left.poll(1.0)
        assert left.recv() == "ack"
        left.close()
        with pytest.raises(EOFError):
            right.recv()
        right.close()
