"""Spectator read replicas: bit-exact answers under every fault path.

Two layers of coverage:

* **publisher protocol**, in-process against a raw subscriber socket:
  snapshot-first for late joiners, delta chaining, STALE downgrade,
  bad-peer drops (the publisher must never wedge);
* **full stack fault drills** against a real spectator process over
  loopback TCP: late join, stale epoch, killed replica, dropped socket
  mid-run -- every recovery converges via snapshot and every answer is
  bit-identical to the authoritative engine at the same epoch (the
  query surface is one shared code path, exercised here across all
  query kinds).
"""

import pickle
import socket
import struct
import time

import pytest

from repro.env.sharding import NO_REPLICA, UPDATE_DELTA, UPDATE_SNAPSHOT
from repro.game.battle import BattleSimulation
from repro.serve.publisher import SUB_STALE, ReplicaPublisher
from repro.serve.queries import AuthoritativeQueryService, unit_ref
from repro.serve.spectator import SpectatorError
from repro.serve.transport import PROTOCOL_VERSION, SocketTransport

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "socketpair"),
    reason="platform lacks stream-socket support",
)

#: A compiled-from-source aggregate (the "sgl" query kind): per-team
#: size and total HP, answered from a retained divisible index.
TEAM_HP_SQL = """
function TeamHp(p) returns
SELECT Count(*) AS n, Sum(health) AS hp
FROM E e
WHERE e.player = p;
"""

#: Every query kind the acceptance bar names (and then some):
#: compiled SGL, registered aggregate, canned aggregates, spatial k-NN.
QUERY_MATRIX = [
    (TEAM_HP_SQL, (0,), {}),
    (TEAM_HP_SQL, (1,), {}),
    ("CountFriendlyKnights", (unit_ref(0),), {}),
    ("team_counts", (), {}),
    ("hp_histogram", (), {"bucket": 25}),
    ("knn", (4, 12.0, 12.0), {}),
]


def assert_epoch_matches(client, engine, epoch):
    """Every query kind answers at *epoch* exactly like the engine."""
    authority = AuthoritativeQueryService(engine)
    assert engine.tick_count + 1 == epoch
    for query, args, params in QUERY_MATRIX:
        got = client.query(query, *args, epoch=epoch, **params)
        want = authority.answer(query, *args, **params)
        assert got.epoch == epoch
        assert got.value == want.value, (query, got.value, want.value)


def wait_for_epoch(client, epoch, deadline=10.0):
    end = time.monotonic() + deadline
    while time.monotonic() < end:
        if client.status()["epoch"] == epoch:
            return
        time.sleep(0.02)
    raise AssertionError(
        f"replica never reached epoch {epoch} "
        f"(at {client.status()['epoch']})"
    )


@pytest.fixture()
def battle():
    with BattleSimulation(
        48, density=0.02, seed=19, spectators=True
    ) as sim:
        yield sim


class TestPublisherProtocol:
    """The feed side, driven with a raw in-process subscriber."""

    def publish(self, pub, epoch, rows, delta=None):
        return pub.publish(
            epoch=epoch, rows=rows, shard_conf=("key", 1, None), delta=delta
        )

    def test_late_joiner_gets_snapshot_then_deltas(self, battle):
        pub = battle.engine.publisher
        sub = SocketTransport.connect(pub.address, timeout=5.0)
        try:
            battle.tick()
            update = sub.recv()
            assert update[0] == UPDATE_SNAPSHOT
            assert update[1] == battle.engine.tick_count + 1
            battle.tick()
            update = sub.recv()
            assert update[0] == UPDATE_DELTA
            assert update[1].epoch == battle.engine.tick_count + 1
            assert pub.stats.snapshot_sends == 1
            assert pub.stats.delta_sends == 1
        finally:
            sub.close()

    def test_stale_report_downgrades_to_snapshot(self, battle):
        pub = battle.engine.publisher
        sub = SocketTransport.connect(pub.address, timeout=5.0)
        try:
            battle.tick()
            assert sub.recv()[0] == UPDATE_SNAPSHOT
            sub.send((SUB_STALE, NO_REPLICA))
            battle.tick()  # poll sees STALE, downgrades this subscriber
            assert sub.recv()[0] == UPDATE_SNAPSHOT
            assert pub.stats.stale_snapshots == 1
        finally:
            sub.close()

    def test_manual_publish_skips_current_subscribers(self, battle):
        pub = battle.engine.publisher
        sub = SocketTransport.connect(pub.address, timeout=5.0)
        try:
            battle.tick()
            assert sub.recv()[0] == UPDATE_SNAPSHOT
            assert battle.engine.publish_spectators() == 0  # already current
            assert not sub.poll(0.1)
        finally:
            sub.close()

    def test_bad_version_peer_is_dropped_not_wedged(self, battle):
        pub = battle.engine.publisher
        raw = socket.create_connection(pub.address, timeout=5.0)
        good = SocketTransport.connect(pub.address, timeout=5.0)
        try:
            raw.sendall(struct.pack(">BI", PROTOCOL_VERSION + 9, 3) + b"zzz")
            battle.tick()  # publish must survive the bad peer
            assert pub.stats.frame_errors == 1
            assert pub.stats.drops == 1
            assert good.recv()[0] == UPDATE_SNAPSHOT  # good peer unaffected
        finally:
            raw.close()
            good.close()

    def test_oversized_header_peer_is_dropped(self, battle):
        pub = battle.engine.publisher
        raw = socket.create_connection(pub.address, timeout=5.0)
        try:
            raw.sendall(struct.pack(">BI", PROTOCOL_VERSION, 1 << 31))
            battle.tick()
            assert pub.stats.drops == 1
        finally:
            raw.close()

    def test_unknown_control_message_drops_peer(self, battle):
        pub = battle.engine.publisher
        sub = SocketTransport.connect(pub.address, timeout=5.0)
        try:
            sub.send(("make_me_admin", 1))
            battle.tick()
            assert pub.stats.drops == 1
            assert pub.num_subscribers == 0
        finally:
            sub.close()

    def test_dropped_socket_mid_delta_removes_subscriber(self, battle):
        """A subscriber whose socket dies is dropped at the next send;
        the tick loop never raises."""
        pub = battle.engine.publisher
        sub = SocketTransport.connect(pub.address, timeout=5.0)
        battle.tick()
        assert sub.recv()[0] == UPDATE_SNAPSHOT
        sub.close()
        for _ in range(4):  # TCP may accept one send after peer close
            battle.tick()
            if pub.num_subscribers == 0:
                break
        assert pub.num_subscribers == 0
        assert pub.stats.drops == 1

    def test_snapshot_broadcast_mode_never_sends_deltas(self):
        with BattleSimulation(
            32, density=0.02, seed=3,
            spectators=True, spectator_broadcast="snapshot",
        ) as sim:
            sub = SocketTransport.connect(
                sim.engine.publisher.address, timeout=5.0
            )
            try:
                sim.run(3)
                kinds = {sub.recv()[0] for _ in range(3)}
                assert kinds == {UPDATE_SNAPSHOT}
                assert sim.engine.publisher.stats.delta_sends == 0
            finally:
                sub.close()

    def test_bad_broadcast_mode_rejected(self):
        with pytest.raises(ValueError, match="spectator_broadcast"):
            BattleSimulation(10, spectator_broadcast="telepathy")
        with pytest.raises(ValueError, match="broadcast"):
            ReplicaPublisher(broadcast="telepathy")


class TestSpectatorFaultDrills:
    """Real spectator processes driven through the recovery paths."""

    def test_answers_bit_identical_across_epochs(self, battle):
        with battle.spawn_spectator() as spectator:
            with spectator.client() as client:
                for _ in range(3):
                    battle.tick()
                    assert_epoch_matches(
                        client, battle.engine, battle.engine.tick_count + 1
                    )
                status = client.status()
                # the replica applied deltas (not snapshots) after joining
                assert status["snapshots_applied"] == 1
                assert status["updates_applied"] == 3

    def test_late_joiner_converges_via_snapshot(self, battle):
        battle.run(3)
        with battle.spawn_spectator() as spectator:
            battle.engine.publish_spectators()  # catch-up between ticks
            with spectator.client() as client:
                wait_for_epoch(client, battle.engine.tick_count + 1)
                assert_epoch_matches(
                    client, battle.engine, battle.engine.tick_count + 1
                )
                assert client.status()["snapshots_applied"] == 1

    def test_stale_epoch_converges_via_snapshot(self, battle):
        pub = battle.engine.publisher
        with battle.spawn_spectator() as spectator:
            with spectator.client() as client:
                battle.tick()
                wait_for_epoch(client, battle.engine.tick_count + 1)
                client.debug_set_epoch(777)  # drift the replica's epoch
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    battle.tick()
                    if (
                        pub.stats.stale_snapshots >= 1
                        and client.status()["epoch"]
                        == battle.engine.tick_count + 1
                    ):
                        break
                assert pub.stats.stale_snapshots >= 1
                assert client.status()["stale_reports"] >= 1
                assert_epoch_matches(
                    client, battle.engine, battle.engine.tick_count + 1
                )

    def test_killed_replica_respawns_and_matches(self, battle):
        pub = battle.engine.publisher
        spectator = battle.spawn_spectator()
        with spectator.client() as client:
            battle.tick()
            wait_for_epoch(client, battle.engine.tick_count + 1)
        spectator.kill()  # the dropped-socket-mid-run fault
        for _ in range(5):
            battle.tick()
            if pub.num_subscribers == 0:
                break
        assert pub.stats.drops == 1
        # a respawned replica re-joins as a late joiner and catches up
        with battle.spawn_spectator() as respawned:
            battle.tick()
            with respawned.client() as client:
                assert_epoch_matches(
                    client, battle.engine, battle.engine.tick_count + 1
                )

    def test_epoch_pinning_rules(self, battle):
        with battle.spawn_spectator() as spectator:
            with spectator.client() as client:
                battle.run(2)
                current = battle.engine.tick_count + 1
                wait_for_epoch(client, current)
                # a passed epoch is served from the retained history
                # (time travel; bit-exactness is covered in
                # tests/serve/test_time_travel.py)
                answer = client.query("team_counts", epoch=current - 1)
                assert answer.epoch == current - 1
                # an epoch from before the replica joined is gone
                with pytest.raises(SpectatorError, match="superseded"):
                    client.query("team_counts", epoch=0)
                # a future epoch parks until its tick... or times out
                with pytest.raises(SpectatorError, match="timed out"):
                    client.query("team_counts", epoch=current + 50, timeout=0.3)

    def test_history_disabled_keeps_forward_only_rule(self, battle):
        with battle.spawn_spectator(
            payload={"history_retain": 0}
        ) as spectator:
            with spectator.client() as client:
                battle.run(2)
                current = battle.engine.tick_count + 1
                wait_for_epoch(client, current)
                assert client.status()["history_span"] is None
                with pytest.raises(SpectatorError, match="superseded"):
                    client.query("team_counts", epoch=current - 1)

    def test_query_errors_are_reported_not_fatal(self, battle):
        with battle.spawn_spectator() as spectator:
            with spectator.client() as client:
                battle.tick()
                wait_for_epoch(client, battle.engine.tick_count + 1)
                with pytest.raises(SpectatorError, match="unknown aggregate"):
                    client.query("NoSuchAggregate")
                with pytest.raises(SpectatorError, match="no unit with key"):
                    client.query("CountFriendlyKnights", unit_ref(10**9))
                with pytest.raises(SpectatorError, match="cannot compile"):
                    client.query("function Broken(u) returns SELEC oops;")
                with pytest.raises(SpectatorError, match="read-only"):
                    client.query(
                        "function Evil(u) returns "
                        "SELECT e.key, e.health + 5 AS health FROM E e "
                        "WHERE e.player = 0;"
                    )
                # the server survives all of the above
                assert_epoch_matches(
                    client, battle.engine, battle.engine.tick_count + 1
                )

    def test_coexists_with_process_workers_and_reshard(self):
        """The worker broadcast and the publish stage share one capture:
        the decide stage consumes last tick's delta, mechanics captures
        a fresh one, the publish stage streams it.  A mid-run reshard
        discards the pending capture (the *workers* re-seed from
        snapshots) but a fresh delta is captured before the same tick's
        publish, so the spectator's chain continues unbroken -- replica
        deltas are shard-agnostic."""
        with BattleSimulation(
            48, density=0.02, seed=23, num_shards=2,
            parallelism="processes", max_workers=2, spectators=True,
        ) as sim:
            with sim.spawn_spectator() as spectator:
                with spectator.client() as client:
                    sim.run(2)
                    assert_epoch_matches(
                        client, sim.engine, sim.engine.tick_count + 1
                    )
                    assert sim.engine.publisher.stats.delta_sends >= 1
                    worker_snapshots = (
                        sim.engine.worker_stats.snapshot_broadcasts
                    )
                    sim.engine.config.num_shards = 3  # mid-run reshard
                    sim.run(2)
                    # workers re-seeded via snapshot; the spectator feed
                    # never needed one beyond the initial join
                    assert (
                        sim.engine.worker_stats.snapshot_broadcasts
                        > worker_snapshots
                    )
                    assert sim.engine.publisher.stats.snapshot_sends == 1
                    assert_epoch_matches(
                        client, sim.engine, sim.engine.tick_count + 1
                    )

    def test_replica_survives_publisher_shutdown(self, battle):
        with battle.spawn_spectator() as spectator:
            with spectator.client() as client:
                battle.tick()
                epoch = battle.engine.tick_count + 1
                wait_for_epoch(client, epoch)
                expected = client.query("team_counts", epoch=epoch)
                battle.close()  # feed gone; replica keeps serving
                deadline = time.monotonic() + 5
                while time.monotonic() < deadline:
                    if not client.status()["feed_alive"]:
                        break
                    time.sleep(0.02)
                answer = client.query("team_counts", epoch="latest")
                assert answer.epoch == epoch
                assert answer.value == expected.value
