"""Shape classification: WHERE conjuncts → index strategies (Section 5.3)."""

from repro.algebra.shapes import (
    classify_action,
    classify_aggregate,
    match_squared_distance,
)
from repro.sgl.parser import parse_term
from repro.sgl.sqlspec import parse_sql_function


def agg_shape(sql):
    return classify_aggregate(parse_sql_function(sql).spec)


def action_shape(sql):
    return classify_action(parse_sql_function(sql).spec)


class TestDivisibleShapes:
    def test_count_over_box(self):
        shape = agg_shape(
            """
            function F(u, r) returns SELECT Count(*) FROM E e
            WHERE e.posx >= u.posx - r AND e.posx <= u.posx + r
              AND e.posy >= u.posy - r AND e.posy <= u.posy + r;
            """
        )
        assert shape.kind == "divisible"
        assert shape.range_attrs == ("posx", "posy")

    def test_neq_player_becomes_anti_join_layer(self):
        shape = agg_shape(
            "function F(u) returns SELECT Count(*) FROM E e "
            "WHERE e.player <> u.player;"
        )
        assert shape.kind == "divisible"
        assert shape.cat_attrs == ("player",)
        assert len(shape.neq_cats) == 1

    def test_eq_categorical_layer(self):
        shape = agg_shape(
            "function F(u) returns SELECT Avg(posx) FROM E e "
            "WHERE e.player = u.player;"
        )
        assert shape.eq_cats[0].attr == "player"

    def test_constant_equality_is_build_filter(self):
        shape = agg_shape(
            "function F(u) returns SELECT Count(*) FROM E e "
            "WHERE e.unittype = 'knight';"
        )
        assert shape.kind == "divisible"
        assert shape.e_only  # no u reference: filtered at build

    def test_e_only_health_filter(self):
        shape = agg_shape(
            "function F(u) returns SELECT Count(*) FROM E e "
            "WHERE e.health < e.max_health AND e.player = u.player;"
        )
        assert shape.kind == "divisible"
        assert len(shape.e_only) == 1

    def test_u_only_conjunct(self):
        shape = agg_shape(
            "function F(u) returns SELECT Count(*) FROM E e "
            "WHERE u.health > 5;"
        )
        assert len(shape.u_only) == 1

    def test_flipped_operand_order(self):
        # bound on the left, e on the right
        shape = agg_shape(
            "function F(u, r) returns SELECT Count(*) FROM E e "
            "WHERE u.posx - r <= e.posx AND e.posx <= u.posx + r;"
        )
        assert shape.kind == "divisible"
        assert shape.ranges[0].attr == "posx"
        assert shape.ranges[0].lowers and shape.ranges[0].uppers

    def test_linear_form_with_offset(self):
        # u.posx - e.posx < r  ==>  e.posx > u.posx - r
        shape = agg_shape(
            "function F(u, r) returns SELECT Count(*) FROM E e "
            "WHERE u.posx - e.posx < r;"
        )
        assert shape.kind == "divisible"
        assert shape.ranges[0].lowers[0].strict

    def test_abs_expansion(self):
        shape = agg_shape(
            "function F(u, r) returns SELECT Count(*) FROM E e "
            "WHERE abs(u.posx - e.posx) <= r AND abs(u.posy - e.posy) <= r;"
        )
        assert shape.kind == "divisible"
        assert shape.range_attrs == ("posx", "posy")
        for constraint in shape.ranges:
            assert constraint.lowers and constraint.uppers

    def test_measure_referencing_u_falls_back(self):
        shape = agg_shape(
            "function F(u) returns SELECT Sum(e.health - u.health) FROM E e;"
        )
        assert shape.kind == "fallback"

    def test_residual_or_demotes(self):
        shape = agg_shape(
            "function F(u) returns SELECT Count(*) FROM E e "
            "WHERE e.posx = u.posx OR e.posy = u.posy;"
        )
        assert shape.kind == "fallback"
        assert shape.residual


class TestExtremeShapes:
    def test_argmin_health_over_box(self):
        shape = agg_shape(
            """
            function F(u, r) returns SELECT ArgMin(health) FROM E e
            WHERE e.posx >= u.posx - r AND e.posx <= u.posx + r
              AND e.posy >= u.posy - r AND e.posy <= u.posy + r;
            """
        )
        assert shape.kind == "extreme"
        assert shape.extreme_kind == "min"
        assert shape.returns_row

    def test_max_value_over_box(self):
        shape = agg_shape(
            """
            function F(u, r) returns SELECT Max(health) FROM E e
            WHERE e.posx >= u.posx - r AND e.posx <= u.posx + r
              AND e.posy >= u.posy - r AND e.posy <= u.posy + r;
            """
        )
        assert shape.kind == "extreme"
        assert shape.extreme_kind == "max"
        assert not shape.returns_row

    def test_open_box_falls_back(self):
        # only one bounded dimension: the sweep needs a full box
        shape = agg_shape(
            "function F(u, r) returns SELECT Min(health) FROM E e "
            "WHERE e.posx >= u.posx - r AND e.posx <= u.posx + r;"
        )
        assert shape.kind == "fallback"

    def test_global_min_falls_back(self):
        shape = agg_shape(
            "function F(u) returns SELECT Min(health) FROM E e;"
        )
        assert shape.kind == "fallback"


class TestNearestShapes:
    def test_argmin_squared_distance(self):
        shape = agg_shape(
            "function F(u) returns SELECT ArgMin((e.posx - u.posx) * "
            "(e.posx - u.posx) + (e.posy - u.posy) * (e.posy - u.posy)) "
            "FROM E e WHERE e.player <> u.player;"
        )
        assert shape.kind == "nearest"
        assert shape.nearest_attrs == ("posx", "posy")

    def test_match_squared_distance_term(self):
        term = parse_term(
            "(e.posx - u.posx) * (e.posx - u.posx) "
            "+ (e.posy - u.posy) * (e.posy - u.posy)"
        )
        match = match_squared_distance(term)
        assert match is not None
        attrs, centers = match
        assert attrs == ("posx", "posy")

    def test_reversed_difference_matches(self):
        term = parse_term(
            "(u.posx - e.posx) * (u.posx - e.posx) "
            "+ (u.posy - e.posy) * (u.posy - e.posy)"
        )
        assert match_squared_distance(term) is not None

    def test_pow_form_matches(self):
        term = parse_term("pow(e.posx - u.posx, 2) + pow(e.posy - u.posy, 2)")
        assert match_squared_distance(term) is not None

    def test_same_attribute_twice_rejected(self):
        term = parse_term(
            "(e.posx - u.posx) * (e.posx - u.posx) "
            "+ (e.posx - u.posy) * (e.posx - u.posy)"
        )
        assert match_squared_distance(term) is None

    def test_non_distance_rejected(self):
        assert match_squared_distance(parse_term("e.posx + e.posy")) is None


class TestActionShapes:
    def test_key_action(self):
        shape = action_shape(
            "function F(u, t) returns SELECT e.key, 1 AS damage FROM E e "
            "WHERE e.key = t;"
        )
        assert shape.kind == "key"

    def test_self_key_action(self):
        shape = action_shape(
            "function F(u, vx) returns SELECT e.key, vx AS movevect_x "
            "FROM E e WHERE e.key = u.key;"
        )
        assert shape.kind == "key"

    def test_aoe_max_aura(self):
        shape = action_shape(
            """
            function F(u) returns
            SELECT e.key, nonsql_max(e.inaura, _HEAL_AURA) AS inaura
            FROM E e
            WHERE u.player = e.player
              AND abs(u.posx - e.posx) <= _R AND abs(u.posy - e.posy) <= _R;
            """
        )
        assert shape.kind == "aoe"
        assert shape.effect_attr == "inaura"
        assert shape.cat_attrs == ("player",)

    def test_aoe_sum_damage(self):
        shape = action_shape(
            """
            function F(u) returns
            SELECT e.key, e.damage + 2 AS damage
            FROM E e
            WHERE abs(u.posx - e.posx) <= _R AND abs(u.posy - e.posy) <= _R;
            """
        )
        assert shape.kind == "aoe"

    def test_e_dependent_effect_scans(self):
        shape = action_shape(
            """
            function F(u) returns
            SELECT e.key, e.damage + e.armor AS damage
            FROM E e
            WHERE abs(u.posx - e.posx) <= _R AND abs(u.posy - e.posy) <= _R;
            """
        )
        assert shape.kind == "scan"

    def test_multi_effect_scans(self):
        shape = action_shape(
            """
            function F(u) returns
            SELECT e.key, 1 AS damage, 2 AS inaura
            FROM E e
            WHERE abs(u.posx - e.posx) <= _R AND abs(u.posy - e.posy) <= _R;
            """
        )
        assert shape.kind == "scan"

    def test_battle_actions(self):
        from repro.game.scripts import build_registry

        registry = build_registry()
        kinds = {
            name: classify_action(fn.spec).kind
            for name, fn in registry.actions.items()
        }
        assert kinds == {
            "MoveInDirection": "key",
            "FireAt": "key",
            "UseWeapon": "key",
            "Heal": "aoe",
        }

    def test_battle_aggregates(self):
        from repro.game.scripts import build_registry

        registry = build_registry()
        kinds = {
            name: classify_aggregate(fn.spec).kind
            for name, fn in registry.aggregates.items()
        }
        assert kinds["CountEnemiesInRange"] == "divisible"
        assert kinds["WeakestEnemyInRange"] == "extreme"
        assert kinds["NearestEnemy"] == "nearest"
        assert "fallback" not in kinds.values()
