"""Algebraic laws of Figure 7 as property tests.

Rule (10): for keyed environment tables with equal key sets,
``R1⊕ ⊕ R2⊕ = π(R1⊕ ⊲⊳K R2⊕)`` -- combining keyed tables is a key join
that merges effect columns pairwise.  We verify the law extensionally:
the join-based implementation equals the ⊕ implementation on random
keyed tables.

Rule (8) (sharing an extension between an aggregate and its consumer)
is covered structurally by the executor memoisation tests; here we add
its extensional core: extending twice vs extending a shared input once
yields the same rows.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.combine import combine, combine_pair
from repro.env.schema import Attribute, AttributeType, Schema
from repro.env.table import EnvironmentTable

SCHEMA = Schema(
    [
        Attribute("key", AttributeType.CONST),
        Attribute("damage", AttributeType.SUM),
        Attribute("aura", AttributeType.MAX, default=0),
    ]
)

_COMBINE = {
    "damage": lambda a, b: a + b,
    "aura": max,
}


def keyed_table(values):
    """One row per key: a keyed environment table (R = R⊕)."""
    table = EnvironmentTable(SCHEMA)
    for key, (damage, aura) in enumerate(values):
        table.rows.append({"key": key, "damage": damage, "aura": aura})
    return table


def join_combine(left, right):
    """Rule (10): ⊕ of keyed tables as a key join merging effects."""
    right_by_key = right.by_key()
    out = EnvironmentTable(SCHEMA)
    for row in left:
        other = right_by_key[row["key"]]
        merged = {"key": row["key"]}
        for attr, fn in _COMBINE.items():
            merged[attr] = fn(row[attr], other[attr])
        out.rows.append(merged)
    return out


values_strategy = st.lists(
    st.tuples(st.integers(-10, 10), st.integers(0, 10)),
    min_size=0, max_size=15,
)


@settings(max_examples=150, deadline=None)
@given(values_strategy, values_strategy)
def test_rule_10_oplus_as_key_join(left_vals, right_vals):
    # align key sets: rule (10) requires πK(R1) = πK(R2)
    size = min(len(left_vals), len(right_vals))
    left = keyed_table(left_vals[:size])
    right = keyed_table(right_vals[:size])
    assert combine_pair(left, right) == join_combine(left, right)


@settings(max_examples=100, deadline=None)
@given(values_strategy)
def test_keyed_table_is_oplus_fixpoint(values):
    # "when K is a key for R ... R = ⊕R"
    table = keyed_table(values)
    assert combine(table) == table


@settings(max_examples=100, deadline=None)
@given(values_strategy, values_strategy, values_strategy)
def test_rule_10_composes_with_associativity(a_vals, b_vals, c_vals):
    size = min(len(a_vals), len(b_vals), len(c_vals))
    a = keyed_table(a_vals[:size])
    b = keyed_table(b_vals[:size])
    c = keyed_table(c_vals[:size])
    via_oplus = combine_pair(combine_pair(a, b), c)
    via_join = join_combine(join_combine(a, b), c)
    assert via_oplus == via_join


def test_rule_8_shared_extension_rows_identical(registry, schema):
    """Extending a shared input once == extending per consumer."""
    from repro.algebra.executor import PlanExecutor
    from repro.algebra.ops import AggExtend, Select
    from repro.sgl.ast import Compare, Name, Num
    from repro.sgl.interp import NaiveAggregateEvaluator
    from repro.sgl.parser import parse_term
    from repro.algebra.ops import ScanE
    from tests.conftest import make_env

    env = make_env(schema, n=10)
    call = parse_term("CountEnemiesInRange(u, 6)")
    scan = ScanE(param="u")

    shared = AggExtend(scan, "c", call)
    branch_a = Select(shared, Compare(">", Name("c"), Num(0)))
    branch_b = Select(shared, Compare("=", Name("c"), Num(0)))

    separate_a = Select(
        AggExtend(scan, "c", call), Compare(">", Name("c"), Num(0))
    )
    separate_b = Select(
        AggExtend(scan, "c", call), Compare("=", Name("c"), Num(0))
    )

    shared_exec = PlanExecutor(
        env, registry, NaiveAggregateEvaluator(), lambda row, i: 0
    )
    rows_shared = (
        shared_exec._units(branch_a)[0] + shared_exec._units(branch_b)[0]
    )
    separate_exec = PlanExecutor(
        env, registry, NaiveAggregateEvaluator(), lambda row, i: 0
    )
    rows_separate = (
        separate_exec._units(separate_a)[0]
        + separate_exec._units(separate_b)[0]
    )
    assert sorted(r["key"] for r in rows_shared) == sorted(
        r["key"] for r in rows_separate
    )
    # shared: scan + one AggExtend + two selects; separate pays one more
    # AggExtend for the duplicated subtree
    assert shared_exec.ops_evaluated == 4
    assert separate_exec.ops_evaluated == 5
