"""SGL → algebra translation and set-at-a-time execution (Section 5.1).

The load-bearing property: for every script, the algebra executor --
raw plan, optimized plan, naive or indexed aggregate evaluation --
produces exactly the table the reference interpreter produces.
"""

import pytest

from repro.algebra.executor import PlanExecutor, execute_plan
from repro.algebra.ops import AggExtend, Apply, Combine, ScanE, Select
from repro.algebra.rewrite import optimize
from repro.algebra.translate import translate_script
from repro.engine.evaluator import IndexedEvaluator
from repro.sgl.interp import NaiveAggregateEvaluator, reference_tick
from repro.sgl.parser import parse_script
from tests.conftest import make_env


def rng_for(seed=0):
    return lambda row, i: (hash((seed, row["key"], i)) & 0xFFFF)


def check_equivalence(source, registry, schema, n=16, seed=0):
    env = make_env(schema, n=n, seed=seed)
    script = parse_script(source)
    rng = rng_for(seed)
    reference = reference_tick(env, lambda u: script, registry, rng)

    plan = translate_script(script, registry)
    optimized = optimize(plan, registry)
    for label, p in (("raw", plan), ("optimized", optimized)):
        got = execute_plan(p, env, registry, NaiveAggregateEvaluator(), rng)
        assert got == reference, f"{label} plan diverges"

    indexed = IndexedEvaluator(registry)
    indexed.begin_tick(env)
    got = execute_plan(optimized, env, registry, indexed, rng)
    assert got == reference, "indexed execution diverges"
    return optimized


class TestTranslationShapes:
    def test_perform_becomes_apply_over_scan(self, registry):
        plan = translate_script(
            parse_script("main(u) { perform UseWeapon(u) }"), registry
        )
        assert isinstance(plan, Combine) and plan.include_e
        (apply_node,) = plan.inputs
        assert isinstance(apply_node, Apply)
        assert isinstance(apply_node.child, ScanE)

    def test_if_becomes_select(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { if u.health > 0 then perform UseWeapon(u) }"
            ),
            registry,
        )
        (apply_node,) = plan.inputs
        assert isinstance(apply_node.child, Select)

    def test_let_aggregate_becomes_agg_extend(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { (let c = CountEnemiesInRange(u, 5)) "
                "if c > 0 then perform UseWeapon(u) }"
            ),
            registry,
        )
        (apply_node,) = plan.inputs
        select = apply_node.child
        assert isinstance(select.child, AggExtend)

    def test_if_else_shares_child(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { (let c = CountEnemiesInRange(u, 5)) "
                "if c > 0 then perform UseWeapon(u) "
                "else perform MoveInDirection(u, 1, 0) }"
            ),
            registry,
        )
        then_apply, else_apply = plan.inputs
        # rule 9: σφ and σ¬φ over the same (identical object) input
        assert then_apply.child.child is else_apply.child.child

    def test_defined_functions_inline(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { perform Helper(u) } "
                "Helper(w) { perform UseWeapon(w) }"
            ),
            registry,
        )
        (apply_node,) = plan.inputs
        assert apply_node.action == "UseWeapon"

    def test_unbounded_recursion_rejected(self, registry):
        from repro.sgl.errors import SglTypeError

        with pytest.raises(SglTypeError):
            translate_script(
                parse_script("main(u) { perform main(u) }"), registry
            )


class TestExecutionEquivalence:
    def test_idle_script(self, registry, schema):
        check_equivalence("main(u) { }", registry, schema)

    def test_unconditional_action(self, registry, schema):
        check_equivalence("main(u) { perform UseWeapon(u) }", registry, schema)

    def test_conditional_on_attribute(self, registry, schema):
        check_equivalence(
            "main(u) { if u.player = 0 then perform MoveInDirection(u, 1, 0) "
            "else perform MoveInDirection(u, 0 - 1, 0) }",
            registry, schema,
        )

    def test_aggregate_condition(self, registry, schema):
        check_equivalence(
            "main(u) { (let c = CountEnemiesInRange(u, 10)) "
            "if c > 1 then perform UseWeapon(u) }",
            registry, schema,
        )

    def test_argmin_target(self, registry, schema):
        check_equivalence(
            "main(u) { (let t = NearestEnemy(u)) perform FireAt(u, t.key) }",
            registry, schema,
        )

    def test_random_in_action(self, registry, schema):
        check_equivalence(
            "main(u) { (let t = NearestEnemy(u)) perform FireAt(u, t.key) }",
            registry, schema, seed=3,
        )

    def test_figure_3(self, registry, schema):
        from repro.game.scripts import FIGURE_3_SCRIPT

        check_equivalence(FIGURE_3_SCRIPT, registry, schema, n=20)

    @pytest.mark.parametrize("script_name", ["knight", "archer", "healer"])
    def test_battle_scripts(self, registry, schema, script_name):
        from repro.game.scripts import (
            ARCHER_SCRIPT,
            HEALER_SCRIPT,
            KNIGHT_SCRIPT,
        )

        source = {
            "knight": KNIGHT_SCRIPT,
            "archer": ARCHER_SCRIPT,
            "healer": HEALER_SCRIPT,
        }[script_name]
        check_equivalence(source, registry, schema, n=20, seed=4)

    def test_memoisation_counts_shared_nodes_once(self, registry, schema):
        env = make_env(schema, n=8)
        script = parse_script(
            "main(u) { (let c = CountEnemiesInRange(u, 5)) "
            "if c > 0 then perform UseWeapon(u) "
            "else perform MoveInDirection(u, 1, 0) }"
        )
        plan = translate_script(script, registry)
        executor = PlanExecutor(
            env, registry, NaiveAggregateEvaluator(), rng_for()
        )
        executor.run(plan)
        # ScanE + AggExtend + 2×Select + 2×Apply = 6 operator evaluations;
        # without sharing the AggExtend/ScanE would run twice
        assert executor.ops_evaluated == 6
