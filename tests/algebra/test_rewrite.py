"""Plan rewrites: Figure 7 rules and the Example 5.1 walkthrough."""

from repro.algebra.executor import execute_plan
from repro.algebra.ops import AggExtend, Apply, Combine, plan_signature
from repro.algebra.rewrite import (
    elide_e,
    optimize,
    prune_unused_columns,
    sharing_report,
)
from repro.algebra.translate import translate_script
from repro.sgl.interp import NaiveAggregateEvaluator, reference_tick
from repro.sgl.parser import parse_script
from tests.conftest import make_env


def agg_extends_on_path(plan):
    """Per Combine input, the aggregate columns computed on that path."""
    out = []
    for child in plan.inputs:
        names = set()
        node = child
        while True:
            if isinstance(node, AggExtend):
                names.add(node.name)
            children = node.children()
            if not children:
                break
            node = children[0]
        out.append(names)
    return out


class TestPruning:
    def test_figure6_a_to_b_drops_agg2_from_else_branch(self, registry):
        # Figure 3: away_vector (agg2) is used only in the then-branch
        from repro.game.scripts import FIGURE_3_SCRIPT

        plan = translate_script(parse_script(FIGURE_3_SCRIPT), registry)
        pruned = prune_unused_columns(plan)
        raw_paths = agg_extends_on_path(plan)
        pruned_paths = agg_extends_on_path(pruned)

        def has_centroid(names):
            return any(n.startswith("__centroidof") for n in names)

        # before: the centroid aggregate (agg2) sits below every branch
        assert all(has_centroid(names) for names in raw_paths)
        # after: only the flee branch computes it
        assert has_centroid(pruned_paths[0])
        assert not any(has_centroid(names) for names in pruned_paths[1:])

    def test_unused_let_disappears(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { (let unused = CountEnemiesInRange(u, 5)) "
                "perform UseWeapon(u) }"
            ),
            registry,
        )
        pruned = prune_unused_columns(plan)
        assert agg_extends_on_path(pruned) == [set()]

    def test_used_let_survives(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { (let c = CountEnemiesInRange(u, 5)) "
                "if c > 0 then perform UseWeapon(u) }"
            ),
            registry,
        )
        pruned = prune_unused_columns(plan)
        assert agg_extends_on_path(pruned) == [{"c"}]

    def test_pruning_preserves_semantics(self, registry, schema):
        from repro.game.scripts import FIGURE_3_SCRIPT

        env = make_env(schema, n=18, seed=2)
        script = parse_script(FIGURE_3_SCRIPT)
        rng = lambda row, i: (hash((row["key"], i)) & 0xFFFF)  # noqa: E731
        plan = translate_script(script, registry)
        pruned = prune_unused_columns(plan)
        a = execute_plan(plan, env, registry, NaiveAggregateEvaluator(), rng)
        b = execute_plan(pruned, env, registry, NaiveAggregateEvaluator(), rng)
        assert a == b

    def test_pruning_keeps_sharing(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { (let c = CountEnemiesInRange(u, 5)) "
                "if c > 0 then perform UseWeapon(u) "
                "else perform MoveInDirection(u, 1, 0) }"
            ),
            registry,
        )
        pruned = prune_unused_columns(plan)
        report = sharing_report(pruned)
        assert report["shared_nodes"] >= 1


class TestEElision:
    def test_unconditional_self_move_elides_e(self, registry, schema):
        # every unit moves: act⊕(R) ⊕ R = act⊕(R) (Example 5.1 step 2)
        plan = translate_script(
            parse_script("main(u) { perform MoveInDirection(u, 1, 0) }"),
            registry,
        )
        elided = elide_e(plan, registry)
        assert not elided.include_e

    def test_elision_preserves_semantics(self, registry, schema):
        env = make_env(schema, n=12)
        script = parse_script("main(u) { perform MoveInDirection(u, 1, 0) }")
        rng = lambda row, i: 0  # noqa: E731
        reference = reference_tick(env, lambda u: script, registry, rng)
        plan = translate_script(script, registry)
        elided = elide_e(plan, registry)
        got = execute_plan(
            elided, env, registry, NaiveAggregateEvaluator(), rng
        )
        assert got == reference

    def test_conditional_action_keeps_e(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { if u.player = 0 then "
                "perform MoveInDirection(u, 1, 0) }"
            ),
            registry,
        )
        assert elide_e(plan, registry).include_e

    def test_non_self_action_keeps_e(self, registry):
        plan = translate_script(
            parse_script("main(u) { perform FireAt(u, 3) }"), registry
        )
        assert elide_e(plan, registry).include_e

    def test_aoe_action_keeps_e(self, registry):
        plan = translate_script(
            parse_script("main(u) { perform Heal(u) }"), registry
        )
        assert elide_e(plan, registry).include_e


class TestOptimizePipeline:
    def test_optimize_composes_rules(self, registry):
        plan = translate_script(
            parse_script(
                "main(u) { (let unused = CountEnemiesInRange(u, 5)) "
                "perform MoveInDirection(u, 1, 0) }"
            ),
            registry,
        )
        optimized = optimize(plan, registry)
        assert not optimized.include_e            # E elided
        assert agg_extends_on_path(optimized) == [set()]  # column pruned

    def test_signature_rendering(self, registry):
        plan = translate_script(
            parse_script("main(u) { perform UseWeapon(u) }"), registry
        )
        signature = plan_signature(plan)
        assert "UseWeapon⊕" in signature and "⊎ E" in signature

    def test_optimized_battle_scripts_stay_equivalent(self, registry, schema):
        from repro.game.scripts import KNIGHT_SCRIPT

        env = make_env(schema, n=16, seed=6)
        script = parse_script(KNIGHT_SCRIPT)
        rng = lambda row, i: (hash((row["key"], i)) & 0xFFFF)  # noqa: E731
        reference = reference_tick(env, lambda u: script, registry, rng)
        optimized = optimize(translate_script(script, registry), registry)
        got = execute_plan(
            optimized, env, registry, NaiveAggregateEvaluator(), rng
        )
        assert got == reference
