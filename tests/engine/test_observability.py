"""End-to-end observability: bit-identical trajectories, registry-backed
stat views, epoch-correlated traces, the watchdog, and the ops endpoints.

The layer's contract is "read-only diagnostics": every test here first
holds the trajectory fixed (state signatures with observability off vs
on), then checks the diagnostics themselves -- the registry mirrors the
ad-hoc stat surfaces it absorbed, traces cover every pipeline stage with
the owning epoch, and the live endpoints (Prometheus scrape, spectator
``metrics`` query) serve the same numbers.
"""

import json
import time
import urllib.request

import pytest

from repro.game.battle import BattleSimulation
from repro.obs import NULL_REGISTRY, load_trace


def signature(ticks=6, n=48, **kwargs):
    with BattleSimulation(n, density=0.02, seed=11, **kwargs) as sim:
        sim.run(ticks)
        return sim.state_signature()


# -- trajectories are bit-identical with observability on ---------------------


def test_metrics_do_not_perturb_trajectory():
    assert signature() == signature(metrics=True)


def test_trace_and_watchdog_do_not_perturb_trajectory(tmp_path):
    assert signature() == signature(
        metrics=True,
        trace_path=str(tmp_path / "trace.json"),
        slow_tick_factor=1000.0,
    )


def test_incremental_maintenance_trajectory_with_metrics():
    base = signature(index_maintenance="incremental")
    assert base == signature(index_maintenance="incremental", metrics=True)


# -- disabled metrics are a true no-op ----------------------------------------


def test_disabled_engine_uses_the_shared_null_registry():
    with BattleSimulation(32, density=0.02) as sim:
        engine = sim.engine
        assert engine.metrics is NULL_REGISTRY
        assert sim.metrics is NULL_REGISTRY
        # every pre-resolved instrument is the shared null cell -- the
        # hot path mutates one dead object, allocating nothing per tick
        assert engine._m_ticks is NULL_REGISTRY.counter("anything")
        assert engine._m_tick_seconds is NULL_REGISTRY.histogram("x")
        sim.run(3)
        assert NULL_REGISTRY.snapshot() == {}
        assert engine.trace is None
        assert engine.watchdog is None
        with pytest.raises(RuntimeError):
            sim.serve_metrics()


# -- the registry absorbs the ad-hoc stat surfaces ----------------------------


def test_evaluator_stats_stay_dict_compatible_and_mirror_registry():
    with BattleSimulation(48, density=0.02, metrics=True) as sim:
        sim.run(5)
        stats = sim.engine.agg_eval.stats
        snap = sim.metrics.snapshot()
        assert stats, "evaluator accumulated no counters"
        # the old dict accessors and the registry see the same numbers
        for key, value in dict(stats).items():
            assert snap[f"evaluator_{key}"] == value
        assert stats.get("nonexistent", 0) == 0


def test_tickstats_fields_mirror_registry_series():
    with BattleSimulation(48, density=0.02, metrics=True) as sim:
        stats_list = [sim.tick() for _ in range(5)]
        snap = sim.metrics.snapshot()
        assert snap["ticks_total"] == 5
        assert snap["epoch"] == stats_list[-1].tick + 1
        assert snap["effect_rows_total"] == sum(
            s.effect_rows for s in stats_list
        )
        assert snap["tick_seconds:count"] == 5
        assert snap["tick_seconds:sum"] == pytest.approx(
            sum(s.total_time for s in stats_list)
        )
        assert snap['stage_seconds{stage="decision"}:sum'] == pytest.approx(
            sum(s.decision_time for s in stats_list)
        )
        assert snap["log_bytes_total"] == sum(s.log_bytes for s in stats_list)


def test_worker_stats_mirror_registry(tmp_path):
    with BattleSimulation(
        48, density=0.02, num_shards=2, parallelism="processes", metrics=True
    ) as sim:
        sim.run(4)
        pool_stats = sim.engine.worker_stats
        snap = sim.metrics.snapshot()
        # the old attribute accessors still work and match the registry
        assert pool_stats.ticks == 4
        assert snap["worker_ticks"] == 4
        assert pool_stats.delta_broadcasts == snap["worker_delta_broadcasts"]
        assert pool_stats.bytes_broadcast == snap["worker_bytes_broadcast"]
        assert pool_stats.last_tick_bytes == snap["worker_last_tick_bytes"]


def test_publisher_and_epochlog_stats_mirror_registry(tmp_path):
    log = tmp_path / "epochs.log"
    with BattleSimulation(
        32, density=0.02, spectators=True, epoch_log=str(log), metrics=True
    ) as sim:
        spec = sim.spawn_spectator()
        try:
            sim.run(4)
            snap = sim.metrics.snapshot()
            pub = sim.engine.publisher.stats
            assert pub.ticks == snap["publisher_ticks"] == 4
            assert pub.subscribers_accepted == 1
            assert snap["publisher_subscribers_accepted"] == 1
            assert pub.bytes_sent == snap["publisher_bytes_sent"] > 0
            logstats = sim.engine.epoch_log.stats
            assert logstats.records == snap["epochlog_records"] > 0
            assert logstats.last_epoch == snap["epochlog_last_epoch"]
        finally:
            spec.close()


# -- tracing: every stage, worker round trip, publish, and log write ----------


def test_serial_trace_covers_the_stage_pipeline(tmp_path):
    path = tmp_path / "trace.json"
    with BattleSimulation(48, density=0.02, trace_path=str(path)) as sim:
        sim.run(4)
    events = json.loads(path.read_text())  # clean close => strict JSON
    spans = [e for e in events if e["ph"] == "X"]
    names = {e["name"] for e in spans}
    assert {
        "tick", "partition", "maintenance", "decision", "aoe", "combine",
        "mechanics",
    } <= names
    # every span is epoch-stamped, and the stage spans nest inside their
    # tick's parent span on the shared perf_counter clock
    assert all("epoch" in e["args"] for e in spans)
    ticks = {
        e["args"]["epoch"]: (e["ts"], e["ts"] + e["dur"])
        for e in spans
        if e["name"] == "tick"
    }
    assert len(ticks) == 4
    for e in spans:
        if e["name"] == "tick" or e["tid"] != 0:
            continue
        lo, hi = ticks[e["args"]["epoch"]]
        assert lo - 0.01 <= e["ts"] and e["ts"] + e["dur"] <= hi + 0.01


def test_distributed_trace_covers_workers_publish_and_log(tmp_path):
    path = tmp_path / "trace.json"
    log = tmp_path / "epochs.log"
    with BattleSimulation(
        48,
        density=0.02,
        num_shards=2,
        parallelism="processes",
        spectators=True,
        epoch_log=str(log),
        epoch_log_fsync="always",
        trace_path=str(path),
    ) as sim:
        spec = sim.spawn_spectator()
        try:
            sim.run(4)
        finally:
            spec.close()
    events = load_trace(str(path))
    spans = [e for e in events if e["ph"] == "X"]
    names = {e["name"] for e in spans}
    assert {
        "tick", "partition", "decision", "aoe", "combine", "mechanics",
        "publish", "log_append",                       # coordinator stages
        "worker_rtt",                                  # per-worker row
        "publish_send",                                # per-subscriber send
        "log_encode", "log_write", "log_fsync",        # epoch-log writer
    } <= names
    assert all("epoch" in e["args"] for e in spans)
    # worker round trips land on per-worker tracks, correlated by epoch
    rtt = [e for e in spans if e["name"] == "worker_rtt"]
    assert {e["tid"] for e in rtt} == {10, 11}
    assert {e["args"]["worker"] for e in rtt} == {0, 1}
    # the publisher names its peer and payload mode
    sends = [e for e in spans if e["name"] == "publish_send"]
    assert sends and all(e["tid"] == 1 for e in sends)
    assert {e["args"]["mode"] for e in sends} <= {"delta", "snapshot"}
    # fsync spans exist for every appended epoch under fsync="always",
    # on the log-writer track
    fsyncs = [e for e in spans if e["name"] == "log_fsync"]
    assert {e["tid"] for e in fsyncs} == {2}
    assert {e["args"]["epoch"] for e in fsyncs} >= {2, 3, 4, 5}
    # the track metadata names the logical rows
    tracks = {
        e["tid"]: e["args"]["name"]
        for e in events
        if e["ph"] == "M" and e["name"] == "thread_name"
    }
    assert "worker 0" in tracks[10]
    assert "publisher" in tracks[1]
    assert "log" in tracks[2]


# -- the watchdog -------------------------------------------------------------


def test_watchdog_flags_an_injected_stall(tmp_path):
    path = tmp_path / "trace.json"
    with BattleSimulation(
        32,
        density=0.02,
        metrics=True,
        trace_path=str(path),
        slow_tick_factor=5.0,
    ) as sim:
        real_mechanics = sim.engine.mechanics
        stall_at = {"tick": 6}

        def stalling_mechanics(env, rng, tick):
            if tick == stall_at["tick"]:
                time.sleep(0.25)
            return real_mechanics(env, rng, tick)

        sim.engine.mechanics = stalling_mechanics
        sim.run(8)
        dog = sim.engine.watchdog
        assert [f["tick"] for f in dog.flagged] == [6]
        (flag,) = dog.flagged
        assert flag["breakdown"]["mechanics"] >= 0.25
        assert sim.metrics.snapshot()["watchdog_slow_ticks_total"] == 1
    instants = [
        e for e in load_trace(str(path))
        if e["ph"] == "i" and e["name"] == "slow_tick"
    ]
    assert len(instants) == 1
    assert instants[0]["args"]["epoch"] == 7  # post-tick epoch of tick 6


def test_watchdog_quiet_on_a_clean_run():
    with BattleSimulation(
        32, density=0.02, metrics=True, slow_tick_factor=1000.0
    ) as sim:
        sim.run(8)
        assert sim.engine.watchdog.flagged == []
        assert sim.metrics.snapshot()["watchdog_slow_ticks_total"] == 0


def test_bad_slow_tick_factor_rejected():
    with pytest.raises(ValueError):
        BattleSimulation(16, slow_tick_factor=1.0)


# -- the live ops endpoints ---------------------------------------------------


def test_prometheus_endpoint_serves_live_numbers():
    with BattleSimulation(32, density=0.02, metrics=True) as sim:
        sim.run(3)
        host, port = sim.serve_metrics()
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=5
        ) as resp:
            body = resp.read().decode()
        assert "repro_ticks_total 3" in body
        sim.run(2)
        with urllib.request.urlopen(
            f"http://{host}:{port}/metrics", timeout=5
        ) as resp:
            assert "repro_ticks_total 5" in resp.read().decode()
        # double-serve is refused, the address is introspectable
        assert sim.engine.metrics_address == (host, port)
        with pytest.raises(RuntimeError):
            sim.serve_metrics()


def test_spectator_metrics_query():
    with BattleSimulation(32, density=0.02, spectators=True) as sim:
        spec = sim.spawn_spectator()
        try:
            sim.run(4)
            with spec.client() as client:
                reply = client.metrics()
            snap = reply["snapshot"]
            assert snap["spectator_epoch"] == 5  # post-tick epoch of tick 4
            assert snap["spectator_feed_alive"] == 1
            applied = (
                snap["spectator_updates_applied_total"]
                + snap["spectator_snapshots_applied_total"]
            )
            assert applied >= 4
            assert "spectator_epoch" in reply["prometheus"]
        finally:
            spec.close()
