"""AoE ⊕ optimisation (Section 5.4) and Example 4.1 post-processing."""

import pytest

from repro.algebra.shapes import classify_action
from repro.engine.decision import DecisionRunner
from repro.engine.effects import AoeRecord, resolve_aoe
from repro.engine.evaluator import NaiveEvaluator
from repro.engine.postprocess import example_41_postprocess
from repro.engine.rng import TickRandom
from repro.env.combine import combine_all
from repro.env.table import EnvironmentTable
from repro.sgl.evalterm import EvalContext
from repro.sgl.parser import parse_script
from tests.conftest import make_env


def heal_shapes(registry):
    return {
        name: classify_action(fn.spec)
        for name, fn in registry.actions.items()
        if fn.spec is not None
    }


def run_decisions(script_src, env, registry, *, defer_aoe):
    script = parse_script(script_src)
    runner = DecisionRunner(
        script, registry, index_actions=True, defer_aoe=defer_aoe
    )
    rng = TickRandom(3, tick=1)
    rows, aoe = [], []
    by_key = env.by_key()

    def ctx_factory(unit):
        return EvalContext(
            env=env, registry=registry, agg_eval=NaiveEvaluator(),
            rng=rng, bindings={}, unit=unit,
        )

    for unit in env.rows:
        runner.run_unit(unit, ctx_factory, by_key, rows, aoe)
    return rows, aoe


class TestAoeEquivalence:
    def combined(self, env, registry, rows, aoe):
        if aoe:
            rows = rows + resolve_aoe(
                aoe, env.rows, env.schema, heal_shapes(registry),
                registry.constants,
            )
        effects = EnvironmentTable(env.schema)
        effects.rows.extend(rows)
        return combine_all([env, effects], env.schema)

    def test_heal_deferred_equals_scan(self, registry, schema):
        env = make_env(schema, n=30, grid=15, seed=4)
        script = "main(u) { if u.unittype = 'healer' then perform Heal(u) }"
        scan_rows, scan_aoe = run_decisions(
            script, env, registry, defer_aoe=False
        )
        assert not scan_aoe
        deferred_rows, deferred_aoe = run_decisions(
            script, env, registry, defer_aoe=True
        )
        assert deferred_aoe  # healers were deferred
        a = self.combined(env, registry, scan_rows, [])
        b = self.combined(env, registry, deferred_rows, deferred_aoe)
        assert a == b

    def test_overlapping_auras_nonstackable(self, registry, schema):
        # two healers whose auras overlap: a unit in both gets ONE aura
        env = make_env(schema, n=12, grid=8, seed=1)
        for row in env.rows:
            row["player"] = 0
        env.rows[0]["unittype"] = "healer"
        env.rows[1]["unittype"] = "healer"
        script = "main(u) { if u.unittype = 'healer' then perform Heal(u) }"
        rows, aoe = run_decisions(script, env, registry, defer_aoe=True)
        combined = self.combined(env, registry, rows, aoe)
        heal = registry.constants["_HEAL_AURA"]
        for row in combined:
            assert row["inaura"] in (0, heal)  # never 2×heal

    def test_aoe_respects_player_partition(self, registry, schema):
        env = make_env(schema, n=20, grid=10, seed=2)
        for row in env.rows:
            row["unittype"] = "knight"  # exactly one healer below
        env.rows[0]["unittype"] = "healer"
        script = "main(u) { if u.unittype = 'healer' then perform Heal(u) }"
        rows, aoe = run_decisions(script, env, registry, defer_aoe=True)
        combined = self.combined(env, registry, rows, aoe)
        healer_player = env.rows[0]["player"]
        for row in combined:
            if row["inaura"] > 0:
                assert row["player"] == healer_player

    def test_empty_records(self, registry, schema):
        env = make_env(schema, n=5)
        assert resolve_aoe([], env.rows, schema, {}, {}) == []

    def test_sum_tagged_aoe_accumulates(self, registry, schema):
        env = make_env(schema, n=6, grid=5, seed=3)
        shapes = heal_shapes(registry)
        record = AoeRecord(
            action="Heal", attr="inaura", value=3,
            center=(2.0, 2.0), extents=(10.0, 10.0),
            eq_vals=(0,), neq_vals=(),
        )
        out = resolve_aoe(
            [record, record], env.rows, schema, shapes, registry.constants
        )
        # max-tagged inaura: two identical records still give 3
        assert all(r["inaura"] == 3 for r in out)


class TestExample41:
    def make_combined(self, schema, **overrides):
        env = make_env(schema, n=1)
        row = env.rows[0]
        row.update(overrides)
        return env

    def test_damage_reduces_health(self, schema):
        env = self.make_combined(schema, health=10, damage=4)
        out = example_41_postprocess(env)
        assert out.rows[0]["health"] == 6

    def test_aura_heals(self, schema):
        env = self.make_combined(schema, health=5, max_health=10, inaura=3)
        out = example_41_postprocess(env)
        assert out.rows[0]["health"] == 8

    def test_healing_clamped_at_max(self, schema):
        env = self.make_combined(schema, health=9, max_health=10, inaura=5)
        out = example_41_postprocess(env)
        assert out.rows[0]["health"] == 10

    def test_dead_removed(self, schema):
        env = self.make_combined(schema, health=3, damage=5)
        out = example_41_postprocess(env)
        assert len(out) == 0

    def test_cooldown_decrements_and_reload(self, schema):
        env = self.make_combined(schema, cooldown=3)
        out = example_41_postprocess(env, time_reload=2)
        assert out.rows[0]["cooldown"] == 2
        env = self.make_combined(schema, cooldown=0, weaponused=1)
        out = example_41_postprocess(env, time_reload=2)
        assert out.rows[0]["cooldown"] == 1  # 0 - 1 + 1*2, floored at 0

    def test_movement_normalised(self, schema):
        env = self.make_combined(
            schema, posx=0, posy=0, movevect_x=3.0, movevect_y=4.0
        )
        out = example_41_postprocess(env, walk_dist_per_tick=1.0)
        row = out.rows[0]
        assert row["posx"] == pytest.approx(0.6)
        assert row["posy"] == pytest.approx(0.8)

    def test_short_move_not_overshot(self, schema):
        env = self.make_combined(
            schema, posx=0, posy=0, movevect_x=0.5, movevect_y=0.0
        )
        out = example_41_postprocess(env, walk_dist_per_tick=2.0)
        assert out.rows[0]["posx"] == pytest.approx(0.5)

    def test_effect_attributes_reset(self, schema):
        env = self.make_combined(schema, damage=2, movevect_x=1.0)
        out = example_41_postprocess(env)
        row = out.rows[0]
        assert row["damage"] == 0 and row["movevect_x"] == 0
