"""Replica-holding process workers: the epoch-versioned delta protocol.

Two layers of coverage:

* the **wire format** (`ReplicaDelta` encode/apply) is exercised
  in-process: sparse attribute patches, keys-only deletes, elided row
  order, cross-shard move classification, and the stale-epoch guard;
* the **fault paths** drive real worker processes through genuine
  failures -- a drifted replica epoch, a killed-and-respawned worker, a
  mid-run shard-count change -- and assert the battle trajectory stays
  bit-identical to the flat serial engine, because every recovery
  degrades to a snapshot broadcast, never to wrong answers.
"""

import pytest

from repro.env.sharding import (
    StaleReplicaError,
    apply_replica_delta,
    encode_replica_delta,
    make_sharder,
)
from repro.env.table import EnvironmentTable, diff_by_key
from repro.game.battle import BattleSimulation
from tests.conftest import make_env


def battle_signature(ticks=4, **kwargs):
    with BattleSimulation(48, density=0.02, **kwargs) as sim:
        sim.run(ticks)
        return sim.state_signature()


def encode(old, new, shard_of=None, base_epoch=0, epoch=1):
    delta = diff_by_key(old, new)
    assert delta is not None
    return encode_replica_delta(
        delta,
        old_order=[r["key"] for r in old.rows],
        new_order=[r["key"] for r in new.rows],
        key_attr="key",
        base_epoch=base_epoch,
        epoch=epoch,
        shard_of=shard_of,
    )


def evolved(env, mutate):
    out = EnvironmentTable(env.schema)
    out.rows.extend(dict(r) for r in env.rows)
    mutate(out.rows)
    return out


class TestReplicaDeltaWireFormat:
    def test_sparse_updates_and_keys_only_deletes(self, schema):
        env = make_env(schema, n=10, grid=30, seed=1)

        def mutate(rows):
            rows[3]["posx"] += 1
            rows[3]["health"] -= 5
            del rows[7]

        new = evolved(env, mutate)
        rd = encode(env, new)
        assert rd.deleted_keys == [env.rows[7]["key"]]
        assert not rd.inserted
        [(key, patch)] = rd.updated
        assert key == env.rows[3]["key"]
        # only the changed attributes travel, not the whole row
        assert set(patch) == {"posx", "health"}
        # drop-in-place deletes and in-place updates are predictable:
        # no order patch on the wire
        assert rd.order is None

    def test_order_patch_ships_only_when_unpredictable(self, schema):
        env = make_env(schema, n=8, grid=30, seed=2)

        def mutate(rows):
            # the battle's resurrection shape: a changed row moves to
            # the end of E, which order prediction cannot reproduce
            row = rows.pop(2)
            row["health"] = 1
            rows.append(row)

        new = evolved(env, mutate)
        rd = encode(env, new)
        assert rd.order == [r["key"] for r in new.rows]

    def test_apply_reproduces_rows_and_reuses_replica_objects(self, schema):
        env = make_env(schema, n=12, grid=30, seed=3)

        def mutate(rows):
            rows[0]["posy"] += 2
            del rows[5]
            inserted = dict(rows[1])
            inserted["key"] = 999
            inserted["posx"] = 0
            rows.append(inserted)

        new = evolved(env, mutate)
        rd = encode(env, new)
        replica = {r["key"]: r for r in env.rows}
        old_objects = dict(replica)
        order, table_delta = apply_replica_delta(
            rd,
            replica,
            [r["key"] for r in env.rows],
            key_attr="key",
            replica_epoch=0,
        )
        rebuilt = [replica[k] for k in order]
        assert rebuilt == new.rows
        # the delta's old rows are the replica's own objects -- exactly
        # what retained index structures hold, so incremental
        # maintenance can delete by identity
        assert table_delta.deleted[0] is old_objects[env.rows[5]["key"]]
        old_row, new_row = table_delta.updated[0]
        assert old_row is old_objects[env.rows[0]["key"]]
        assert new_row["posy"] == old_row["posy"] + 2

    def test_removed_attribute_round_trips(self, schema):
        """Rows are plain dicts: a custom game's mechanics may drop an
        attribute, and the patch must express the removal (a patch
        built from the new row's items alone could not)."""
        import pickle

        env = make_env(schema, n=4, grid=30, seed=9)
        extended = EnvironmentTable(env.schema)
        extended.rows.extend(dict(r, aura_src=7) for r in env.rows)

        def mutate(rows):
            del rows[1]["aura_src"]
            rows[1]["posx"] += 1

        new = evolved(extended, mutate)
        rd = pickle.loads(pickle.dumps(encode(extended, new)))
        replica = {r["key"]: dict(r) for r in extended.rows}
        order, _ = apply_replica_delta(
            rd,
            replica,
            [r["key"] for r in extended.rows],
            key_attr="key",
            replica_epoch=0,
        )
        assert [replica[k] for k in order] == new.rows
        assert "aura_src" not in replica[extended.rows[1]["key"]]

    def test_mid_order_insert_ships_splice_positions(self, schema):
        """An insert that lands mid-order (the scoped-delta shape: a
        unit crossing into a worker's scope splices at its flat
        position) ships compact ``(key, index)`` pairs -- never the
        whole key order -- and replays exactly."""
        import pickle

        env = make_env(schema, n=10, grid=30, seed=7)

        def mutate(rows):
            inserted = dict(rows[0])
            inserted["key"] = 555
            inserted["posx"] = 3
            rows.insert(4, inserted)

        new = evolved(env, mutate)
        rd = pickle.loads(pickle.dumps(encode(env, new)))
        assert rd.order is None  # the full order stays off the wire
        assert rd.insert_at == [(555, 4)]
        replica = {r["key"]: r for r in env.rows}
        order, _ = apply_replica_delta(
            rd,
            replica,
            [r["key"] for r in env.rows],
            key_attr="key",
            replica_epoch=0,
        )
        assert [replica[k] for k in order] == new.rows

    def test_positional_pickle_keeps_quiet_deltas_small(self, schema):
        """The wire envelope must not dwarf quiet-tick content: field
        names stay out of the pickle (positional __reduce__)."""
        import pickle

        env = make_env(schema, n=8, grid=30, seed=8)
        new = evolved(env, lambda rows: rows[0].update(posx=1))
        blob = pickle.dumps(encode(env, new))
        assert b"deleted_keys" not in blob
        assert b"cross_shard_moves" not in blob
        assert pickle.loads(blob) == encode(env, new)

    def test_stale_epoch_is_refused(self, schema):
        env = make_env(schema, n=6, grid=30, seed=4)
        new = evolved(env, lambda rows: rows[0].update(posx=1))
        rd = encode(env, new, base_epoch=7, epoch=8)
        replica = {r["key"]: r for r in env.rows}
        with pytest.raises(StaleReplicaError):
            apply_replica_delta(
                rd,
                replica,
                [r["key"] for r in env.rows],
                key_attr="key",
                replica_epoch=6,
            )

    def test_drifted_replica_contents_are_refused(self, schema):
        env = make_env(schema, n=6, grid=30, seed=5)
        new = evolved(env, lambda rows: rows.__delitem__(2))
        rd = encode(env, new)
        replica = {r["key"]: r for r in env.rows}
        del replica[env.rows[2]["key"]]  # the row to delete is missing
        with pytest.raises(StaleReplicaError):
            apply_replica_delta(
                rd,
                replica,
                [r["key"] for r in env.rows],
                key_attr="key",
                replica_epoch=0,
            )

    def test_cross_shard_moves_are_classified(self, schema):
        env = make_env(schema, n=10, grid=40, seed=6)
        shard_of = make_sharder("spatial", 4, extent=40)

        def mutate(rows):
            # teleport a unit across every strip boundary
            rows[0]["posx"] = (rows[0]["posx"] + 20) % 40
            # and nudge another inside its strip
            rows[1]["health"] -= 1

        new = evolved(env, mutate)
        rd = encode(env, new, shard_of=shard_of)
        moved = shard_of(env.rows[0]) != shard_of(new.rows[0])
        assert rd.cross_shard_moves == (1 if moved else 0)


class TestReplicaWorkerFaults:
    """Real worker processes driven through the recovery paths."""

    def test_delta_broadcasts_match_serial_and_save_bytes(self):
        baseline = battle_signature(seed=29)
        with BattleSimulation(
            48, density=0.02, seed=29, num_shards=2,
            parallelism="processes", max_workers=2,
        ) as sim:
            sim.run(4)
            delta_sig = sim.state_signature()
            stats = sim.engine.worker_stats
            assert stats.delta_broadcasts > 0
            delta_bytes = stats.bytes_broadcast
        assert delta_sig == baseline
        with BattleSimulation(
            48, density=0.02, seed=29, num_shards=2,
            parallelism="processes", max_workers=2,
            worker_broadcast="snapshot",
        ) as sim:
            sim.run(4)
            snap_sig = sim.state_signature()
            stats = sim.engine.worker_stats
            assert stats.delta_broadcasts == 0
            snapshot_bytes = stats.bytes_broadcast
        assert snap_sig == baseline
        assert delta_bytes < snapshot_bytes

    def test_stale_worker_rejoins_via_snapshot(self):
        baseline = battle_signature(ticks=6, seed=31)
        with BattleSimulation(
            48, density=0.02, seed=31, num_shards=2,
            parallelism="processes", max_workers=2,
        ) as sim:
            sim.run(2)
            pool = sim.engine._pool
            # drift worker 0's *actual* replica epoch; the coordinator's
            # belief is untouched, so the next broadcast is a delta the
            # worker must refuse
            pool.debug_set_worker_epoch(0, 777)
            sim.run(4)
            assert pool.stats.stale_snapshots >= 1
            assert sim.state_signature() == baseline

    def test_killed_worker_respawns_via_snapshot(self):
        baseline = battle_signature(ticks=6, seed=37)
        with BattleSimulation(
            48, density=0.02, seed=37, num_shards=2,
            parallelism="processes", max_workers=2,
        ) as sim:
            sim.run(2)
            pool = sim.engine._pool
            pool.workers[0].process.kill()
            pool.workers[0].process.join()
            sim.run(4)
            assert pool.stats.respawns >= 1
            assert sim.state_signature() == baseline

    def test_mid_run_shard_change_forces_full_rebroadcast(self):
        baseline = battle_signature(ticks=6, seed=41)
        with BattleSimulation(
            48, density=0.02, seed=41, num_shards=2,
            parallelism="processes", max_workers=2,
        ) as sim:
            sim.run(3)
            pool = sim.engine._pool
            snapshots_before = pool.stats.snapshot_broadcasts
            sim.engine.config.num_shards = 3
            sim.run(3)
            # every worker's replica epoch was invalidated: the first
            # post-change tick broadcast snapshots, not deltas
            assert pool.stats.snapshot_broadcasts > snapshots_before
            assert sim.state_signature() == baseline

    def test_mid_run_shard_change_serial_engine(self):
        baseline = battle_signature(ticks=6, seed=43)
        with BattleSimulation(
            48, density=0.02, seed=43, num_shards=2,
            index_maintenance="incremental",
        ) as sim:
            sim.run(3)
            sim.engine.config.num_shards = 4
            sim.engine.config.shard_by = "spatial"
            sim.run(3)
            assert sim.state_signature() == baseline

    def test_bad_worker_broadcast_rejected(self):
        with pytest.raises(ValueError, match="worker_broadcast"):
            BattleSimulation(10, worker_broadcast="telepathy")
