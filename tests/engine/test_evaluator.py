"""Naive vs indexed aggregate evaluation: per-call equivalence.

The paper's two pluggable evaluators must agree bit-for-bit, including
on argmin/argmax identities.  These tests call every battle aggregate
directly with both evaluators over randomized environments.
"""

import pytest

from repro.engine.evaluator import (
    CallHint,
    IndexedEvaluator,
    NaiveEvaluator,
    collect_call_hints,
    empty_aggregate_result,
)
from repro.sgl import ast
from repro.sgl.analysis import analyze_script
from repro.sgl.evalterm import EvalContext
from repro.sgl.parser import parse_script, parse_term
from repro.sgl.values import Record
from tests.conftest import make_env


def make_ctx(env, registry, agg_eval, unit):
    return EvalContext(
        env=env,
        registry=registry,
        agg_eval=agg_eval,
        rng=lambda row, i: 0,
        bindings={"u": unit},
        unit=unit,
    )


def hint_for(registry, fn_name, arg_sources, units):
    args = tuple(parse_term(s) for s in arg_sources)
    return (CallHint(function=fn_name, unit_param="u", arg_terms=args), units)


def call_both(registry, env, fn_name, args_for_unit, hints=()):
    """Evaluate fn for every unit with both evaluators; compare."""
    fn = registry.aggregates[fn_name]
    naive = NaiveEvaluator()
    indexed = IndexedEvaluator(registry)
    indexed.begin_tick(env, hints)
    for unit in env.rows:
        args = args_for_unit(unit)
        ctx_naive = make_ctx(env, registry, naive, unit)
        ctx_indexed = make_ctx(env, registry, indexed, unit)
        expected = naive.evaluate(fn, list(args), ctx_naive)
        got = indexed.evaluate(fn, list(args), ctx_indexed)
        assert got == expected, (
            f"{fn_name} diverges for unit {unit['key']}: "
            f"{got!r} != {expected!r}"
        )
    return indexed


@pytest.fixture()
def env(schema):
    return make_env(schema, n=40, grid=25, seed=9)


class TestDivisible:
    def test_count_enemies(self, registry, env):
        indexed = call_both(
            registry, env, "CountEnemiesInRange", lambda u: (u, u["sight"])
        )
        assert indexed.stats.get("probe_divisible", 0) == len(env)

    def test_centroid(self, registry, env):
        call_both(registry, env, "CentroidOfEnemies", lambda u: (u, 8))

    def test_zero_dim_group_totals(self, registry, env):
        call_both(registry, env, "CentroidOfFriendlyKnights", lambda u: (u,))

    def test_stddev(self, registry, env):
        call_both(registry, env, "FriendlySpread", lambda u: (u,))

    def test_wounded_filter(self, registry, env):
        for row in env.rows[::3]:
            row["health"] = max(row["health"] - 4, 1)
        call_both(
            registry, env, "CountWoundedFriendliesInRange",
            lambda u: (u, u["sight"]),
        )

    def test_dynamic_point_bounds(self, registry, env):
        call_both(
            registry, env, "CountFriendliesNearPoint",
            lambda u: (u, u["posx"] + 1, u["posy"] - 1, 4),
        )

    def test_empty_radius(self, registry, env):
        call_both(registry, env, "CountEnemiesInRange", lambda u: (u, 0))


class TestNearest:
    def test_nearest_enemy(self, registry, env):
        indexed = call_both(registry, env, "NearestEnemy", lambda u: (u,))
        assert indexed.stats.get("probe_kdtree", 0) == len(env)

    def test_nearest_is_record(self, registry, env):
        fn = registry.aggregates["NearestEnemy"]
        indexed = IndexedEvaluator(registry)
        indexed.begin_tick(env)
        unit = env.rows[0]
        ctx = make_ctx(env, registry, indexed, unit)
        result = indexed.evaluate(fn, [unit], ctx)
        assert isinstance(result, Record)
        assert result.player != unit["player"]


class TestExtreme:
    def hints(self, registry, env, fn, radius_src):
        return [hint_for(registry, fn, ("u", radius_src), env.rows)]

    def test_weakest_enemy_with_hints(self, registry, env):
        indexed = call_both(
            registry, env, "WeakestEnemyInRange",
            lambda u: (u, u["sight"]),
            hints=self.hints(registry, env, "WeakestEnemyInRange", "u.sight"),
        )
        assert indexed.stats.get("probe_sweep", 0) == len(env)
        assert indexed.stats.get("sweep_miss", 0) == 0

    def test_unhinted_args_fall_back_to_scan(self, registry, env):
        indexed = call_both(
            registry, env, "WeakestEnemyInRange",
            lambda u: (u, 7),  # dynamic radius, no matching hint
        )
        assert indexed.stats.get("probe_scan", 0) == len(env)

    def test_mixed_extents_grouped(self, registry, env):
        # different sight per unit type: several sweep groups per tick
        hints = self.hints(registry, env, "WeakestEnemyInRange", "u.sight")
        indexed = call_both(
            registry, env, "WeakestEnemyInRange",
            lambda u: (u, u["sight"]),
            hints=hints,
        )
        assert indexed.stats.get("build_sweep", 0) == 1

    def test_wounded_friendly(self, registry, env):
        for row in env.rows[::2]:
            row["health"] -= 3
        call_both(
            registry, env, "WeakestWoundedFriendlyInRange",
            lambda u: (u, u["sight"]),
            hints=self.hints(
                registry, env, "WeakestWoundedFriendlyInRange", "u.sight"
            ),
        )


class TestEmptyResults:
    def test_empty_helper_scalar(self, registry):
        fn = registry.aggregates["CountEnemiesInRange"]
        assert empty_aggregate_result(fn.spec.outputs) == 0

    def test_empty_helper_record(self, registry):
        fn = registry.aggregates["CentroidOfEnemies"]
        result = empty_aggregate_result(fn.spec.outputs)
        assert result.x is None and result.y is None

    def test_one_player_world(self, registry, schema):
        env = make_env(schema, n=10)
        for row in env.rows:
            row["player"] = 0  # no enemies anywhere
        call_both(registry, env, "CountEnemiesInRange", lambda u: (u, 10))
        call_both(registry, env, "NearestEnemy", lambda u: (u,))


class TestCallHints:
    def test_static_args_hinted(self, registry, schema):
        script = parse_script(
            "main(u) { (let w = WeakestEnemyInRange(u, u.sight)) "
            "if w.key > 0 then perform UseWeapon(u) }"
        )
        analysis = analyze_script(script, registry, schema)
        hints = collect_call_hints(analysis, {"main": "u"})
        assert [h.function for h in hints] == ["WeakestEnemyInRange"]

    def test_dynamic_args_not_hinted(self, registry, schema):
        script = parse_script(
            "main(u) { (let r = CountEnemiesInRange(u, 5)) "
            "(let w = WeakestEnemyInRange(u, r)) "
            "if w.key > 0 then perform UseWeapon(u) }"
        )
        analysis = analyze_script(script, registry, schema)
        hints = collect_call_hints(analysis, {"main": "u"})
        functions = [h.function for h in hints]
        assert "WeakestEnemyInRange" not in functions

    def test_constant_args_hinted(self, registry, schema):
        script = parse_script(
            "main(u) { (let w = WeakestEnemyInRange(u, _HEALER_RANGE)) "
            "if w.key > 0 then perform UseWeapon(u) }"
        )
        analysis = analyze_script(script, registry, schema)
        hints = collect_call_hints(analysis, {"main": "u"})
        assert [h.function for h in hints] == ["WeakestEnemyInRange"]


class TestCascadeToggle:
    def test_cascade_off_same_results(self, registry, env):
        fn = registry.aggregates["CountEnemiesInRange"]
        on = IndexedEvaluator(registry, cascade=True)
        off = IndexedEvaluator(registry, cascade=False)
        on.begin_tick(env)
        off.begin_tick(env)
        for unit in env.rows:
            ctx_on = make_ctx(env, registry, on, unit)
            ctx_off = make_ctx(env, registry, off, unit)
            assert on.evaluate(fn, [unit, unit["sight"]], ctx_on) == \
                off.evaluate(fn, [unit, unit["sight"]], ctx_off)
