"""DecisionRunner: the engine's set-at-a-time script execution.

Must agree with the reference Interpreter for every action-application
strategy (scan, key-lookup, deferred AoE handled in effects tests).
"""

import pytest

from repro.engine.decision import DecisionRunner
from repro.engine.evaluator import NaiveEvaluator
from repro.env.combine import combine_all
from repro.env.table import EnvironmentTable
from repro.sgl.errors import SglNameError
from repro.sgl.evalterm import EvalContext
from repro.sgl.interp import reference_tick
from repro.sgl.parser import parse_script
from tests.conftest import make_env


def run_tick(script_src, env, registry, *, index_actions):
    script = parse_script(script_src)
    runner = DecisionRunner(
        script, registry, index_actions=index_actions, defer_aoe=False
    )
    rng = lambda row, i: (hash((row["key"], i)) & 0xFFFF)  # noqa: E731
    rows, aoe = [], []
    by_key = env.by_key() if index_actions else None

    def ctx_factory(unit):
        return EvalContext(
            env=env, registry=registry, agg_eval=NaiveEvaluator(),
            rng=rng, bindings={}, unit=unit,
        )

    for unit in env.rows:
        runner.run_unit(unit, ctx_factory, by_key, rows, aoe)
    effects = EnvironmentTable(env.schema)
    effects.rows.extend(rows)
    return combine_all([env, effects], env.schema), rng


@pytest.mark.parametrize("index_actions", [True, False])
class TestAgainstReference:
    def check(self, src, registry, schema, index_actions, n=14, seed=0):
        env = make_env(schema, n=n, seed=seed)
        got, rng = run_tick(src, env, registry, index_actions=index_actions)
        script = parse_script(src)
        expected = reference_tick(env, lambda u: script, registry, rng)
        assert got == expected

    def test_self_move(self, registry, schema, index_actions):
        self.check(
            "main(u) { perform MoveInDirection(u, 1, 2) }",
            registry, schema, index_actions,
        )

    def test_fire_at_nearest(self, registry, schema, index_actions):
        self.check(
            "main(u) { (let t = NearestEnemy(u)) perform FireAt(u, t.key); "
            "perform UseWeapon(u) }",
            registry, schema, index_actions,
        )

    def test_heal_scan_path(self, registry, schema, index_actions):
        self.check(
            "main(u) { if u.unittype = 'healer' then perform Heal(u) }",
            registry, schema, index_actions,
        )

    def test_conditionals_and_sequences(self, registry, schema, index_actions):
        self.check(
            "main(u) { if u.player = 0 then { "
            "perform MoveInDirection(u, 1, 0); perform UseWeapon(u) } "
            "else perform MoveInDirection(u, 0 - 1, 0) }",
            registry, schema, index_actions,
        )

    def test_defined_function_dispatch(self, registry, schema, index_actions):
        self.check(
            "main(u) { perform Go(u, 3) } "
            "Go(w, dist) { perform MoveInDirection(w, dist, dist) }",
            registry, schema, index_actions,
        )


class TestKeyActionPath:
    def test_null_target_is_noop(self, registry, schema):
        # NULL key (empty aggregate) must fire at nobody, not crash
        env = make_env(schema, n=6)
        for row in env.rows:
            row["player"] = 0  # no enemies: NearestEnemy is NULL
        got, _ = run_tick(
            "main(u) { (let t = NearestEnemy(u)) perform FireAt(u, t.key) }",
            env, registry, index_actions=True,
        )
        assert all(row["damage"] == 0 for row in got)

    def test_missing_key_is_noop(self, registry, schema):
        env = make_env(schema, n=4)
        got, _ = run_tick(
            "main(u) { perform FireAt(u, 9999) }",
            env, registry, index_actions=True,
        )
        assert all(row["damage"] == 0 for row in got)

    def test_unknown_action_raises(self, registry, schema):
        env = make_env(schema, n=2)
        with pytest.raises(SglNameError):
            run_tick("main(u) { perform Warp(u) }", env, registry,
                     index_actions=True)
