"""Deterministic randomness (Section 4.1) and the grid movement phase."""

from repro.engine.movement import Grid, desired_direction, run_movement_phase
from repro.engine.rng import TickRandom, splitmix64


class TestTickRandom:
    def test_stable_within_tick(self):
        rng = TickRandom(seed=42, tick=3)
        row = {"key": 7}
        assert rng(row, 1) == rng(row, 1)

    def test_varies_between_ticks(self):
        row = {"key": 7}
        a = TickRandom(seed=42, tick=1)(row, 1)
        b = TickRandom(seed=42, tick=2)(row, 1)
        assert a != b

    def test_varies_per_unit(self):
        rng = TickRandom(seed=42, tick=1)
        assert rng({"key": 1}, 1) != rng({"key": 2}, 1)

    def test_varies_per_index(self):
        rng = TickRandom(seed=42, tick=1)
        row = {"key": 1}
        assert rng(row, 1) != rng(row, 2)

    def test_seed_changes_everything(self):
        row = {"key": 1}
        assert TickRandom(1, tick=1)(row, 1) != TickRandom(2, tick=1)(row, 1)

    def test_advance(self):
        rng = TickRandom(seed=5)
        rng.advance()
        assert rng.tick == 1
        rng.advance(10)
        assert rng.tick == 10

    def test_uniform_in_range(self):
        rng = TickRandom(seed=5, tick=1)
        for i in range(50):
            assert 0 <= rng.uniform({"key": i}, 1, 7) < 7

    def test_splitmix_is_64bit(self):
        assert 0 <= splitmix64(123456789) < (1 << 64)

    def test_nonnegative(self):
        rng = TickRandom(seed=9, tick=4)
        assert all(rng({"key": k}, 0) >= 0 for k in range(20))


class TestDesiredDirection:
    def test_cardinals(self):
        assert desired_direction(1, 0) == 0    # east
        assert desired_direction(0, 1) == 2    # north
        assert desired_direction(-1, 0) == 4   # west
        assert desired_direction(0, -1) == 6   # south

    def test_diagonals(self):
        assert desired_direction(1, 1) == 1
        assert desired_direction(-1, -1) == 5


class TestGrid:
    def test_place_and_occupy(self):
        grid = Grid(10)
        grid.place("a", 1, 1)
        assert grid.occupied(1, 1) and not grid.occupied(2, 2)

    def test_remove(self):
        grid = Grid(10)
        grid.place("a", 1, 1)
        grid.remove(1, 1)
        assert not grid.occupied(1, 1)

    def test_bounds(self):
        grid = Grid(5)
        assert grid.in_bounds(0, 0) and grid.in_bounds(4, 4)
        assert not grid.in_bounds(5, 0) and not grid.in_bounds(-1, 0)

    def test_free_cell_near_prefers_exact(self):
        grid = Grid(10)
        assert grid.free_cell_near(3, 3, lambda n: 0) == (3, 3)

    def test_free_cell_near_spirals(self):
        grid = Grid(10)
        grid.place("a", 3, 3)
        cell = grid.free_cell_near(3, 3, lambda n: 0)
        assert cell != (3, 3)
        assert abs(cell[0] - 3) <= 1 and abs(cell[1] - 3) <= 1

    def test_free_cell_near_full_grid(self):
        grid = Grid(2)
        for x in range(2):
            for y in range(2):
                grid.place((x, y), x, y)
        assert grid.free_cell_near(0, 0, lambda n: 0) is None


def make_mover(key, x, y, mvx, mvy, speed=1):
    return {
        "key": key, "posx": x, "posy": y,
        "movevect_x": mvx, "movevect_y": mvy, "speed": speed,
    }


class TestMovementPhase:
    def rng(self):
        return TickRandom(seed=0, tick=1)

    def test_unit_moves_toward_vector(self):
        rows = [make_mover(0, 5, 5, 3, 0)]
        run_movement_phase(rows, 20, self.rng())
        assert (rows[0]["posx"], rows[0]["posy"]) == (6, 5)

    def test_stationary_unit_stays(self):
        rows = [make_mover(0, 5, 5, 0, 0)]
        run_movement_phase(rows, 20, self.rng())
        assert (rows[0]["posx"], rows[0]["posy"]) == (5, 5)

    def test_speed_multiplies_steps(self):
        rows = [make_mover(0, 0, 0, 10, 0, speed=3)]
        run_movement_phase(rows, 20, self.rng())
        assert rows[0]["posx"] == 3

    def test_collision_blocks_or_sidesteps(self):
        rows = [
            make_mover(0, 5, 5, 1, 0),
            make_mover(1, 6, 5, 0, 0),  # blocking the direct path
        ]
        run_movement_phase(rows, 20, self.rng())
        mover = rows[0]
        # either it side-stepped diagonally or stayed; never on the blocker
        assert (mover["posx"], mover["posy"]) != (6, 5) or rows[1]["posx"] != 6
        occupied = {(r["posx"], r["posy"]) for r in rows}
        assert len(occupied) == 2

    def test_no_two_units_share_cell(self):
        rows = [make_mover(k, k, 0, 1, 0) for k in range(6)]
        run_movement_phase(rows, 30, self.rng())
        cells = {(r["posx"], r["posy"]) for r in rows}
        assert len(cells) == 6

    def test_grid_boundary_respected(self):
        rows = [make_mover(0, 19, 5, 5, 0)]
        run_movement_phase(rows, 20, self.rng())
        assert rows[0]["posx"] <= 19

    def test_deterministic_given_rng(self):
        rows_a = [make_mover(k, k * 2, k, 1, 1) for k in range(5)]
        rows_b = [make_mover(k, k * 2, k, 1, 1) for k in range(5)]
        run_movement_phase(rows_a, 30, TickRandom(7, tick=2))
        run_movement_phase(rows_b, 30, TickRandom(7, tick=2))
        assert rows_a == rows_b
