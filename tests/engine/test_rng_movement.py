"""Deterministic randomness (Section 4.1) and the grid movement phase."""

import os
import subprocess
import sys

import pytest

from repro.engine.movement import Grid, desired_direction, run_movement_phase
from repro.engine.rng import TickRandom, splitmix64, stable_hash


class TestTickRandom:
    def test_stable_within_tick(self):
        rng = TickRandom(seed=42, tick=3)
        row = {"key": 7}
        assert rng(row, 1) == rng(row, 1)

    def test_varies_between_ticks(self):
        row = {"key": 7}
        a = TickRandom(seed=42, tick=1)(row, 1)
        b = TickRandom(seed=42, tick=2)(row, 1)
        assert a != b

    def test_varies_per_unit(self):
        rng = TickRandom(seed=42, tick=1)
        assert rng({"key": 1}, 1) != rng({"key": 2}, 1)

    def test_varies_per_index(self):
        rng = TickRandom(seed=42, tick=1)
        row = {"key": 1}
        assert rng(row, 1) != rng(row, 2)

    def test_seed_changes_everything(self):
        row = {"key": 1}
        assert TickRandom(1, tick=1)(row, 1) != TickRandom(2, tick=1)(row, 1)

    def test_advance(self):
        rng = TickRandom(seed=5)
        rng.advance()
        assert rng.tick == 1
        rng.advance(10)
        assert rng.tick == 10

    def test_uniform_in_range(self):
        rng = TickRandom(seed=5, tick=1)
        for i in range(50):
            assert 0 <= rng.uniform({"key": i}, 1, 7) < 7

    def test_splitmix_is_64bit(self):
        assert 0 <= splitmix64(123456789) < (1 << 64)

    def test_nonnegative(self):
        rng = TickRandom(seed=9, tick=4)
        assert all(rng({"key": k}, 0) >= 0 for k in range(20))


class TestStableKeyHash:
    """Regression: unit keys must hash identically in every process.

    The stream used to go through Python's builtin ``hash()``, which is
    salted per process for str/bytes keys -- string-keyed simulations
    were not reproducible across processes, contradicting the module's
    determinism contract.  These values are pinned forever; changing
    them silently breaks replayability of recorded simulations.
    """

    def test_pinned_values(self):
        rng = TickRandom(seed=42, tick=3)
        assert rng({"key": 7}, 1) == 11609427158010682529
        assert rng({"key": "knight-07"}, 1) == 15738241415071403343
        assert rng({"key": ("a", 3)}, 2) == 9767974576443231948

    def test_pinned_stable_hash(self):
        assert stable_hash("epic") == 2273434926276851718
        assert stable_hash(b"epic") == 7454095844929570242
        assert stable_hash(7) == 7
        assert stable_hash(("a", 3)) == 6178579289402711412

    def test_int_and_integral_float_keys_agree(self):
        assert stable_hash(7.0) == stable_hash(7)
        assert stable_hash(2.5) != stable_hash(2)
        # bool is an int subtype; agree with dict-key equality
        assert stable_hash(True) == stable_hash(1)

    def test_wide_int_keys_do_not_collide_mod_2_64(self):
        # 128-bit keys (UUID ints) must not alias keys 2**64 apart
        k = 0x1234_5678_9ABC_DEF0
        assert stable_hash(k + (1 << 64)) != stable_hash(k)
        assert stable_hash(-1) != stable_hash((1 << 64) - 1)
        assert stable_hash(-5) == stable_hash(-5)
        assert stable_hash(float(1 << 70)) == stable_hash(1 << 70)

    def test_nonfinite_float_keys_hash(self):
        # inf/nan must hash deterministically via their bit patterns,
        # not crash in int() conversion
        inf = float("inf")
        assert stable_hash(inf) == stable_hash(inf)
        assert stable_hash(-inf) != stable_hash(inf)
        assert isinstance(stable_hash(float("nan")), int)

    def test_key_hash_memo_consistent(self):
        rng = TickRandom(seed=3, tick=2)
        first = rng({"key": "memoized"}, 1)
        assert rng({"key": "memoized"}, 1) == first
        assert rng._key_hashes["memoized"] == stable_hash("memoized")

    def test_string_keys_differ(self):
        rng = TickRandom(seed=1, tick=1)
        assert rng({"key": "a"}, 0) != rng({"key": "b"}, 0)

    def test_unhashable_key_type_rejected(self):
        with pytest.raises(TypeError):
            stable_hash(["list", "key"])

    def test_string_keys_reproducible_across_hash_seeds(self):
        """Same TickRandom outputs under different PYTHONHASHSEED."""
        program = (
            "from repro.engine.rng import TickRandom\n"
            "rng = TickRandom(seed=99, tick=5)\n"
            "print([rng({'key': f'unit-{k}'}, i)"
            " for k in range(4) for i in range(3)])\n"
        )
        outputs = []
        for hash_seed in ("1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            env["PYTHONPATH"] = os.pathsep.join(
                p for p in ("src", env.get("PYTHONPATH", "")) if p
            )
            result = subprocess.run(
                [sys.executable, "-c", program],
                capture_output=True, text=True, env=env,
                cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
                check=True,
            )
            outputs.append(result.stdout)
        assert outputs[0] == outputs[1]


class TestDesiredDirection:
    def test_cardinals(self):
        assert desired_direction(1, 0) == 0    # east
        assert desired_direction(0, 1) == 2    # north
        assert desired_direction(-1, 0) == 4   # west
        assert desired_direction(0, -1) == 6   # south

    def test_diagonals(self):
        assert desired_direction(1, 1) == 1
        assert desired_direction(-1, -1) == 5


class TestGrid:
    def test_place_and_occupy(self):
        grid = Grid(10)
        grid.place("a", 1, 1)
        assert grid.occupied(1, 1) and not grid.occupied(2, 2)

    def test_remove(self):
        grid = Grid(10)
        grid.place("a", 1, 1)
        grid.remove(1, 1)
        assert not grid.occupied(1, 1)

    def test_bounds(self):
        grid = Grid(5)
        assert grid.in_bounds(0, 0) and grid.in_bounds(4, 4)
        assert not grid.in_bounds(5, 0) and not grid.in_bounds(-1, 0)

    def test_free_cell_near_prefers_exact(self):
        grid = Grid(10)
        assert grid.free_cell_near(3, 3, lambda n: 0) == (3, 3)

    def test_free_cell_near_spirals(self):
        grid = Grid(10)
        grid.place("a", 3, 3)
        cell = grid.free_cell_near(3, 3, lambda n: 0)
        assert cell != (3, 3)
        assert abs(cell[0] - 3) <= 1 and abs(cell[1] - 3) <= 1

    def test_free_cell_near_full_grid(self):
        grid = Grid(2)
        for x in range(2):
            for y in range(2):
                grid.place((x, y), x, y)
        assert grid.free_cell_near(0, 0, lambda n: 0) is None


def make_mover(key, x, y, mvx, mvy, speed=1):
    return {
        "key": key, "posx": x, "posy": y,
        "movevect_x": mvx, "movevect_y": mvy, "speed": speed,
    }


class TestMovementPhase:
    def rng(self):
        return TickRandom(seed=0, tick=1)

    def test_unit_moves_toward_vector(self):
        rows = [make_mover(0, 5, 5, 3, 0)]
        run_movement_phase(rows, 20, self.rng())
        assert (rows[0]["posx"], rows[0]["posy"]) == (6, 5)

    def test_stationary_unit_stays(self):
        rows = [make_mover(0, 5, 5, 0, 0)]
        run_movement_phase(rows, 20, self.rng())
        assert (rows[0]["posx"], rows[0]["posy"]) == (5, 5)

    def test_speed_multiplies_steps(self):
        rows = [make_mover(0, 0, 0, 10, 0, speed=3)]
        run_movement_phase(rows, 20, self.rng())
        assert rows[0]["posx"] == 3

    def test_collision_blocks_or_sidesteps(self):
        rows = [
            make_mover(0, 5, 5, 1, 0),
            make_mover(1, 6, 5, 0, 0),  # blocking the direct path
        ]
        run_movement_phase(rows, 20, self.rng())
        mover = rows[0]
        # either it side-stepped diagonally or stayed; never on the blocker
        assert (mover["posx"], mover["posy"]) != (6, 5) or rows[1]["posx"] != 6
        occupied = {(r["posx"], r["posy"]) for r in rows}
        assert len(occupied) == 2

    def test_no_two_units_share_cell(self):
        rows = [make_mover(k, k, 0, 1, 0) for k in range(6)]
        run_movement_phase(rows, 30, self.rng())
        cells = {(r["posx"], r["posy"]) for r in rows}
        assert len(cells) == 6

    def test_grid_boundary_respected(self):
        rows = [make_mover(0, 19, 5, 5, 0)]
        run_movement_phase(rows, 20, self.rng())
        assert rows[0]["posx"] <= 19

    def test_deterministic_given_rng(self):
        rows_a = [make_mover(k, k * 2, k, 1, 1) for k in range(5)]
        rows_b = [make_mover(k, k * 2, k, 1, 1) for k in range(5)]
        run_movement_phase(rows_a, 30, TickRandom(7, tick=2))
        run_movement_phase(rows_b, 30, TickRandom(7, tick=2))
        assert rows_a == rows_b
