"""Regression tests for the defects the reprolint pass surfaced in src/.

Each fix gets two layers where feasible: a unit test pinning the exact
mechanism (an ``id()``-keyed cache must validate its referent, a Record
must lower in field order, a torn frame must become a client error) and
a trajectory-equivalence test showing the touched path still produces
the bit-identical battle the determinism invariant demands.
"""

import pytest

from repro.algebra.executor import PlanExecutor
from repro.algebra.ops import plan_signature
from repro.algebra.rewrite import optimize, prune_unused_columns
from repro.algebra.translate import translate_script
from repro.game.battle import BattleSimulation
from repro.serve.queries import plain_value
from repro.serve.spectator import SpectatorClient, SpectatorError
from repro.serve.transport import FrameError
from repro.sgl.interp import NaiveAggregateEvaluator
from repro.sgl.parser import parse_script
from repro.sgl.values import Record, Vec
from tests.conftest import make_env

SCRIPT = (
    "main(u) { (let c = CountEnemiesInRange(u, 8)) "
    "if c > 0 then perform UseWeapon(u) }"
)


def rng_for(seed=0):
    from repro.engine.rng import stable_hash

    return lambda row, i: stable_hash((seed, row["key"], i)) & 0xFFFF


def battle_signature(ticks=4, **kwargs):
    with BattleSimulation(48, density=0.02, **kwargs) as sim:
        sim.run(ticks)
        return sim.state_signature()


class TestExecutorMemoPinsPlan:
    """``PlanExecutor._memo`` is keyed by ``id(plan)``; the entry now
    stores the plan itself and is ignored when the identity mismatches,
    so a collected plan node's recycled id can never serve a stale
    unit/effect stream."""

    def _executor(self, registry, schema):
        env = make_env(schema, n=16, seed=3)
        plan = optimize(
            translate_script(parse_script(SCRIPT), registry), registry
        )
        return (
            PlanExecutor(env, registry, NaiveAggregateEvaluator(), rng_for(3)),
            plan,
        )

    def test_poisoned_memo_entry_is_recomputed(self, registry, schema):
        executor, plan = self._executor(registry, schema)
        clean = executor.run(plan)
        # simulate id() reuse: every memoised id now "belongs" to some
        # other object; the stale payloads must never be returned
        for key in list(executor._memo):
            executor._memo[key] = (object(), "stale-poison")
        again = executor.run(plan)
        assert again.rows == clean.rows

    def test_memo_entries_pin_their_plan(self, registry, schema):
        executor, plan = self._executor(registry, schema)
        executor.run(plan)
        assert executor._memo, "memo unexpectedly empty"
        for key, (node, _value) in executor._memo.items():
            assert id(node) == key


class TestPruneMemoPinsNodes:
    def test_repeated_prune_is_stable(self, registry):
        plan = translate_script(parse_script(SCRIPT), registry)
        first = prune_unused_columns(plan)
        second = prune_unused_columns(plan)
        assert plan_signature(first) == plan_signature(second)

    def test_shared_subtrees_stay_shared(self, registry):
        from repro.game.scripts import FIGURE_3_SCRIPT

        plan = translate_script(parse_script(FIGURE_3_SCRIPT), registry)
        pruned = prune_unused_columns(plan)
        # rule-9 sharing: identical (node, needed) pairs must come back
        # as the *same* object, not equal copies
        ids = [id(child) for child in pruned.inputs]
        rescans = set()
        for child in pruned.inputs:
            node = child
            while node.children():
                node = node.children()[0]
            rescans.add(id(node))
        assert len(rescans) == 1, "ScanE leaves should be one shared node"
        assert len(ids) == len(pruned.inputs)


class TestShardIdCachePinsRows:
    """clock.py classifies each row list into shard ids once per tick in
    an ``id()``-keyed cache; the entry now pins the row list.  The
    scoped-worker broadcast is the consumer: its per-scope delta blobs
    must stay bit-identical to the flat serial trajectory."""

    def test_scoped_worker_broadcast_trajectory(self):
        baseline = battle_signature(ticks=4, seed=23)
        with BattleSimulation(
            48, density=0.02, seed=23, num_shards=3, shard_by="spatial",
            parallelism="processes", max_workers=3, worker_scope="shards",
        ) as sim:
            sim.run(4)
            assert sim.state_signature() == baseline


class TestPreparedAggregateOrder:
    """The staged pipeline now feeds ``prepare`` a sorted hint list, so
    index build order is canonical rather than set-iteration order; the
    parallel engines must still replay the serial game exactly."""

    @pytest.mark.parametrize("seed", [5, 17])
    def test_threads_match_serial(self, seed):
        baseline = battle_signature(ticks=5, seed=seed)
        assert (
            battle_signature(
                ticks=5, seed=seed, parallelism="threads", num_shards=2
            )
            == baseline
        )


class TestPlainValueRecordOrder:
    def test_record_lowering_preserves_field_order(self):
        rec = Record({"zeta": 2.0, "alpha": 1.0, "mid": 3.0})
        out = plain_value(rec)
        assert out == {"zeta": 2.0, "alpha": 1.0, "mid": 3.0}
        assert list(out) == ["zeta", "alpha", "mid"]

    def test_nested_records_and_vecs(self):
        rec = Record({"pos": Vec((1.0, 2.0)), "inner": Record({"b": 2, "a": 1})})
        out = plain_value(rec)
        assert out == {"pos": [1.0, 2.0], "inner": {"b": 2, "a": 1}}
        assert list(out["inner"]) == ["b", "a"]


class _TornTransport:
    """Transport stub whose recv simulates a desynchronized stream."""

    def __init__(self):
        self.closed = False
        self.sent = []

    def settimeout(self, value):
        pass

    def send(self, message):
        self.sent.append(message)

    def recv(self):
        raise FrameError("bad frame header")

    def close(self):
        self.closed = True


class TestSpectatorClientTornFrame:
    def test_frame_error_becomes_spectator_error_and_closes(self):
        client = SpectatorClient.__new__(SpectatorClient)
        client.timeout = 1.0
        client._transport = _TornTransport()
        with pytest.raises(SpectatorError, match="desynchronized"):
            client._round_trip(("ping",))
        assert client._transport.closed
