"""Delta-driven index maintenance in the indexed evaluator and engine.

Covers the maintenance policy (rebuild | incremental | auto), the
equivalence of patched structures with freshly built ones, change
capture in the tick loop, and the id-reuse regression in the script
compilation cache.
"""

import copy

import pytest

from repro.engine.clock import EngineConfig
from repro.engine.evaluator import IndexedEvaluator, NaiveEvaluator
from repro.env.table import EnvironmentTable, diff_by_key
from repro.game.battle import BattleSimulation
from repro.sgl.evalterm import EvalContext
from tests.conftest import make_env


def make_ctx(env, registry, agg_eval, unit):
    return EvalContext(
        env=env,
        registry=registry,
        agg_eval=agg_eval,
        rng=lambda row, i: 0,
        bindings={"u": unit},
        unit=unit,
    )


AGG_CALLS = [
    ("CountEnemiesInRange", lambda u: (u, u["sight"])),
    ("CentroidOfEnemies", lambda u: (u, 8)),
    ("FriendlySpread", lambda u: (u,)),
    ("NearestEnemy", lambda u: (u,)),
]


def evolve(env, step):
    """A mutated deep copy: some units move, one dies, one spawns."""
    schema = env.schema
    new = EnvironmentTable(schema)
    rows = [dict(r) for r in env.rows]
    dead = rows.pop(step % len(rows))
    for row in rows[:: max(1, len(rows) // 4)]:
        row["posx"] = (row["posx"] + 1 + step) % 30
        row["health"] = max(row["health"] - 1, 1)
    spawn = dict(dead)
    spawn["key"] = 1000 + step
    spawn["posx"] = (spawn["posx"] + 7) % 30
    rows.append(spawn)
    new.rows.extend(rows)
    return new


class TestEvaluatorDeltaMaintenance:
    def probe_all(self, evaluator, env, registry):
        out = []
        for fn_name, args_for in AGG_CALLS:
            fn = registry.aggregates[fn_name]
            for unit in env.rows:
                ctx = make_ctx(env, registry, evaluator, unit)
                out.append(evaluator.evaluate(fn, list(args_for(unit)), ctx))
        return out

    @pytest.mark.parametrize("maintenance", ["incremental", "auto"])
    def test_patched_indexes_match_naive_across_generations(
        self, schema, registry, maintenance
    ):
        env = make_env(schema, n=30, grid=30, seed=21)
        evaluator = IndexedEvaluator(
            registry, maintenance=maintenance, incremental_threshold=0.9
        )
        naive = NaiveEvaluator()
        evaluator.begin_tick(env)
        self.probe_all(evaluator, env, registry)  # build the structures

        for step in range(1, 5):
            new_env = evolve(env, step)
            delta = diff_by_key(env, new_env)
            assert delta is not None and delta.changed > 0
            evaluator.begin_tick(new_env, delta=delta)
            env = new_env
            got = self.probe_all(evaluator, env, registry)
            expected = self.probe_all(naive, env, registry)
            assert got == expected
        assert evaluator.stats.get("delta_ticks", 0) == 4

    def test_auto_rebuilds_above_threshold(self, schema, registry):
        env = make_env(schema, n=20, grid=30, seed=3)
        evaluator = IndexedEvaluator(
            registry, maintenance="auto", incremental_threshold=0.05
        )
        evaluator.begin_tick(env)
        self.probe_all(evaluator, env, registry)
        new_env = evolve(env, 1)  # mutates far more than 5% of rows
        delta = diff_by_key(env, new_env)
        assert delta.fraction > 0.05
        evaluator.begin_tick(new_env, delta=delta)
        assert evaluator.stats.get("rebuild_ticks") == 1
        assert not evaluator._div_index and not evaluator._kd_index

    def test_auto_applies_below_threshold(self, schema, registry):
        env = make_env(schema, n=30, grid=30, seed=4)
        evaluator = IndexedEvaluator(registry, maintenance="auto")
        evaluator.begin_tick(env)
        self.probe_all(evaluator, env, registry)
        new_env = env.copy()
        new_env.rows[0]["posx"] = (new_env.rows[0]["posx"] + 1) % 30
        delta = diff_by_key(env, new_env)
        assert 0 < delta.fraction <= 0.25
        evaluator.begin_tick(new_env, delta=delta)
        assert evaluator.stats.get("delta_ticks") == 1
        assert evaluator._div_index  # structures survived

    def test_missing_delta_forces_rebuild(self, schema, registry):
        env = make_env(schema, n=10, seed=5)
        evaluator = IndexedEvaluator(registry, maintenance="incremental")
        evaluator.begin_tick(env)
        self.probe_all(evaluator, env, registry)
        evaluator.begin_tick(env, delta=None)
        assert not evaluator._div_index
        assert evaluator.stats.get("rebuild_ticks") == 1

    def test_overlay_budget_drops_structures(self, schema, registry):
        env = make_env(schema, n=20, grid=30, seed=6)
        evaluator = IndexedEvaluator(
            registry, maintenance="incremental", overlay_budget=0.5
        )
        evaluator.begin_tick(env)
        self.probe_all(evaluator, env, registry)
        # churn far past the budget: every row moves for many generations
        for step in range(1, 40):
            new_env = evolve(env, step)
            delta = diff_by_key(env, new_env)
            evaluator.begin_tick(new_env, delta=delta)
            env = new_env
            self.probe_all(evaluator, env, registry)
        assert evaluator.stats.get("overlay_rebuilds", 0) > 0

    def test_cancelling_churn_retains_divisible_structures(
        self, schema, registry
    ):
        # one unit oscillating between two cells leaves no live overlay
        # residue, so sustained low churn must never force a divisible
        # rebuild (the policy gauges live weight, not cumulative ops)
        env = make_env(schema, n=30, grid=30, seed=8)
        evaluator = IndexedEvaluator(registry, maintenance="incremental")
        evaluator.begin_tick(env)
        self.probe_all(evaluator, env, registry)
        div_ids = {n: id(i) for n, i in evaluator._div_index.items()}
        assert div_ids
        for step in range(80):
            new_env = env.copy()
            row = new_env.rows[0]
            row["posx"] += 1 if step % 2 == 0 else -1
            delta = diff_by_key(env, new_env)
            evaluator.begin_tick(new_env, delta=delta)
            env = new_env
        assert {n: id(i) for n, i in evaluator._div_index.items()} == div_ids
        got = self.probe_all(evaluator, env, registry)
        assert got == self.probe_all(NaiveEvaluator(), env, registry)

    def test_invalid_maintenance_rejected(self, registry):
        with pytest.raises(ValueError):
            IndexedEvaluator(registry, maintenance="sometimes")


class TestEngineWiring:
    def test_invalid_maintenance_rejected(self):
        with pytest.raises(ValueError):
            BattleSimulation(10, index_maintenance="bogus")
        with pytest.raises(ValueError):
            EngineConfig(index_maintenance="bogus") and BattleSimulation(
                10, index_maintenance="bogus"
            )

    def test_naive_mode_ignores_maintenance(self):
        sim = BattleSimulation(
            16, mode="naive", seed=1, index_maintenance="incremental"
        )
        sim.run(2)  # must not attempt capture / delta plumbing
        assert sim.summary.ticks == 2

    def test_delta_captured_and_consumed(self):
        sim = BattleSimulation(20, seed=2, index_maintenance="incremental")
        sim.tick()
        assert sim.engine._pending_delta is not None
        sim.tick()
        stats = sim.engine.agg_eval.stats
        assert stats.get("delta_ticks", 0) >= 1

    def test_rebuild_mode_skips_capture(self):
        sim = BattleSimulation(20, seed=2, index_maintenance="rebuild")
        sim.run(2)
        assert sim.engine._pending_delta is None

    def test_maintenance_time_recorded(self):
        sim = BattleSimulation(20, seed=2, index_maintenance="incremental")
        stats = sim.run(3).tick_stats
        assert all(s.maintenance_time >= 0.0 for s in stats)
        assert any(s.maintenance_time > 0.0 for s in stats)


class TestScriptCachePinning:
    """Regression: the runner/hint cache was keyed by ``id(script)``
    without referencing the script, so a garbage-collected script's
    recycled id could silently serve another script's runner and hints.
    The cache now pins the script, making id reuse impossible while the
    entry lives."""

    def test_cache_entries_pin_their_scripts(self):
        sim = BattleSimulation(12, seed=0)
        sim.run(2)
        runners = sim.engine._runners
        assert runners
        for cache_key, (script, runner, hints) in runners.items():
            assert id(script) == cache_key
            assert runner.script is script

    def test_fresh_script_objects_per_call_are_safe(self):
        baseline = BattleSimulation(16, seed=3, density=0.05)
        fresh = BattleSimulation(16, seed=3, density=0.05)
        scripts = fresh.scripts

        def fresh_script_for(row):
            # a worst-case script_for: a brand-new AST object per call,
            # so every id is new and old ids become reusable
            return copy.deepcopy(scripts[row["unittype"]])

        fresh.engine.script_for = fresh_script_for
        for _ in range(3):
            baseline.tick()
            fresh.tick()
        assert baseline.state_signature() == fresh.state_signature()

    def test_cache_growth_is_bounded(self, monkeypatch):
        import repro.engine.clock as clock

        monkeypatch.setattr(clock, "_RUNNER_CACHE_MAX", 8)
        baseline = BattleSimulation(20, seed=4, density=0.05)
        sim = BattleSimulation(20, seed=4, density=0.05)
        scripts = sim.scripts
        sim.engine.script_for = lambda row: copy.deepcopy(
            scripts[row["unittype"]]
        )
        for _ in range(2):  # 40 fresh scripts churn through an 8-slot cache
            baseline.tick()
            sim.tick()
        assert len(sim.engine._runners) <= 8
        assert baseline.state_signature() == sim.state_signature()
