"""Remote decision workers over SocketTransport + the per-shard probe split.

Three layers of coverage:

* **endpoint/config plumbing** -- ``WorkerEndpoint`` parsing and the
  engine-side validation of the ``workers`` / ``worker_scope`` knobs;
* **bit-exactness** -- real ``--listen`` worker processes (spawned on
  ephemeral loopback ports, exactly what ``python -m
  repro.engine.shardexec --listen`` runs on another host) drive full
  battles under every scope/broadcast combination, including the
  probe-split workers that hold only their own shards and forward
  non-local probes, and must reproduce the flat serial engine's state
  bit for bit;
* **fault drills** -- dropped connections mid-run (reconnect + snapshot
  re-feed), drifted replica epochs over sockets (STALE + same-tick
  snapshot), unreachable hosts (informative failure, never silence),
  and the mid-run ``reshard()`` with remote socket workers *and* a
  spectator replica attached simultaneously -- the epoch-ack protocol
  and the fire-and-forget publish stage share one change capture and
  must recover independently.
"""

import socket

import pytest

from repro.engine.shardexec import WorkerEndpoint, spawn_listen_worker
from repro.game.battle import BattleSimulation
from repro.serve.queries import AuthoritativeQueryService

pytestmark = pytest.mark.skipif(
    not hasattr(socket, "socketpair"),
    reason="platform lacks stream-socket support",
)


def battle_signature(ticks=4, n_units=48, **kwargs):
    with BattleSimulation(n_units, density=0.02, **kwargs) as sim:
        sim.run(ticks)
        return sim.state_signature()


@pytest.fixture(scope="module")
def endpoints():
    """Two live --listen worker processes on ephemeral loopback ports.

    Module-scoped: each engine run is one session per worker (INIT →
    ticks → STOP), and the listeners loop back to accept the next one,
    exactly like long-lived worker hosts would.
    """
    procs = []
    addresses = []
    for _ in range(2):
        process, address = spawn_listen_worker()
        procs.append(process)
        addresses.append(f"{address[0]}:{address[1]}")
    yield addresses
    for process in procs:
        process.terminate()
        process.join(timeout=5)


class TestWorkerEndpoint:
    def test_parse_forms(self):
        assert WorkerEndpoint.parse("battle-7.internal:9001") == WorkerEndpoint(
            "battle-7.internal", 9001
        )
        assert WorkerEndpoint.parse(("10.0.0.8", 9002)) == WorkerEndpoint(
            "10.0.0.8", 9002
        )
        ep = WorkerEndpoint("h", 1)
        assert WorkerEndpoint.parse(ep) is ep
        assert ep.address == ("h", 1)

    @pytest.mark.parametrize(
        "bad", ["nocolon", ":9", "host:", "host:notaport", 7, ("h",)]
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="endpoint"):
            WorkerEndpoint.parse(bad)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="worker_scope"):
            BattleSimulation(10, worker_scope="everything")
        with pytest.raises(ValueError, match="parallelism"):
            BattleSimulation(10, workers=["127.0.0.1:1"])
        with pytest.raises(ValueError, match="num_shards"):
            # one shard runs the decision stage in-process: a fleet
            # that would silently never be contacted must be rejected
            BattleSimulation(
                10, parallelism="processes", workers=["127.0.0.1:1"]
            )

    def test_reshard_to_one_shard_rejected_with_endpoints(self, endpoints):
        """The construction-time guard must also hold mid-run: a
        reshard to one shard would silently idle the remote fleet."""
        with BattleSimulation(
            24, density=0.02, seed=3, num_shards=2,
            parallelism="processes", workers=endpoints,
        ) as sim:
            sim.run(1)
            sim.engine.config.num_shards = 1
            with pytest.raises(ValueError, match="num_shards >= 2"):
                sim.run(1)

    def test_oversized_update_blob_names_the_endpoint(self, endpoints):
        """A snapshot beyond the frame guard is a configuration error,
        not a dead worker: no revive loop, actionable message."""
        with BattleSimulation(
            24, density=0.02, seed=3, num_shards=2,
            parallelism="processes", workers=endpoints,
            # admits the INIT handshake but not a 24-row snapshot
            worker_max_frame=512,
        ) as sim:
            with pytest.raises(RuntimeError, match="worker_max_frame"):
                sim.run(1)
        with pytest.raises(ValueError, match="host:port"):
            BattleSimulation(
                10, parallelism="processes", num_shards=2,
                workers="127.0.0.1:1",
            )
        with pytest.raises(ValueError, match="worker_scope='shards'"):
            BattleSimulation(
                10, mode="naive", parallelism="processes", num_shards=2,
                worker_scope="shards",
            )
        with pytest.raises(ValueError, match="worker_scope='shards'"):
            BattleSimulation(
                10, optimize_aoe=False, parallelism="processes",
                num_shards=2, worker_scope="shards",
            )

    def test_unreachable_endpoint_fails_loudly(self):
        # grab a port that is definitely closed
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(RuntimeError, match="cannot reach remote worker"):
            with BattleSimulation(
                24, density=0.02, num_shards=2, parallelism="processes",
                workers=[f"127.0.0.1:{dead_port}"],
            ) as sim:
                sim.run(1)


class TestRemoteWorkerEquivalence:
    """Socket workers must be invisible in the trajectory."""

    def test_full_replica_delta_and_snapshot_broadcasts(self, endpoints):
        baseline = battle_signature(seed=29)
        with BattleSimulation(
            48, density=0.02, seed=29, num_shards=4, shard_by="spatial",
            parallelism="processes", workers=endpoints,
        ) as sim:
            sim.run(4)
            assert sim.state_signature() == baseline
            stats = sim.engine.worker_stats
            assert stats.delta_broadcasts > 0
            delta_bytes = stats.bytes_broadcast
        with BattleSimulation(
            48, density=0.02, seed=29, num_shards=4, shard_by="spatial",
            parallelism="processes", workers=endpoints,
            worker_broadcast="snapshot",
        ) as sim:
            sim.run(4)
            assert sim.state_signature() == baseline
            stats = sim.engine.worker_stats
            assert stats.delta_broadcasts == 0
            assert delta_bytes < stats.bytes_broadcast

    def test_scoped_workers_spatial(self, endpoints):
        """Probe-split workers: scoped replicas, forwarded boundary
        probes, and strictly fewer broadcast bytes than full replicas."""
        baseline = battle_signature(ticks=5, seed=29)
        with BattleSimulation(
            48, density=0.02, seed=29, num_shards=4, shard_by="spatial",
            parallelism="processes", workers=endpoints,
        ) as sim:
            sim.run(5)
            assert sim.state_signature() == baseline
            full_bytes = sim.engine.worker_stats.bytes_broadcast
        with BattleSimulation(
            48, density=0.02, seed=29, num_shards=4, shard_by="spatial",
            parallelism="processes", workers=endpoints,
            worker_scope="shards",
        ) as sim:
            sim.run(5)
            assert sim.state_signature() == baseline
            stats = sim.engine.worker_stats
            # global aggregates and boundary probes really were forwarded
            assert stats.remote_evals > 0
            # each update row ships to exactly one worker instead of all
            assert stats.bytes_broadcast < full_bytes

    def test_scoped_workers_hashed_shard_key(self, endpoints):
        """Hashed sharding gives the probe split no locality proofs at
        all -- every probe forwards -- which stresses the forwarding
        path end to end and must still be bit-identical."""
        baseline = battle_signature(seed=31)
        with BattleSimulation(
            48, density=0.02, seed=31, num_shards=4, shard_by="key",
            parallelism="processes", workers=endpoints,
            worker_scope="shards",
        ) as sim:
            sim.run(4)
            assert sim.state_signature() == baseline
            assert sim.engine.worker_stats.remote_evals > 0

    def test_scoped_workers_snapshot_broadcast(self, endpoints):
        baseline = battle_signature(seed=37)
        with BattleSimulation(
            48, density=0.02, seed=37, num_shards=4, shard_by="spatial",
            parallelism="processes", workers=endpoints,
            worker_scope="shards", worker_broadcast="snapshot",
        ) as sim:
            sim.run(4)
            assert sim.state_signature() == baseline
            assert sim.engine.worker_stats.delta_broadcasts == 0

    @pytest.mark.parametrize("seed", [7, 23])
    def test_scoped_local_pipe_workers(self, seed):
        """The probe split is transport-agnostic: same-host pipe workers
        run the identical scoped protocol (fast path for CI)."""
        baseline = battle_signature(ticks=5, seed=seed)
        with BattleSimulation(
            48, density=0.02, seed=seed, num_shards=3, shard_by="spatial",
            parallelism="processes", max_workers=3, worker_scope="shards",
        ) as sim:
            sim.run(5)
            assert sim.state_signature() == baseline


class TestForwardedEvaluation:
    """The coordinator-side REQ_EVAL service scoped workers lean on."""

    def test_aggregate_and_action_requests(self):
        from repro.engine.shardexec import REPLY_EVAL, REPLY_EVAL_ERROR

        with BattleSimulation(24, density=0.02, seed=11) as sim:
            engine = sim.engine
            unit = engine.env.rows[0]
            # forwarded aggregate: answered through the engine's own
            # evaluator, with the performing unit re-bound as ctx.unit
            # (unit-keyed constructs like Random(i) must resolve exactly
            # as the serial engine would)
            reply = engine._answer_worker_request(
                ("aggregate", "CountFriendlyKnights", [unit], unit)
            )
            assert reply[0] == REPLY_EVAL
            assert isinstance(reply[1], int)
            # forwarded key action on a live target: one effect row
            reply = engine._answer_worker_request(
                ("action", "UseWeapon", [unit], unit)
            )
            assert reply[0] == REPLY_EVAL
            assert [row["key"] for row in reply[1]] == [unit["key"]]
            # dead/unknown target: globally no effect, the serial
            # semantics a scoped worker cannot determine alone
            reply = engine._answer_worker_request(
                ("action", "FireAt", [unit, -999], unit)
            )
            assert reply == (REPLY_EVAL, [])
            # failures come back as error replies, never raise: the
            # worker surfaces them through its own error path
            bad = engine._answer_worker_request(
                ("aggregate", "NoSuchFunction", [], None)
            )
            assert bad[0] == REPLY_EVAL_ERROR
            assert "NoSuchFunction" in bad[1]


class TestRemoteWorkerFaults:
    """Recovery must degrade to snapshot re-broadcast, never wrong answers."""

    def test_dropped_connection_reconnects_via_snapshot(self, endpoints):
        baseline = battle_signature(ticks=6, seed=31)
        with BattleSimulation(
            48, density=0.02, seed=31, num_shards=2, shard_by="spatial",
            parallelism="processes", workers=endpoints,
            worker_scope="shards",
        ) as sim:
            sim.run(2)
            pool = sim.engine._pool
            pool.debug_drop_worker(0)  # the socket vanishes mid-run
            sim.run(4)
            assert pool.stats.reconnects >= 1
            assert sim.state_signature() == baseline

    def test_stale_remote_worker_rejoins_via_snapshot(self, endpoints):
        baseline = battle_signature(ticks=6, seed=31)
        with BattleSimulation(
            48, density=0.02, seed=31, num_shards=2,
            parallelism="processes", workers=endpoints,
        ) as sim:
            sim.run(2)
            pool = sim.engine._pool
            # drift worker 0's *actual* replica epoch over the socket;
            # the next delta broadcast must bounce STALE and be repaired
            # by a snapshot within the same tick
            pool.debug_set_worker_epoch(0, 777)
            sim.run(4)
            assert pool.stats.stale_snapshots >= 1
            assert sim.state_signature() == baseline

    def test_mid_run_reshard_with_remote_workers_and_spectators(
        self, endpoints
    ):
        """The epoch-ack protocol (workers re-seed via forced snapshot)
        and the publish stage (spectator delta chain continues across
        the reshard) must recover independently -- and every query kind
        must still answer bit-identically at the final epoch."""
        baseline = battle_signature(ticks=6, seed=41)
        with BattleSimulation(
            48, density=0.02, seed=41, num_shards=2, shard_by="spatial",
            parallelism="processes", workers=endpoints,
            worker_scope="shards", spectators=True,
        ) as sim:
            with sim.spawn_spectator() as spectator:
                with spectator.client() as client:
                    sim.run(3)
                    pool = sim.engine._pool
                    snapshots_before = pool.stats.snapshot_broadcasts
                    sim.engine.config.num_shards = 3  # mid-run reshard
                    sim.run(3)
                    # every worker's scope changed: forced re-broadcast
                    assert (
                        pool.stats.snapshot_broadcasts > snapshots_before
                    )
                    assert sim.state_signature() == baseline
                    # the spectator kept chaining deltas across it all
                    epoch = sim.engine.tick_count + 1
                    authority = AuthoritativeQueryService(sim.engine)
                    for query, args in [
                        ("team_counts", ()),
                        ("CountFriendlyKnights", ()),
                        ("knn", (3, 10.0, 10.0)),
                    ]:
                        if query == "CountFriendlyKnights":
                            from repro.serve.queries import unit_ref

                            args = (unit_ref(sim.engine.env.rows[0]["key"]),)
                        got = client.query(query, *args, epoch=epoch)
                        want = authority.answer(query, *args)
                        assert got.value == want.value, query


class TestShutdownOrdering:
    """close() is idempotent and tears the publisher down first."""

    def test_close_is_idempotent(self, endpoints):
        sim = BattleSimulation(
            24, density=0.02, seed=3, num_shards=2,
            parallelism="processes", workers=endpoints, spectators=True,
        )
        spectator = sim.spawn_spectator()
        try:
            sim.run(2)
            sim.close()
            sim.close()  # second close must be a clean no-op
            assert sim.engine.publisher is None
            assert sim.engine._pool is None
        finally:
            spectator.close()
            sim.close()  # and a third, after spectator teardown

    def test_publisher_closes_before_worker_pool(self):
        """The engine must quiesce the spectator feed before tearing
        down workers, so subscribers see clean EOFs, not resets."""
        order = []
        with BattleSimulation(
            24, density=0.02, seed=3, num_shards=2,
            parallelism="processes", max_workers=2, spectators=True,
        ) as sim:
            sim.run(1)
            publisher = sim.engine.publisher
            pool = sim.engine._pool
            real_pub_close = publisher.close
            real_pool_close = pool.close
            publisher.close = lambda: (order.append("publisher"),
                                       real_pub_close())
            pool.close = lambda: (order.append("pool"), real_pool_close())
            sim.close()
        assert order == ["publisher", "pool"]

    def test_spectator_sees_clean_eof_on_close(self):
        """After close(), an attached spectator's feed ends with EOF and
        the replica keeps serving its last epoch -- no reset noise."""
        sim = BattleSimulation(
            24, density=0.02, seed=5, num_shards=2,
            parallelism="processes", max_workers=2, spectators=True,
        )
        spectator = sim.spawn_spectator()
        try:
            with spectator.client() as client:
                sim.run(2)
                expected = sim.engine.tick_count + 1
                # wait until the replica holds the final epoch
                import time

                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    if client.status()["epoch"] == expected:
                        break
                    time.sleep(0.02)
                sim.close()
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    status = client.status()
                    if not status["feed_alive"]:
                        break
                    time.sleep(0.02)
                status = client.status()
                assert not status["feed_alive"]
                assert status["epoch"] == expected
        finally:
            spectator.close()
            sim.close()
