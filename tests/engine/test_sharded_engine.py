"""Shard equivalence: the staged pipeline must be bit-identical to the
flat engine across shard counts, shard keys, maintenance modes, and
parallelism modes -- the guarantee that makes sharding a pure
performance knob.

Also covers the determinism of the ⊕-merge order itself and the
shard-aware algebra executor.
"""

import pytest

from repro.algebra.executor import execute_plan, execute_plan_sharded
from repro.algebra.rewrite import optimize
from repro.algebra.translate import translate_script
from repro.engine.clock import EngineConfig
from repro.env.combine import combine_all
from repro.env.sharding import ShardedEnvironment, make_sharder
from repro.env.table import EnvironmentTable
from repro.game.battle import BattleSimulation
from repro.sgl.interp import NaiveAggregateEvaluator
from repro.sgl.parser import parse_script
from tests.conftest import make_env


def battle_signature(ticks=4, **kwargs):
    with BattleSimulation(48, density=0.02, **kwargs) as sim:
        sim.run(ticks)
        return sim.state_signature()


class TestShardEquivalence:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("shard_by", ["key", "spatial", "player"])
    @pytest.mark.parametrize("num_shards", [2, 4])
    def test_sharded_matches_flat(self, seed, shard_by, num_shards):
        baseline = battle_signature(seed=seed)
        got = battle_signature(
            seed=seed, num_shards=num_shards, shard_by=shard_by
        )
        assert got == baseline

    @pytest.mark.parametrize(
        "maintenance", ["rebuild", "incremental", "auto"]
    )
    def test_sharded_matches_flat_under_maintenance(self, maintenance):
        baseline = battle_signature(seed=7, index_maintenance=maintenance)
        assert baseline == battle_signature(seed=7)  # modes agree flat
        for num_shards in (2, 3):
            got = battle_signature(
                seed=7,
                num_shards=num_shards,
                shard_by="spatial",
                index_maintenance=maintenance,
            )
            assert got == baseline

    def test_naive_mode_shards(self):
        baseline = battle_signature(seed=5, mode="naive")
        got = battle_signature(seed=5, mode="naive", num_shards=3)
        assert got == baseline

    def test_thread_parallelism_matches_serial(self):
        baseline = battle_signature(seed=9)
        for shard_by in ("key", "spatial"):
            got = battle_signature(
                seed=9,
                num_shards=4,
                shard_by=shard_by,
                parallelism="threads",
                max_workers=3,
            )
            assert got == baseline

    def test_thread_parallelism_with_incremental_maintenance(self):
        baseline = battle_signature(seed=13)
        got = battle_signature(
            seed=13,
            num_shards=2,
            shard_by="spatial",
            parallelism="threads",
            index_maintenance="incremental",
        )
        assert got == baseline

    def test_process_parallelism_matches_serial(self):
        baseline = battle_signature(ticks=3, seed=17)
        got = battle_signature(
            ticks=3,
            seed=17,
            num_shards=2,
            parallelism="processes",
            max_workers=2,
        )
        assert got == baseline


class TestEngineValidation:
    def test_bad_parallelism_rejected(self):
        with pytest.raises(ValueError):
            BattleSimulation(10, parallelism="fibers")

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ValueError):
            BattleSimulation(10, num_shards=0)

    def test_processes_requires_worker_factory(self, schema, registry):
        from repro.engine.clock import SimulationEngine

        env = make_env(schema, n=4)
        with pytest.raises(ValueError, match="worker_factory"):
            SimulationEngine(
                env,
                registry,
                lambda row: None,
                lambda combined, rng, tick: combined,
                EngineConfig(parallelism="processes", num_shards=2),
            )

    def test_tick_stats_record_shards(self):
        with BattleSimulation(16, num_shards=3, seed=1) as sim:
            stats = sim.tick()
        assert stats.shards == 3


class TestMergeDeterminism:
    """⊕-merge order: shard tables combine in ascending shard id, the
    output row order comes from the flat environment, and permuting the
    effect-table order cannot change any combined value."""

    def _effect_tables(self, schema, env, sharded):
        tables = []
        for shard_id, shard in enumerate(sharded):
            table = EnvironmentTable(schema)
            for row in shard.rows:
                effect = dict(row)
                effect["damage"] = 1 + shard_id
                table.rows.append(effect)
            tables.append(table)
        return tables

    def test_combined_row_order_follows_flat_env(self, schema):
        env = make_env(schema, n=20, grid=40, seed=6)
        sharded = ShardedEnvironment(env, 4, make_sharder("key", 4))
        tables = self._effect_tables(schema, env, sharded)
        combined = combine_all([env] + tables, schema)
        assert [r["key"] for r in combined.rows] == [
            r["key"] for r in env.rows
        ]

    def test_effect_table_order_is_a_pure_tie_break(self, schema):
        env = make_env(schema, n=20, grid=40, seed=6)
        sharded = ShardedEnvironment(env, 4, make_sharder("key", 4))
        tables = self._effect_tables(schema, env, sharded)
        forward = combine_all([env] + tables, schema)
        reversed_ = combine_all([env] + tables[::-1], schema)
        # same values in the same row order: ⊕ is commutative and the
        # flat env seeds every group
        assert forward.rows == reversed_.rows

    def test_shard_partition_equals_flat_combine(self, schema):
        env = make_env(schema, n=20, grid=40, seed=8)
        flat_effects = EnvironmentTable(schema)
        sharded = ShardedEnvironment(env, 3, make_sharder("key", 3))
        tables = self._effect_tables(schema, env, sharded)
        for table in tables:
            flat_effects.rows.extend(table.rows)
        assert combine_all([env, flat_effects], schema).multiset_equal(
            combine_all([env] + tables, schema)
        )


class TestShardedExecutor:
    SOURCE = """
    main(u) {
      (let c = CountEnemiesInRange(u, u.sight)) {
        if (c > 0 and u.cooldown = 0) then
          perform FireAt(u, NearestEnemy(u).key);
        if (c = 0) then
          perform MoveInDirection(u, 1, 0)
      }
    }
    """

    def test_matches_flat_execution(self, registry, schema):
        env = make_env(schema, n=18, grid=30, seed=2)
        script = parse_script(self.SOURCE)
        plan = optimize(translate_script(script, registry), registry)
        rng = lambda row, i: (row["key"] * 31 + i) & 0xFFFF  # noqa: E731

        flat = execute_plan(
            plan, env, registry, NaiveAggregateEvaluator(), rng
        )
        for num_shards, shard_by in ((2, "key"), (3, "player")):
            sharded = ShardedEnvironment(
                env, num_shards, make_sharder(shard_by, num_shards)
            )
            got = execute_plan_sharded(
                plan, sharded, registry, NaiveAggregateEvaluator(), rng
            )
            assert got == flat
            # deterministic output order, not just multiset equality
            assert got.rows == flat.rows

    def test_elided_e_plan_is_multiset_equal(self, registry, schema):
        """A plan whose E the optimizer elides has no env seed for the
        output order: values must still match the flat executor exactly
        (the documented contract is multiset equality there)."""
        env = make_env(schema, n=12, grid=30, seed=4)
        script = parse_script("main(u) { perform MoveInDirection(u, 1, 0) }")
        plan = optimize(translate_script(script, registry), registry)
        assert not plan.include_e  # the premise of this test
        rng = lambda row, i: 0  # noqa: E731
        flat = execute_plan(
            plan, env, registry, NaiveAggregateEvaluator(), rng
        )
        sharded = ShardedEnvironment(env, 3, make_sharder("key", 3))
        got = execute_plan_sharded(
            plan, sharded, registry, NaiveAggregateEvaluator(), rng
        )
        assert got == flat  # multiset equality
        assert sorted(r["key"] for r in got.rows) == sorted(
            r["key"] for r in flat.rows
        )
