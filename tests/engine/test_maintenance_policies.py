"""The EWMA auto-maintenance policy and cross-tick sweep-batch reuse."""

import pytest

from repro.engine.evaluator import (
    IndexedEvaluator,
    NaiveEvaluator,
    collect_call_hints,
)
from repro.env.schema import battle_schema
from repro.env.table import TableDelta, diff_by_key
from repro.game.battle import BattleSimulation
from repro.sgl.analysis import analyze_script
from repro.sgl.evalterm import EvalContext
from repro.sgl.parser import parse_script
from tests.conftest import make_env


def make_ctx(env, registry, agg_eval, unit):
    return EvalContext(
        env=env,
        registry=registry,
        agg_eval=agg_eval,
        rng=lambda row, i: 0,
        bindings={"u": unit},
        unit=unit,
    )


class TestEwmaPolicy:
    def test_invalid_policy_rejected(self, registry):
        with pytest.raises(ValueError):
            IndexedEvaluator(registry, auto_policy="sometimes")

    def test_bootstrap_uses_threshold(self, registry):
        evaluator = IndexedEvaluator(
            registry, maintenance="auto", incremental_threshold=0.25
        )
        evaluator._div_index["x"] = object()  # pretend something is retained
        small = TableDelta(base_size=100)
        small.inserted = [{"key": i} for i in range(10)]
        big = TableDelta(base_size=100)
        big.inserted = [{"key": i} for i in range(40)]
        evaluator._env = object()
        assert evaluator._should_apply(small)
        assert not evaluator._should_apply(big)

    def test_crossover_overrides_threshold(self, registry):
        """With learned costs, the fraction threshold stops mattering:
        a 40%-churn delta is applied when deltas are cheap, and a
        5%-churn delta is rejected when deltas are expensive."""
        evaluator = IndexedEvaluator(
            registry, maintenance="auto", incremental_threshold=0.25
        )
        evaluator._env = object()
        evaluator._div_index["x"] = object()

        evaluator._rebuild_cost = 1e-6  # per row
        evaluator._delta_cost = 1e-6  # per changed row
        big = TableDelta(base_size=100)
        big.inserted = [{"key": i} for i in range(40)]
        assert evaluator._should_apply(big)  # 40 * 1e-6 < 100 * 1e-6

        evaluator._delta_cost = 1e-4  # deltas 100x costlier than builds
        small = TableDelta(base_size=100)
        small.inserted = [{"key": i} for i in range(5)]
        assert not evaluator._should_apply(small)  # 5e-4 > 1e-4
        assert evaluator.stats.get("auto_ewma_decisions") == 2

    def test_threshold_policy_ignores_cost_model(self, registry):
        evaluator = IndexedEvaluator(
            registry,
            maintenance="auto",
            auto_policy="threshold",
            incremental_threshold=0.25,
        )
        evaluator._env = object()
        evaluator._div_index["x"] = object()
        evaluator._rebuild_cost = 1.0
        evaluator._delta_cost = 1e-9  # would scream "apply"
        big = TableDelta(base_size=100)
        big.inserted = [{"key": i} for i in range(40)]
        assert not evaluator._should_apply(big)

    def test_delta_budget_tracks_policy(self, registry):
        evaluator = IndexedEvaluator(
            registry, maintenance="auto", incremental_threshold=0.25
        )
        # bootstrap: fraction threshold
        assert evaluator.delta_budget(400) == 100
        # learned: crossover point
        evaluator._rebuild_cost = 2e-6
        evaluator._delta_cost = 1e-6
        assert evaluator.delta_budget(400) == 800

    def test_costs_learned_from_real_ticks(self, registry, schema):
        env = make_env(schema, n=30, grid=30, seed=21)
        evaluator = IndexedEvaluator(
            registry, maintenance="auto", incremental_threshold=0.9
        )
        fn = registry.aggregates["CountEnemiesInRange"]
        evaluator.begin_tick(env)
        for unit in env.rows[:4]:
            ctx = make_ctx(env, registry, evaluator, unit)
            evaluator.evaluate(fn, [unit, unit["sight"]], ctx)
        assert evaluator._rebuild_cost is None  # folds at next begin_tick

        new = env.copy()
        new.rows[0]["posx"] = (new.rows[0]["posx"] + 1) % 30
        delta = diff_by_key(env, new)
        evaluator.begin_tick(new, delta=delta)
        assert evaluator._rebuild_cost is not None and (
            evaluator._rebuild_cost > 0
        )
        assert evaluator._delta_cost is not None and evaluator._delta_cost > 0

    def test_engine_trajectories_identical_across_policies(self):
        signatures = []
        for auto_policy in ("ewma", "threshold"):
            sim = BattleSimulation(
                24,
                seed=5,
                density=0.02,
                index_maintenance="auto",
                auto_policy=auto_policy,
            )
            sim.run(4)
            signatures.append(sim.state_signature())
        assert signatures[0] == signatures[1]


SWEEP_SCRIPT = """
main(u) {
  (let w = WeakestWoundedFriendlyInRange(u, u.sight)) {
    perform UseWeapon(u)
  }
}
"""


class TestSweepBatchReuse:
    """A Figure-9 batch survives a tick when the delta touched neither
    its source partition nor its probe group."""

    FN = "WeakestWoundedFriendlyInRange"

    def setup_probe(self, registry, schema):
        env = make_env(schema, n=30, grid=30, seed=9)
        for row in env.rows[:6]:
            row["health"] -= 3  # wounded: the sweep's source partition
        script = parse_script(SWEEP_SCRIPT)
        analysis = analyze_script(script, registry, schema)
        (hint,) = collect_call_hints(analysis, {"main": "u"})
        probes = [r for r in env.rows if r["health"] == r["max_health"]][:4]
        return env, hint, probes

    def probe_all(self, evaluator, env, registry, probe_keys):
        fn = registry.aggregates[self.FN]
        out = []
        for unit in env.rows:
            if unit["key"] not in probe_keys:
                continue
            ctx = make_ctx(env, registry, evaluator, unit)
            out.append(evaluator.evaluate(fn, [unit, unit["sight"]], ctx))
        return out

    def test_batch_reused_when_sources_and_probes_untouched(
        self, registry, schema
    ):
        env, hint, probes = self.setup_probe(registry, schema)
        probe_keys = {p["key"] for p in probes}
        evaluator = IndexedEvaluator(registry, maintenance="incremental")
        evaluator.begin_tick(env, [(hint, probes)])
        self.probe_all(evaluator, env, registry, probe_keys)
        assert evaluator.stats.get("build_sweep") == 1

        # a healthy bystander's cooldown ticks: no source, no probe
        new = env.copy()
        bystander = next(
            r
            for r in new.rows
            if r["health"] == r["max_health"] and r["key"] not in probe_keys
        )
        bystander["cooldown"] += 1
        delta = diff_by_key(env, new)
        new_probes = [r for r in new.rows if r["key"] in probe_keys]
        evaluator.begin_tick(new, [(hint, new_probes)], delta=delta)
        assert evaluator.stats.get("sweep_reuse") == 1

        got = self.probe_all(evaluator, new, registry, probe_keys)
        naive = NaiveEvaluator()
        want = self.probe_all(naive, new, registry, probe_keys)
        assert got == want
        assert evaluator.stats.get("build_sweep") == 1  # never rebuilt

    def test_source_change_invalidates(self, registry, schema):
        env, hint, probes = self.setup_probe(registry, schema)
        probe_keys = {p["key"] for p in probes}
        evaluator = IndexedEvaluator(registry, maintenance="incremental")
        evaluator.begin_tick(env, [(hint, probes)])
        self.probe_all(evaluator, env, registry, probe_keys)

        new = env.copy()
        wounded = next(
            r for r in new.rows if r["health"] < r["max_health"]
        )
        wounded["health"] -= 1
        delta = diff_by_key(env, new)
        new_probes = [r for r in new.rows if r["key"] in probe_keys]
        evaluator.begin_tick(new, [(hint, new_probes)], delta=delta)
        assert evaluator.stats.get("sweep_reuse", 0) == 0

        got = self.probe_all(evaluator, new, registry, probe_keys)
        want = self.probe_all(NaiveEvaluator(), new, registry, probe_keys)
        assert got == want
        assert evaluator.stats.get("build_sweep") == 2

    def test_probe_change_invalidates(self, registry, schema):
        env, hint, probes = self.setup_probe(registry, schema)
        probe_keys = {p["key"] for p in probes}
        evaluator = IndexedEvaluator(registry, maintenance="incremental")
        evaluator.begin_tick(env, [(hint, probes)])
        self.probe_all(evaluator, env, registry, probe_keys)

        # a probing unit moves: its hinted arguments change
        new = env.copy()
        prober = next(r for r in new.rows if r["key"] in probe_keys)
        prober["posx"] = (prober["posx"] + 3) % 30
        delta = diff_by_key(env, new)
        new_probes = [r for r in new.rows if r["key"] in probe_keys]
        evaluator.begin_tick(new, [(hint, new_probes)], delta=delta)
        assert evaluator.stats.get("sweep_reuse", 0) == 0

        got = self.probe_all(evaluator, new, registry, probe_keys)
        want = self.probe_all(NaiveEvaluator(), new, registry, probe_keys)
        assert got == want

    def test_probe_group_shrink_invalidates(self, registry, schema):
        env, hint, probes = self.setup_probe(registry, schema)
        probe_keys = {p["key"] for p in probes}
        evaluator = IndexedEvaluator(registry, maintenance="incremental")
        evaluator.begin_tick(env, [(hint, probes)])
        self.probe_all(evaluator, env, registry, probe_keys)

        # same env, but one probe left the hinted group
        delta = diff_by_key(env, env.copy())
        kept = [r for r in env.rows if r["key"] in probe_keys][:-1]
        evaluator.begin_tick(env, [(hint, kept)], delta=delta)
        assert evaluator.stats.get("sweep_reuse", 0) == 0

    def test_empty_delta_retains_filterless_batches(self, registry, schema):
        """A quiet tick (zero changed rows) must retain every batch,
        including those of filterless aggregates where any *actual*
        change would dirty the sources."""
        env, _, probes = self.setup_probe(registry, schema)
        probe_keys = {p["key"] for p in probes}
        script = parse_script(
            "main(u) { (let w = WeakestEnemyInRange(u, u.sight)) "
            "{ perform UseWeapon(u) } }"
        )
        analysis = analyze_script(script, registry, schema)
        (hint,) = collect_call_hints(analysis, {"main": "u"})
        fn = registry.aggregates["WeakestEnemyInRange"]
        evaluator = IndexedEvaluator(registry, maintenance="incremental")
        evaluator.begin_tick(env, [(hint, probes)])
        for unit in probes:
            ctx = make_ctx(env, registry, evaluator, unit)
            evaluator.evaluate(fn, [unit, unit["sight"]], ctx)
        assert evaluator.stats.get("build_sweep") == 1

        quiet = diff_by_key(env, env.copy())
        assert quiet is not None and quiet.changed == 0
        new_probes = [r for r in env.rows if r["key"] in probe_keys]
        evaluator.begin_tick(env, [(hint, new_probes)], delta=quiet)
        assert evaluator.stats.get("sweep_reuse") == 1
        for unit in new_probes:
            ctx = make_ctx(env, registry, evaluator, unit)
            got = evaluator.evaluate(fn, [unit, unit["sight"]], ctx)
            want = NaiveEvaluator().evaluate(fn, [unit, unit["sight"]], ctx)
            assert got == want
        assert evaluator.stats.get("build_sweep") == 1

    def test_rebuild_mode_never_reuses(self, registry, schema):
        env, hint, probes = self.setup_probe(registry, schema)
        probe_keys = {p["key"] for p in probes}
        evaluator = IndexedEvaluator(registry, maintenance="rebuild")
        evaluator.begin_tick(env, [(hint, probes)])
        self.probe_all(evaluator, env, registry, probe_keys)
        delta = diff_by_key(env, env.copy())
        evaluator.begin_tick(
            env, [(hint, list(probes))], delta=delta
        )
        assert evaluator.stats.get("sweep_reuse", 0) == 0
