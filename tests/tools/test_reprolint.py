"""Fixture corpus for the reprolint rule packs.

Every rule gets at least one true-positive fixture (the bug class it
exists to catch) and at least one allowlisted-negative fixture (the
idiom the rule must NOT flag), so a rule regression fails loudly in
both directions.  The suppression and baseline machinery get their own
round-trip tests, and the CLI's stable exit codes are pinned last.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from tools.reprolint import ALL_RULES
from tools.reprolint.baseline import (
    fingerprints,
    load,
    save,
    split_by_baseline,
)
from tools.reprolint.cli import main
from tools.reprolint.engine import lint_paths
from tools.reprolint.rules import RULES_BY_ID


def lint_tree(tmp_path: Path, files: dict[str, str], rule_ids=None):
    """Write *files* (relpath -> source) under tmp_path and lint them."""
    for rel, src in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(src))
    if rule_ids is None:
        rules = ALL_RULES
    else:
        rules = [RULES_BY_ID[r] for r in rule_ids]
    findings, errors = lint_paths([tmp_path], rules, root=tmp_path)
    assert not errors, errors
    return findings


def lint_one(tmp_path, source, *, rule, rel="engine/mod.py"):
    return lint_tree(tmp_path, {rel: source}, rule_ids=[rule])


def rule_ids(findings):
    return [f.rule for f in findings]


# ---------------------------------------------------------------------------
# determinism pack
# ---------------------------------------------------------------------------


class TestNondetCall:
    def test_flags_wall_clock_on_tick_path(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import time


            def stamp():
                return time.time()
            """,
            rule="nondet-call",
        )
        assert rule_ids(findings) == ["nondet-call"]
        assert "time.time" in findings[0].message

    def test_flags_module_rng_via_alias(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            from random import randint


            def roll():
                return randint(1, 6)
            """,
            rule="nondet-call",
        )
        assert rule_ids(findings) == ["nondet-call"]

    def test_seeded_random_instance_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import random


            def make_rng(seed):
                return random.Random(seed)
            """,
            rule="nondet-call",
        )
        assert findings == []

    def test_support_modules_are_out_of_scope(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import time


            def stamp():
                return time.time()
            """,
            rule="nondet-call",
            rel="serve/mod.py",
        )
        assert findings == []

    def test_role_marker_overrides_path(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            # reprolint: role=tick
            import time


            def stamp():
                return time.time()
            """,
            rule="nondet-call",
            rel="serve/mod.py",
        )
        assert rule_ids(findings) == ["nondet-call"]


class TestUnstableHash:
    def test_flags_builtin_hash_on_tick_path(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def bucket_of(key, n):
                return hash(key) % n
            """,
            rule="unstable-hash",
        )
        assert rule_ids(findings) == ["unstable-hash"]

    def test_dunder_hash_delegation_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            class Point:
                def __hash__(self):
                    return hash((self.x, self.y))
            """,
            rule="unstable-hash",
        )
        assert findings == []


class TestUnsortedSetIter:
    def test_flags_bare_iteration_of_local_set(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def merge(items):
                pending = set(items)
                out = []
                for key in pending:
                    out.append(key)
                return out
            """,
            rule="unsorted-set-iter",
        )
        assert rule_ids(findings) == ["unsorted-set-iter"]
        assert "pending" in findings[0].message

    def test_sorted_wrap_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def merge(items):
                pending = set(items)
                out = []
                for key in sorted(pending):
                    out.append(key)
                return out
            """,
            rule="unsorted-set-iter",
        )
        assert findings == []

    def test_order_insensitive_consumer_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def total(items):
                pending = set(items)
                return sum(x for x in pending)
            """,
            rule="unsorted-set-iter",
        )
        assert findings == []


class TestUnsortedKeysIter:
    def test_flags_keys_call_iteration(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def names(cfg):
                out = []
                for key in cfg.keys():
                    out.append(key)
                return out
            """,
            rule="unsorted-keys-iter",
            rel="serve/mod.py",  # rule applies everywhere, not just tick
        )
        assert rule_ids(findings) == ["unsorted-keys-iter"]

    def test_iterating_the_dict_itself_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def names(cfg):
                out = []
                for key in cfg:
                    out.append(key)
                return sorted(cfg.keys())
            """,
            rule="unsorted-keys-iter",
        )
        assert findings == []


class TestIdCacheUnpinned:
    def test_flags_value_that_does_not_pin_referent(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def remember(cache, plan):
                cache[id(plan)] = plan.name
                return cache[id(plan)]
            """,
            rule="id-cache-unpinned",
        )
        assert rule_ids(findings) == ["id-cache-unpinned"]
        assert "id(plan)" in findings[0].message

    def test_tuple_value_pinning_referent_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def remember(cache, plan, result):
                cache[id(plan)] = (plan, result)
                return cache[id(plan)][1]
            """,
            rule="id-cache-unpinned",
        )
        assert findings == []

    def test_counter_idiom_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def count(refs, obj):
                refs[id(obj)] = refs.get(id(obj), 0) + 1
            """,
            rule="id-cache-unpinned",
        )
        assert findings == []


class TestDictMutationInIteration:
    def test_flags_del_during_iteration(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def prune(d):
                for key in d:
                    if not d[key]:
                        del d[key]
            """,
            rule="dict-mutation-in-iteration",
        )
        assert rule_ids(findings) == ["dict-mutation-in-iteration"]

    def test_collect_then_apply_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def prune(d):
                dead = [key for key, value in d.items() if not value]
                for key in dead:
                    del d[key]
            """,
            rule="dict-mutation-in-iteration",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# concurrency pack
# ---------------------------------------------------------------------------

_PUMP = """\
import threading


class Pump:
    def __init__(self):
        self.count = 0
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        {worker_body}

    def bump(self):
        {caller_body}
"""


class TestCrossThreadMutation:
    def test_flags_attr_mutated_from_both_domains(self, tmp_path):
        findings = lint_one(
            tmp_path,
            _PUMP.format(
                worker_body="self.count += 1",
                caller_body="self.count += 1",
            ),
            rule="cross-thread-mutation",
            rel="persist/mod.py",
        )
        assert rule_ids(findings) == ["cross-thread-mutation"] * 2
        assert "both thread domains" in findings[0].message

    def test_lock_guarded_mutations_are_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            _PUMP.format(
                worker_body="\n        ".join(
                    ["with self._lock:", "    self.count += 1"]
                ),
                caller_body="\n        ".join(
                    ["with self._lock:", "    self.count += 1"]
                ),
            ),
            rule="cross-thread-mutation",
            rel="persist/mod.py",
        )
        assert findings == []

    def test_single_domain_mutation_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            _PUMP.format(
                worker_body="self.count += 1",
                caller_body="return self.count",
            ),
            rule="cross-thread-mutation",
            rel="persist/mod.py",
        )
        assert findings == []


class TestTeardownOrder:
    def test_flags_join_before_any_stop_signal(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            class Writer:
                def close(self):
                    self._thread.join()
            """,
            rule="teardown-order",
            rel="persist/mod.py",
        )
        assert rule_ids(findings) == ["teardown-order"]

    def test_sentinel_before_join_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            class Writer:
                def close(self):
                    self._queue.put(None)
                    self._thread.join()
            """,
            rule="teardown-order",
            rel="persist/mod.py",
        )
        assert findings == []

    def test_str_join_is_not_a_thread_join(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            class Report:
                def close(self):
                    return ", ".join(self.parts)
            """,
            rule="teardown-order",
            rel="persist/mod.py",
        )
        assert findings == []


class TestNonDaemonThreadLeak:
    def test_flags_unjoined_nondaemon_thread(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import threading


            def spawn(fn):
                t = threading.Thread(target=fn)
                t.start()
                return t
            """,
            rule="nondaemon-thread-leak",
            rel="serve/mod.py",
        )
        assert rule_ids(findings) == ["nondaemon-thread-leak"]

    def test_daemon_thread_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import threading


            def spawn(fn):
                t = threading.Thread(target=fn, daemon=True)
                t.start()
                return t
            """,
            rule="nondaemon-thread-leak",
            rel="serve/mod.py",
        )
        assert findings == []

    def test_joined_in_enclosing_class_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import threading


            class Worker:
                def start(self):
                    self._thread = threading.Thread(target=self._run)
                    self._thread.start()

                def close(self):
                    self._stopped = True
                    self._thread.join()
            """,
            rule="nondaemon-thread-leak",
            rel="serve/mod.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# wire pack
# ---------------------------------------------------------------------------


class TestStructByteOrder:
    def test_flags_native_order_format(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import struct


            def frame(a, b):
                return struct.pack("BI", a, b)
            """,
            rule="struct-byte-order",
            rel="serve/mod.py",
        )
        assert rule_ids(findings) == ["struct-byte-order"]

    def test_network_order_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import struct


            def frame(a, b):
                return struct.pack(">BI", a, b)
            """,
            rule="struct-byte-order",
            rel="serve/mod.py",
        )
        assert findings == []


class TestWireVersionConstant:
    def test_flags_framing_module_without_version(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import struct


            def frame(a):
                return struct.pack(">B", a)
            """,
            rule="wire-version-constant",
            rel="serve/mod.py",
        )
        assert rule_ids(findings) == ["wire-version-constant"]

    def test_version_constant_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import struct

            PROTOCOL_VERSION = 1


            def frame(a):
                return struct.pack(">B", PROTOCOL_VERSION) + struct.pack(">B", a)
            """,
            rule="wire-version-constant",
            rel="serve/mod.py",
        )
        assert findings == []

    def test_imported_version_constant_counts(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "serve/proto.py": "FORMAT_VERSION = 2\n",
                "serve/mod.py": """\
                    import struct

                    from .proto import FORMAT_VERSION


                    def frame(a):
                        return struct.pack(">B", a)
                    """,
            },
            rule_ids=["wire-version-constant"],
        )
        assert findings == []


class TestEncodeDecodePair:
    def test_flags_encoder_without_counterpart(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def encode_blob(payload):
                return bytes(payload)
            """,
            rule="encode-decode-pair",
            rel="serve/mod.py",
        )
        assert rule_ids(findings) == ["encode-decode-pair"]
        assert "encode_blob" in findings[0].message

    def test_cross_file_plural_counterpart_is_found(self, tmp_path):
        findings = lint_tree(
            tmp_path,
            {
                "persist/writer.py": """\
                    def encode_record(rtype, payload):
                        return bytes([rtype]) + payload
                    """,
                "persist/reader.py": """\
                    def iter_records(fh):
                        return []
                    """,
            },
            rule_ids=["encode-decode-pair"],
        )
        assert findings == []


class TestRecvFrameGuard:
    def test_flags_unguarded_transport_recv(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def pull(transport):
                return transport.recv()
            """,
            rule="recv-frame-guard",
            rel="serve/mod.py",
        )
        assert rule_ids(findings) == ["recv-frame-guard"]

    def test_taxonomy_handler_is_allowlisted(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def pull(transport):
                try:
                    return transport.recv()
                except (FrameError, OSError):
                    return None
            """,
            rule="recv-frame-guard",
            rel="serve/mod.py",
        )
        assert findings == []

    def test_raw_socket_recv_is_out_of_scope(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            def pull(sock):
                return sock.recv(4096)
            """,
            rule="recv-frame-guard",
            rel="serve/mod.py",
        )
        assert findings == []


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

_NONDET = """\
import time


def stamp():
    return time.time(){trailer}
"""


class TestSuppressions:
    def test_justified_suppression_silences_finding(self, tmp_path):
        findings = lint_one(
            tmp_path,
            _NONDET.format(
                trailer="  # reprolint: disable=nondet-call -- ops log only"
            ),
            rule="nondet-call",
        )
        assert findings == []

    def test_unjustified_suppression_is_itself_flagged(self, tmp_path):
        findings = lint_one(
            tmp_path,
            _NONDET.format(trailer="  # reprolint: disable=nondet-call"),
            rule="nondet-call",
        )
        assert rule_ids(findings) == ["bad-suppression"]
        assert "justification" in findings[0].message

    def test_comment_block_above_carries_suppression(self, tmp_path):
        findings = lint_one(
            tmp_path,
            """\
            import time


            def stamp():
                # reprolint: disable=nondet-call -- wall clock feeds an
                # ops log, never the trajectory
                return time.time()
            """,
            rule="nondet-call",
        )
        assert findings == []

    def test_suppression_for_other_rule_does_not_silence(self, tmp_path):
        findings = lint_one(
            tmp_path,
            _NONDET.format(
                trailer="  # reprolint: disable=unstable-hash -- wrong rule"
            ),
            rule="nondet-call",
        )
        assert rule_ids(findings) == ["nondet-call"]


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------


def _findings_and_lines(tmp_path, source):
    findings = lint_one(tmp_path, source, rule="nondet-call")
    lines = (tmp_path / "engine/mod.py").read_text().splitlines()
    line_text = {
        (f.path, f.line): lines[f.line - 1] for f in findings
    }
    return findings, line_text


class TestBaseline:
    SOURCE = """\
    import time


    def stamp():
        return time.time()
    """

    def test_round_trip_grandfathers_findings(self, tmp_path):
        findings, line_text = _findings_and_lines(tmp_path, self.SOURCE)
        assert findings
        path = tmp_path / "baseline.json"
        save(path, fingerprints(findings, line_text))
        new, old = split_by_baseline(findings, line_text, load(path))
        assert new == []
        assert old == findings

    def test_fingerprints_survive_line_shifts(self, tmp_path):
        findings, line_text = _findings_and_lines(tmp_path, self.SOURCE)
        prints = fingerprints(findings, line_text)
        shifted = '"""docstring pushes everything down."""\n\n' + textwrap.dedent(
            self.SOURCE
        )
        (tmp_path / "engine/mod.py").write_text(shifted)
        findings2, _ = lint_paths(
            [tmp_path], [RULES_BY_ID["nondet-call"]], root=tmp_path
        )
        lines = shifted.splitlines()
        line_text2 = {
            (f.path, f.line): lines[f.line - 1] for f in findings2
        }
        assert fingerprints(findings2, line_text2) == prints

    def test_repeated_identical_lines_get_distinct_fingerprints(self, tmp_path):
        source = """\
        import time


        def stamp():
            return time.time()


        def stamp2():
            return time.time()
        """
        findings, line_text = _findings_and_lines(tmp_path, source)
        prints = fingerprints(findings, line_text)
        assert len(prints) == 2
        assert len(set(prints)) == 2
        assert prints[0].endswith(":0") and prints[1].endswith(":1")

    def test_unknown_baseline_version_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "fingerprints": []}))
        with pytest.raises(ValueError, match="version"):
            load(path)


# ---------------------------------------------------------------------------
# CLI exit codes
# ---------------------------------------------------------------------------


class TestCli:
    def _write(self, tmp_path, source=TestBaseline.SOURCE):
        p = tmp_path / "engine/mod.py"
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(textwrap.dedent(source))

    def test_findings_exit_1(self, tmp_path, monkeypatch, capsys):
        self._write(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = main(["engine", "--no-baseline"])
        assert code == 1
        assert "nondet-call" in capsys.readouterr().out

    def test_clean_exit_0(self, tmp_path, monkeypatch, capsys):
        self._write(tmp_path, "X = 1\n")
        monkeypatch.chdir(tmp_path)
        code = main(["engine", "--no-baseline"])
        assert code == 0
        assert "clean" in capsys.readouterr().out

    def test_missing_path_exit_2(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        assert main(["no-such-dir"]) == 2

    def test_unknown_rule_exit_2(self, tmp_path, monkeypatch):
        self._write(tmp_path)
        monkeypatch.chdir(tmp_path)
        assert main(["engine", "--rule", "no-such-rule"]) == 2

    def test_write_baseline_then_gate_passes(self, tmp_path, monkeypatch):
        self._write(tmp_path)
        monkeypatch.chdir(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert main(["engine", "--write-baseline", "--baseline", str(baseline)]) == 0
        assert main(["engine", "--baseline", str(baseline)]) == 0
        # a new finding on top of the baseline still fails the gate
        extra = tmp_path / "engine/other.py"
        extra.write_text("import time\n\n\ndef f():\n    return time.time()\n")
        assert main(["engine", "--baseline", str(baseline)]) == 1

    def test_json_format_is_parseable(self, tmp_path, monkeypatch, capsys):
        self._write(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = main(["engine", "--no-baseline", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["findings"][0]["rule"] == "nondet-call"

    def test_rule_filter_restricts_run(self, tmp_path, monkeypatch, capsys):
        self._write(tmp_path)
        monkeypatch.chdir(tmp_path)
        code = main(["engine", "--no-baseline", "--rule", "unstable-hash"])
        assert code == 0

    def test_list_rules_exit_0(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.id in out

    def test_syntax_error_exit_1(self, tmp_path, monkeypatch, capsys):
        p = tmp_path / "engine/broken.py"
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text("def broken(:\n")
        monkeypatch.chdir(tmp_path)
        assert main(["engine", "--no-baseline"]) == 1


# ---------------------------------------------------------------------------
# repo gate: the tree this test suite ships with must be clean
# ---------------------------------------------------------------------------


class TestRepoIsClean:
    def test_src_tree_has_no_unbaselined_findings(self, monkeypatch):
        repo_root = Path(__file__).resolve().parents[2]
        monkeypatch.chdir(repo_root)
        assert main(["src"]) == 0
