"""Shared fixtures: schemas, registries, and deterministic battle envs."""

from __future__ import annotations

import random

import pytest

from repro.engine.rng import TickRandom
from repro.env.schema import battle_schema
from repro.env.table import EnvironmentTable
from repro.game.scripts import build_registry
from repro.game.units import unit_row


@pytest.fixture(scope="session")
def schema():
    return battle_schema()


@pytest.fixture(scope="session")
def registry():
    return build_registry()


def make_env(schema, n=24, grid=40, seed=0, types=("knight", "archer", "healer")):
    """A deterministic battle environment with distinct positions."""
    rng = random.Random(seed)
    env = EnvironmentTable(schema)
    taken = set()
    for key in range(n):
        while True:
            x, y = rng.randrange(grid), rng.randrange(grid)
            if (x, y) not in taken:
                taken.add((x, y))
                break
        env.rows.append(
            unit_row(key, key % 2, types[key % len(types)], x, y, schema=schema)
        )
    return env


@pytest.fixture()
def small_env(schema):
    return make_env(schema, n=24, grid=30, seed=0)


@pytest.fixture()
def tick_rng():
    return TickRandom(seed=1234, tick=1)
