"""Shared fixtures: schemas, registries, and deterministic battle envs."""

from __future__ import annotations

import random

import pytest

from repro.engine.rng import TickRandom
from repro.env.schema import battle_schema
from repro.env.table import EnvironmentTable
from repro.game.scripts import build_registry
from repro.game.units import unit_row


@pytest.fixture(scope="session")
def schema():
    return battle_schema()


@pytest.fixture(scope="session")
def registry():
    return build_registry()


def make_env(schema, n=24, grid=40, seed=0, types=("knight", "archer", "healer")):
    """A deterministic battle environment with distinct positions."""
    rng = random.Random(seed)
    env = EnvironmentTable(schema)
    taken = set()
    for key in range(n):
        while True:
            x, y = rng.randrange(grid), rng.randrange(grid)
            if (x, y) not in taken:
                taken.add((x, y))
                break
        env.rows.append(
            unit_row(key, key % 2, types[key % len(types)], x, y, schema=schema)
        )
    return env


@pytest.fixture()
def small_env(schema):
    return make_env(schema, n=24, grid=30, seed=0)


@pytest.fixture()
def tick_rng():
    return TickRandom(seed=1234, tick=1)


def assert_no_thread_leaks(before, *, grace=2.0):
    """Fail when a non-daemon thread outlives the test that spawned it.

    *before* is the ``set(threading.enumerate())`` captured at test
    start.  New non-daemon threads get a short grace join (teardown
    paths signal their workers asynchronously) and must be gone after
    it -- a survivor means some ``close()`` forgot to signal or join,
    exactly the bug class reprolint's concurrency pack flags statically.
    """
    import threading

    leaked = []
    for t in threading.enumerate():
        if t in before or t.daemon or t is threading.current_thread():
            continue
        t.join(timeout=grace)
        if t.is_alive():
            leaked.append(t.name)
    assert not leaked, (
        f"non-daemon thread(s) survived test teardown: {leaked}; "
        "every close()/shutdown() must signal and join its workers"
    )


@pytest.fixture()
def no_thread_leaks():
    """Opt-in guard: no non-daemon thread may outlive the test."""
    import threading

    before = set(threading.enumerate())
    yield
    assert_no_thread_leaks(before)
