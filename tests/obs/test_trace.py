"""The Chrome trace-event recorder: format, torn files, thread safety."""

import json
import threading
import time

from repro.obs import (
    TID_LOG,
    TID_MAIN,
    TID_WORKER_BASE,
    TraceRecorder,
    load_trace,
)


def test_clean_close_is_well_formed_json(tmp_path):
    path = tmp_path / "trace.json"
    with TraceRecorder(str(path)) as rec:
        rec.instant("boot", "test")
        t0 = time.perf_counter()
        t1 = time.perf_counter()
        rec.complete_perf("work", "test", t0, t1, epoch=3, items=2)
    events = json.loads(path.read_text())  # strict parse, no leniency
    assert isinstance(events, list)
    names = [e["name"] for e in events]
    assert "process_name" in names  # emitted at construction
    assert "boot" in names and "work" in names


def test_complete_perf_carries_epoch_and_args(tmp_path):
    path = tmp_path / "trace.json"
    rec = TraceRecorder(str(path))
    t0 = time.perf_counter()
    time.sleep(0.01)
    t1 = time.perf_counter()
    rec.complete_perf("stage", "tick", t0, t1, tid=TID_LOG, epoch=7, bytes=42)
    rec.close()
    (ev,) = [e for e in load_trace(str(path)) if e["name"] == "stage"]
    assert ev["ph"] == "X"
    assert ev["tid"] == TID_LOG
    assert ev["args"]["epoch"] == 7
    assert ev["args"]["bytes"] == 42
    # ~10ms in microseconds, on the shared perf_counter clock
    assert 5_000 < ev["dur"] < 500_000
    assert ev["ts"] >= 0


def test_span_context_manager(tmp_path):
    path = tmp_path / "trace.json"
    with TraceRecorder(str(path)) as rec:
        with rec.span("inner", "test", epoch=1, k="v"):
            pass
    (ev,) = [e for e in load_trace(str(path)) if e["name"] == "inner"]
    assert ev["ph"] == "X"
    assert ev["args"] == {"k": "v", "epoch": 1}


def test_torn_file_loads(tmp_path):
    path = tmp_path / "trace.json"
    rec = TraceRecorder(str(path))
    rec.instant("a", "test")
    rec.instant("b", "test")
    rec.flush()  # crash: never closed, no terminator on disk
    events = load_trace(str(path))
    assert {"a", "b"} <= {e["name"] for e in events}
    rec.close()


def test_emit_after_close_is_dropped(tmp_path):
    path = tmp_path / "trace.json"
    rec = TraceRecorder(str(path))
    rec.close()
    rec.instant("late", "test")  # must not raise, must not corrupt
    events = json.loads(path.read_text())
    assert "late" not in {e["name"] for e in events}


def test_thread_name_tracks(tmp_path):
    path = tmp_path / "trace.json"
    with TraceRecorder(str(path)) as rec:
        rec.thread_name(TID_WORKER_BASE + 2, "worker 2 round trip")
    metas = [
        e for e in load_trace(str(path))
        if e["ph"] == "M" and e["name"] == "thread_name"
    ]
    by_tid = {e["tid"]: e["args"]["name"] for e in metas}
    assert by_tid[TID_MAIN] == "tick pipeline"
    assert by_tid[TID_WORKER_BASE + 2] == "worker 2 round trip"


def test_concurrent_emit_stays_well_formed(tmp_path):
    path = tmp_path / "trace.json"
    rec = TraceRecorder(str(path))

    def emit(tid):
        for i in range(50):
            rec.instant(f"t{tid}-{i}", "test", tid=tid)

    threads = [threading.Thread(target=emit, args=(t,)) for t in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    rec.close()
    events = json.loads(path.read_text())
    assert len([e for e in events if e["ph"] == "i"]) == 200
