"""The metrics registry: instruments, labels, rendering, and the null path."""

import pickle
import urllib.request

import pytest

from repro.obs import (
    NULL_REGISTRY,
    MetricsRegistry,
    RegistryStats,
    StatCounters,
    serve_prometheus,
)


class TestInstruments:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("widgets_total")
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_gauge_set_inc_dec(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.set(7)
        g.inc(2)
        g.dec()
        assert g.value == 8

    def test_histogram_aggregates(self):
        reg = MetricsRegistry()
        h = reg.histogram("latency_seconds")
        for v in (0.5, 1.5, 1.0):
            h.observe(v)
        assert h.count == 3
        assert h.total == pytest.approx(3.0)
        assert h.min == 0.5
        assert h.max == 1.5
        assert h.mean == pytest.approx(1.0)

    def test_empty_histogram_mean(self):
        assert MetricsRegistry().histogram("h").mean == 0.0


class TestRegistry:
    def test_get_or_create_is_stable(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.counter("a", shard=1) is reg.counter("a", shard=1)
        assert reg.counter("a", shard=1) is not reg.counter("a", shard=2)

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        assert reg.counter("a", x=1, y=2) is reg.counter("a", y=2, x=1)

    def test_snapshot_flattens(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        reg.gauge("g", shard=0).set(9)
        reg.histogram("h").observe(2.0)
        snap = reg.snapshot()
        assert snap["c"] == 3
        assert snap['g{shard="0"}'] == 9
        assert snap["h:count"] == 1
        assert snap["h:sum"] == 2.0

    def test_render_prometheus(self):
        reg = MetricsRegistry(namespace="testns")
        reg.counter("reqs_total", route="tick").inc(2)
        reg.gauge("depth").set(5)
        reg.histogram("lat_seconds").observe(0.25)
        text = reg.render_prometheus()
        assert '# TYPE testns_reqs_total counter' in text
        assert 'testns_reqs_total{route="tick"} 2' in text
        assert "testns_depth 5" in text
        # histograms render as Prometheus summaries
        assert "testns_lat_seconds_count 1" in text
        assert "testns_lat_seconds_sum 0.25" in text
        assert text.endswith("\n")

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(5)
        reg.reset()
        assert reg.counter("c").value == 0


class TestNullRegistry:
    def test_disabled_and_shared(self):
        assert NULL_REGISTRY.enabled is False
        # the no-op path hands back the same instrument for every name:
        # nothing accumulates, nothing allocates per call site
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b", x=1)
        assert NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")

    def test_null_instruments_accept_writes(self):
        NULL_REGISTRY.counter("x").inc(3)
        NULL_REGISTRY.gauge("x").set(7)
        NULL_REGISTRY.histogram("x").observe(1.0)
        assert NULL_REGISTRY.snapshot() == {}
        assert NULL_REGISTRY.render_prometheus().strip() == ""


class TestStatCounters:
    def test_is_a_dict(self):
        s = StatCounters(prefix="evaluator")
        s.bump("full_evals")
        s.bump("full_evals", 2)
        assert s["full_evals"] == 3
        assert s.get("missing", 0) == 0
        assert dict(s) == {"full_evals": 3}
        assert s == {"full_evals": 3}

    def test_write_through_to_registry(self):
        reg = MetricsRegistry()
        s = StatCounters(prefix="evaluator")
        s.bump("before_bind")
        s.bind(reg, "evaluator")
        s.bump("after_bind", 4)
        snap = reg.snapshot()
        # binding mirrors everything already accumulated, then tracks
        assert snap["evaluator_before_bind"] == 1
        assert snap["evaluator_after_bind"] == 4
        s["after_bind"] = 10
        assert reg.snapshot()["evaluator_after_bind"] == 10

    def test_pickles_as_plain_dict(self):
        reg = MetricsRegistry()
        s = StatCounters(prefix="p")
        s.bind(reg, "p")
        s.bump("k", 2)
        clone = pickle.loads(pickle.dumps(s))
        assert clone == {"k": 2}
        assert type(clone) is dict


class _DemoStats(RegistryStats):
    _PREFIX = "demo"
    _COUNTER_FIELDS = ("hits", "misses")
    _GAUGE_FIELDS = {"depth": -1}


class TestRegistryStats:
    def test_plain_attribute_behaviour(self):
        s = _DemoStats()
        assert s.hits == 0
        assert s.depth == -1
        s.hits += 3
        s.depth = 9
        assert s.hits == 3
        assert s.depth == 9
        assert s.as_dict() == {"hits": 3, "misses": 0, "depth": 9}

    def test_registry_backed_cells(self):
        reg = MetricsRegistry()
        s = _DemoStats(reg)
        s.hits += 2
        s.depth = 4
        snap = reg.snapshot()
        assert snap["demo_hits"] == 2
        assert snap["demo_depth"] == 4
        # the view and the registry share the same cells
        assert s.hits == reg.counter("demo_hits").value

    def test_null_registry_falls_back_to_private_cells(self):
        a = _DemoStats(NULL_REGISTRY)
        b = _DemoStats(NULL_REGISTRY)
        a.hits += 5
        assert a.hits == 5
        assert b.hits == 0  # not shared through the null instruments


class TestServePrometheus:
    def test_http_scrape(self):
        reg = MetricsRegistry()
        reg.counter("ticks_total").inc(12)
        server, (host, port) = serve_prometheus(reg)
        try:
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as resp:
                assert resp.status == 200
                body = resp.read().decode()
            assert "repro_ticks_total 12" in body
            # scrape reflects live values, not a snapshot at serve time
            reg.counter("ticks_total").inc()
            with urllib.request.urlopen(
                f"http://{host}:{port}/metrics", timeout=5
            ) as resp:
                assert "repro_ticks_total 13" in resp.read().decode()
            # any other path 404s
            with pytest.raises(urllib.error.HTTPError):
                urllib.request.urlopen(
                    f"http://{host}:{port}/other", timeout=5
                )
        finally:
            server.shutdown()
            server.server_close()
