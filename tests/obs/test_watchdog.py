"""The slow-tick watchdog: EWMA gating, flag contents, logging."""

import logging

import pytest

from repro.obs import SlowTickWatchdog


def feed_steady(dog, n, total=0.010, start=1):
    for i in range(start, start + n):
        assert dog.observe(i, total, {"decision": total}) is False


def test_factor_must_exceed_one():
    with pytest.raises(ValueError):
        SlowTickWatchdog(1.0)
    with pytest.raises(ValueError):
        SlowTickWatchdog(0.5)


def test_quiet_on_steady_ticks():
    dog = SlowTickWatchdog(3.0)
    feed_steady(dog, 20)
    assert dog.flagged == []
    assert dog.ewma == pytest.approx(0.010)


def test_fires_on_stall_with_breakdown(caplog):
    dog = SlowTickWatchdog(3.0)
    feed_steady(dog, 5)
    breakdown = {"decision": 0.002, "mechanics": 0.095, "aoe": 0.003}
    with caplog.at_level(logging.WARNING, logger="repro.obs.watchdog"):
        assert dog.observe(6, 0.100, breakdown) is True
    (flag,) = dog.flagged
    assert flag["tick"] == 6
    assert flag["total"] == pytest.approx(0.100)
    assert flag["breakdown"] == breakdown
    # the WARNING names the worst stage first
    (record,) = caplog.records
    assert "slow tick 6" in record.getMessage()
    assert record.getMessage().index("mechanics") < record.getMessage().index(
        "decision"
    )


def test_stall_does_not_teach_the_ewma():
    dog = SlowTickWatchdog(3.0)
    feed_steady(dog, 5)
    before = dog.ewma
    dog.observe(6, 1.0, {"mechanics": 1.0})  # a one-second stall
    assert dog.ewma == before  # not fed the flagged total
    # the very next equally-slow tick still flags
    assert dog.observe(7, 1.0, {"mechanics": 1.0}) is True


def test_warmup_ticks_never_flag():
    dog = SlowTickWatchdog(2.0, warmup=3)
    assert dog.observe(1, 0.001, {}) is False  # seeds the EWMA
    # 100x slower than the EWMA but still inside warmup
    assert dog.observe(2, 0.100, {}) is False
    assert dog.observe(3, 0.100, {}) is False
    # past warmup the same ratio flags
    assert dog.observe(4, 10 * dog.ewma, {}) is True
