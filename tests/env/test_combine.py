"""The ⊕ combination operator: Eq. (2), Eq. (3), and Example 4.3."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env.combine import combine, combine_all, combine_pair
from repro.env.schema import Attribute, AttributeType, Schema
from repro.env.table import EnvironmentTable


def make_schema():
    c = AttributeType.CONST
    return Schema(
        [
            Attribute("key", c),
            Attribute("pos", c),
            Attribute("damage", AttributeType.SUM),
            Attribute("aura", AttributeType.MAX, default=0),
            Attribute("freeze", AttributeType.MIN, default=float("inf")),
        ]
    )


SCHEMA = make_schema()


def table(rows):
    t = EnvironmentTable(SCHEMA)
    for key, pos, damage, aura, freeze in rows:
        t.rows.append(
            {"key": key, "pos": pos, "damage": damage, "aura": aura,
             "freeze": freeze}
        )
    return t


class TestCombine:
    def test_sum_stacks(self):
        result = combine(table([(1, 0, 3, 0, 0), (1, 0, 4, 0, 0)]))
        assert result.rows[0]["damage"] == 7

    def test_max_takes_extreme(self):
        result = combine(table([(1, 0, 0, 2, 0), (1, 0, 0, 5, 0)]))
        assert result.rows[0]["aura"] == 5

    def test_min_takes_extreme(self):
        result = combine(table([(1, 0, 0, 0, 9), (1, 0, 0, 0, 4)]))
        assert result.rows[0]["freeze"] == 4

    def test_groups_by_all_const_attributes(self):
        # same key but different const pos: two groups (the paper groups
        # by K *and* the const attributes)
        result = combine(table([(1, 0, 3, 0, 0), (1, 1, 4, 0, 0)]))
        assert len(result) == 2

    def test_distinct_keys_stay_separate(self):
        result = combine(table([(1, 0, 3, 0, 0), (2, 0, 4, 0, 0)]))
        assert len(result) == 2

    def test_empty(self):
        assert len(combine(table([]))) == 0

    def test_combine_pair_equals_combine_of_union(self):
        a = table([(1, 0, 3, 1, 0)])
        b = table([(1, 0, 4, 5, 0), (2, 0, 1, 0, 0)])
        assert combine_pair(a, b) == combine(a.union(b))

    def test_combine_all_equals_iterated_pairs(self):
        tables = [
            table([(1, 0, 1, 0, 5)]),
            table([(1, 0, 2, 3, 1)]),
            table([(2, 0, 4, 2, 2)]),
        ]
        expected = combine_pair(combine_pair(tables[0], tables[1]), tables[2])
        assert combine_all(tables, SCHEMA) == expected


# -- property tests for the algebraic laws of Section 4.2 (Eq. 3) -----------

row_strategy = st.tuples(
    st.integers(0, 4),                      # key (collisions on purpose)
    st.integers(0, 1),                      # pos
    st.integers(-10, 10),                   # damage (sum)
    st.integers(0, 10),                     # aura (max)
    st.integers(0, 10),                     # freeze (min)
)

tables_strategy = st.lists(row_strategy, max_size=12).map(table)


@settings(max_examples=120, deadline=None)
@given(tables_strategy, tables_strategy)
def test_oplus_commutative(a, b):
    assert combine_pair(a, b) == combine_pair(b, a)


@settings(max_examples=120, deadline=None)
@given(tables_strategy, tables_strategy, tables_strategy)
def test_oplus_associative(a, b, c):
    left = combine_pair(combine_pair(a, b), c)
    right = combine_pair(a, combine_pair(b, c))
    assert left == right


@settings(max_examples=120, deadline=None)
@given(tables_strategy)
def test_oplus_idempotent(a):
    # Eq. 3 with E2 = ∅: ⊕(⊕(E)) = ⊕(E)
    assert combine(combine(a)) == combine(a)


@settings(max_examples=120, deadline=None)
@given(tables_strategy, tables_strategy)
def test_eq3_incremental_combining(a, b):
    # ⊕(E1 ⊎ E2) = ⊕(⊕(E1) ⊎ E2)
    assert combine(a.union(b)) == combine(combine(a).union(b))


@settings(max_examples=120, deadline=None)
@given(tables_strategy, tables_strategy)
def test_eq3_double_combine(a, b):
    # ⊕(E1 ⊎ E2) = ⊕(⊕(E1) ⊎ ⊕(E2))
    assert combine(a.union(b)) == combine_pair(combine(a), combine(b))


@settings(max_examples=80, deadline=None)
@given(tables_strategy)
def test_combined_table_is_keyed_by_const_signature(a):
    combined = combine(a)
    signatures = [(r["key"], r["pos"]) for r in combined]
    assert len(signatures) == len(set(signatures))
