"""EnvironmentTable multiset semantics and algebra primitives."""

import pytest

from repro.env.schema import Attribute, AttributeType, Schema, SchemaError
from repro.env.table import EnvironmentTable, TableDelta, diff_by_key


@pytest.fixture()
def schema():
    c, s = AttributeType.CONST, AttributeType.SUM
    return Schema(
        [Attribute("key", c), Attribute("pos", c), Attribute("damage", s)]
    )


def row(key, pos=0, damage=0):
    return {"key": key, "pos": pos, "damage": damage}


class TestBasics:
    def test_empty(self, schema):
        table = EnvironmentTable(schema)
        assert len(table) == 0
        assert not table

    def test_insert_and_iterate(self, schema):
        table = EnvironmentTable(schema, [row(1), row(2)])
        assert len(table) == 2
        assert [r["key"] for r in table] == [1, 2]

    def test_insert_validates(self, schema):
        table = EnvironmentTable(schema)
        with pytest.raises(SchemaError):
            table.insert({"key": 1})

    def test_insert_copies_rows(self, schema):
        source = row(1)
        table = EnvironmentTable(schema, [source])
        source["damage"] = 99
        assert table.rows[0]["damage"] == 0

    def test_insert_unit_uses_defaults(self, schema):
        table = EnvironmentTable(schema)
        stored = table.insert_unit(key=1, pos=5)
        assert stored["damage"] == 0

    def test_insert_unit_rejects_unknown(self, schema):
        with pytest.raises(SchemaError):
            EnvironmentTable(schema).insert_unit(key=1, pos=0, bogus=2)

    def test_insert_unit_requires_const_values(self, schema):
        # key/pos have no defaults; omitting them must fail
        with pytest.raises(SchemaError):
            EnvironmentTable(schema).insert_unit(key=1)

    def test_column(self, schema):
        table = EnvironmentTable(schema, [row(1, 5), row(2, 7)])
        assert table.column("pos") == [5, 7]

    def test_by_key(self, schema):
        table = EnvironmentTable(schema, [row(1), row(2)])
        assert set(table.by_key()) == {1, 2}

    def test_by_key_rejects_duplicates(self, schema):
        table = EnvironmentTable(schema, [row(1), row(1)])
        with pytest.raises(ValueError):
            table.by_key()


class TestAlgebraPrimitives:
    def test_select(self, schema):
        table = EnvironmentTable(schema, [row(1, 1), row(2, 2), row(3, 3)])
        picked = table.select(lambda r: r["pos"] >= 2)
        assert [r["key"] for r in picked] == [2, 3]

    def test_project(self, schema):
        table = EnvironmentTable(schema, [row(1, 5, 3)])
        projected = table.project(["key", "damage"])
        assert projected.schema.names == ("key", "damage")
        assert projected.rows == [{"key": 1, "damage": 3}]

    def test_union_is_multiset(self, schema):
        a = EnvironmentTable(schema, [row(1)])
        b = EnvironmentTable(schema, [row(1)])
        assert len(a.union(b)) == 2

    def test_union_requires_same_schema(self, schema):
        other = Schema([Attribute("key", AttributeType.CONST)])
        with pytest.raises(SchemaError):
            EnvironmentTable(schema).union(EnvironmentTable(other))

    def test_union_does_not_alias_source_rows(self, schema):
        # regression: mutating a union result row used to corrupt the
        # source tables, because union shared the row dicts
        a = EnvironmentTable(schema, [row(1)])
        b = EnvironmentTable(schema, [row(2)])
        merged = a.union(b)
        merged.rows[0]["damage"] = 99
        merged.rows[1]["damage"] = 99
        assert a.rows[0]["damage"] == 0
        assert b.rows[0]["damage"] == 0


class TestDiffByKey:
    def test_empty_diff(self, schema):
        a = EnvironmentTable(schema, [row(1), row(2)])
        b = EnvironmentTable(schema, [row(2), row(1)])
        delta = diff_by_key(a, b)
        assert isinstance(delta, TableDelta)
        assert delta.changed == 0
        assert delta.fraction == 0.0

    def test_insert_delete_update(self, schema):
        a = EnvironmentTable(schema, [row(1), row(2), row(3)])
        b = EnvironmentTable(schema, [row(2, damage=5), row(3), row(4)])
        delta = diff_by_key(a, b)
        assert [r["key"] for r in delta.inserted] == [4]
        assert [r["key"] for r in delta.deleted] == [1]
        assert [(o["key"], n["damage"]) for o, n in delta.updated] == [(2, 5)]
        assert delta.changed == 3
        assert delta.fraction == 3 / 3

    def test_updated_pairs_reference_source_objects(self, schema):
        a = EnvironmentTable(schema, [row(1)])
        b = EnvironmentTable(schema, [row(1, pos=9)])
        delta = diff_by_key(a, b)
        old, new = delta.updated[0]
        assert old is a.rows[0]
        assert new is b.rows[0]

    def test_duplicate_keys_return_none(self, schema):
        dup = EnvironmentTable(schema, [row(1), row(1)])
        keyed = EnvironmentTable(schema, [row(1)])
        assert diff_by_key(dup, keyed) is None
        assert diff_by_key(keyed, dup) is None

    def test_same_object_duplicate_returns_none(self, schema):
        # the duplicate may literally be the same dict appended twice
        shared = row(1)
        dup = EnvironmentTable(schema)
        dup.rows.extend([shared, shared])
        keyed = EnvironmentTable(schema, [row(1)])
        assert diff_by_key(dup, keyed) is None

    def test_schema_mismatch_returns_none(self, schema):
        other = Schema([Attribute("key", AttributeType.CONST)])
        assert (
            diff_by_key(EnvironmentTable(schema), EnvironmentTable(other))
            is None
        )

    def test_empty_table_fraction(self, schema):
        delta = diff_by_key(
            EnvironmentTable(schema, [row(1)]), EnvironmentTable(schema)
        )
        assert delta.changed == 1
        assert delta.fraction == 1.0


class TestMultisetEquality:
    def test_order_independent(self, schema):
        a = EnvironmentTable(schema, [row(1), row(2)])
        b = EnvironmentTable(schema, [row(2), row(1)])
        assert a == b

    def test_multiplicity_matters(self, schema):
        a = EnvironmentTable(schema, [row(1), row(1)])
        b = EnvironmentTable(schema, [row(1)])
        assert a != b

    def test_unhashable(self, schema):
        with pytest.raises(TypeError):
            hash(EnvironmentTable(schema))

    def test_copy_deep(self, schema):
        a = EnvironmentTable(schema, [row(1)])
        b = a.copy()
        b.rows[0]["damage"] = 7
        assert a.rows[0]["damage"] == 0
