"""EnvironmentTable multiset semantics and algebra primitives."""

import pytest

from repro.env.schema import Attribute, AttributeType, Schema, SchemaError
from repro.env.table import EnvironmentTable


@pytest.fixture()
def schema():
    c, s = AttributeType.CONST, AttributeType.SUM
    return Schema(
        [Attribute("key", c), Attribute("pos", c), Attribute("damage", s)]
    )


def row(key, pos=0, damage=0):
    return {"key": key, "pos": pos, "damage": damage}


class TestBasics:
    def test_empty(self, schema):
        table = EnvironmentTable(schema)
        assert len(table) == 0
        assert not table

    def test_insert_and_iterate(self, schema):
        table = EnvironmentTable(schema, [row(1), row(2)])
        assert len(table) == 2
        assert [r["key"] for r in table] == [1, 2]

    def test_insert_validates(self, schema):
        table = EnvironmentTable(schema)
        with pytest.raises(SchemaError):
            table.insert({"key": 1})

    def test_insert_copies_rows(self, schema):
        source = row(1)
        table = EnvironmentTable(schema, [source])
        source["damage"] = 99
        assert table.rows[0]["damage"] == 0

    def test_insert_unit_uses_defaults(self, schema):
        table = EnvironmentTable(schema)
        stored = table.insert_unit(key=1, pos=5)
        assert stored["damage"] == 0

    def test_insert_unit_rejects_unknown(self, schema):
        with pytest.raises(SchemaError):
            EnvironmentTable(schema).insert_unit(key=1, pos=0, bogus=2)

    def test_insert_unit_requires_const_values(self, schema):
        # key/pos have no defaults; omitting them must fail
        with pytest.raises(SchemaError):
            EnvironmentTable(schema).insert_unit(key=1)

    def test_column(self, schema):
        table = EnvironmentTable(schema, [row(1, 5), row(2, 7)])
        assert table.column("pos") == [5, 7]

    def test_by_key(self, schema):
        table = EnvironmentTable(schema, [row(1), row(2)])
        assert set(table.by_key()) == {1, 2}

    def test_by_key_rejects_duplicates(self, schema):
        table = EnvironmentTable(schema, [row(1), row(1)])
        with pytest.raises(ValueError):
            table.by_key()


class TestAlgebraPrimitives:
    def test_select(self, schema):
        table = EnvironmentTable(schema, [row(1, 1), row(2, 2), row(3, 3)])
        picked = table.select(lambda r: r["pos"] >= 2)
        assert [r["key"] for r in picked] == [2, 3]

    def test_project(self, schema):
        table = EnvironmentTable(schema, [row(1, 5, 3)])
        projected = table.project(["key", "damage"])
        assert projected.schema.names == ("key", "damage")
        assert projected.rows == [{"key": 1, "damage": 3}]

    def test_union_is_multiset(self, schema):
        a = EnvironmentTable(schema, [row(1)])
        b = EnvironmentTable(schema, [row(1)])
        assert len(a.union(b)) == 2

    def test_union_requires_same_schema(self, schema):
        other = Schema([Attribute("key", AttributeType.CONST)])
        with pytest.raises(SchemaError):
            EnvironmentTable(schema).union(EnvironmentTable(other))


class TestMultisetEquality:
    def test_order_independent(self, schema):
        a = EnvironmentTable(schema, [row(1), row(2)])
        b = EnvironmentTable(schema, [row(2), row(1)])
        assert a == b

    def test_multiplicity_matters(self, schema):
        a = EnvironmentTable(schema, [row(1), row(1)])
        b = EnvironmentTable(schema, [row(1)])
        assert a != b

    def test_unhashable(self, schema):
        with pytest.raises(TypeError):
            hash(EnvironmentTable(schema))

    def test_copy_deep(self, schema):
        a = EnvironmentTable(schema, [row(1)])
        b = a.copy()
        b.rows[0]["damage"] = 7
        assert a.rows[0]["damage"] == 0
