"""Schema definition and tagging (Section 4.2)."""

import pytest

from repro.env.schema import (
    Attribute,
    AttributeType,
    Schema,
    SchemaError,
    battle_schema,
)


def make_schema():
    c, s, m = AttributeType.CONST, AttributeType.SUM, AttributeType.MAX
    return Schema(
        [
            Attribute("key", c),
            Attribute("player", c),
            Attribute("damage", s),
            Attribute("inaura", m, default=0),
        ]
    )


class TestAttribute:
    def test_effect_flag(self):
        assert not Attribute("key", AttributeType.CONST).is_effect
        assert Attribute("d", AttributeType.SUM).is_effect

    def test_sum_default_is_zero(self):
        assert Attribute("d", AttributeType.SUM).default == 0

    def test_max_default_is_neg_inf(self):
        assert Attribute("m", AttributeType.MAX).default == float("-inf")

    def test_min_default_is_pos_inf(self):
        assert Attribute("m", AttributeType.MIN).default == float("inf")

    def test_explicit_default_wins(self):
        assert Attribute("m", AttributeType.MAX, default=0).default == 0


class TestSchema:
    def test_key_must_exist(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("a", AttributeType.CONST)])

    def test_key_must_be_const(self):
        with pytest.raises(SchemaError):
            Schema([Attribute("key", AttributeType.SUM)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema(
                [
                    Attribute("key", AttributeType.CONST),
                    Attribute("key", AttributeType.SUM),
                ]
            )

    def test_const_and_effect_partition(self):
        schema = make_schema()
        assert schema.const_names == ("key", "player")
        assert schema.effect_names == ("damage", "inaura")

    def test_tag_lookup(self):
        schema = make_schema()
        assert schema.tag_of("damage") is AttributeType.SUM
        assert schema.tag_of("inaura") is AttributeType.MAX

    def test_unknown_attribute_raises(self):
        with pytest.raises(SchemaError):
            make_schema()["nope"]

    def test_contains(self):
        schema = make_schema()
        assert "damage" in schema
        assert "nope" not in schema

    def test_default_row_covers_all_columns(self):
        row = make_schema().default_row()
        assert set(row) == {"key", "player", "damage", "inaura"}
        assert row["damage"] == 0

    def test_effect_defaults(self):
        assert make_schema().effect_defaults() == {"damage": 0, "inaura": 0}

    def test_validate_row_missing(self):
        schema = make_schema()
        with pytest.raises(SchemaError):
            schema.validate_row({"key": 1})

    def test_validate_row_extra(self):
        schema = make_schema()
        row = schema.default_row()
        row["bogus"] = 1
        with pytest.raises(SchemaError):
            schema.validate_row(row)

    def test_subschema_keeps_key(self):
        sub = make_schema().subschema(["key", "damage"])
        assert sub.names == ("key", "damage")

    def test_subschema_requires_key(self):
        with pytest.raises(SchemaError):
            make_schema().subschema(["damage"])

    def test_equality_and_hash(self):
        assert make_schema() == make_schema()
        assert hash(make_schema()) == hash(make_schema())


class TestBattleSchema:
    def test_matches_paper_eq1_attributes(self):
        schema = battle_schema()
        for name in (
            "key", "player", "posx", "posy", "health", "cooldown",
            "weaponused", "movevect_x", "movevect_y", "damage", "inaura",
        ):
            assert name in schema

    def test_weaponused_is_max_tagged(self):
        # Example 4.3 combines weaponused with max(...)
        assert battle_schema().tag_of("weaponused") is AttributeType.MAX

    def test_inaura_is_max_tagged_with_zero_default(self):
        schema = battle_schema()
        assert schema.tag_of("inaura") is AttributeType.MAX
        assert schema["inaura"].default == 0

    def test_movement_and_damage_are_sum_tagged(self):
        schema = battle_schema()
        for name in ("movevect_x", "movevect_y", "damage"):
            assert schema.tag_of(name) is AttributeType.SUM

    def test_state_attributes_are_const(self):
        schema = battle_schema()
        for name in ("key", "player", "posx", "posy", "health", "cooldown"):
            assert schema.tag_of(name) is AttributeType.CONST
