"""Sharded environments: partitioning, shard functions, delta routing."""

import pytest

from repro.env.sharding import (
    ShardedEnvironment,
    ShardingError,
    make_sharder,
    partition_rows,
)
from repro.env.table import diff_by_key
from tests.conftest import make_env


class TestMakeSharder:
    def test_single_shard_is_constant(self, schema):
        shard_of = make_sharder("key", 1)
        env = make_env(schema, n=8)
        assert {shard_of(r) for r in env.rows} == {0}

    def test_hashed_attribute_covers_range_and_is_stable(self, schema):
        env = make_env(schema, n=64, grid=40, seed=2)
        shard_of = make_sharder("key", 4)
        ids = [shard_of(r) for r in env.rows]
        assert set(ids) <= {0, 1, 2, 3}
        assert len(set(ids)) > 1  # hashing actually spreads
        # pure function of the value: a second sharder agrees
        again = make_sharder("key", 4)
        assert ids == [again(r) for r in env.rows]

    def test_player_sharding_groups_by_player(self, schema):
        env = make_env(schema, n=16)
        shard_of = make_sharder("player", 8)
        by_player = {}
        for row in env.rows:
            by_player.setdefault(row["player"], set()).add(shard_of(row))
        for shards in by_player.values():
            assert len(shards) == 1

    def test_spatial_strips_are_ordered(self, schema):
        env = make_env(schema, n=40, grid=40, seed=3)
        shard_of = make_sharder("spatial", 4, extent=40)
        for row in env.rows:
            assert shard_of(row) == min(3, int(row["posx"] / 10))
        # out-of-range coordinates clamp instead of overflowing
        low = dict(env.rows[0], posx=-2)
        high = dict(env.rows[0], posx=41)
        assert shard_of(low) == 0
        assert shard_of(high) == 3

    def test_spatial_requires_extent(self):
        with pytest.raises(ShardingError):
            make_sharder("spatial", 4)

    def test_invalid_shard_count(self):
        with pytest.raises(ShardingError):
            make_sharder("key", 0)


class TestShardedEnvironment:
    def test_partition_shares_rows_and_preserves_order(self, schema):
        env = make_env(schema, n=30, grid=40, seed=1)
        shard_of = make_sharder("key", 3)
        sharded = ShardedEnvironment(env, 3, shard_of)
        assert sharded.num_shards == 3
        assert sum(sharded.sizes()) == len(env)
        seen = []
        for shard_id, shard in enumerate(sharded):
            previous_index = -1
            for row in shard.rows:
                assert shard_of(row) == shard_id
                # identity, not copies: shards are views of E
                index = next(
                    i for i, r in enumerate(env.rows) if r is row
                )
                assert index > previous_index  # flat order preserved
                previous_index = index
                seen.append(row)
        assert len(seen) == len(env)
        assert sharded.merged().multiset_equal(env)

    def test_single_shard_is_the_flat_table(self, schema):
        env = make_env(schema, n=10)
        sharded = ShardedEnvironment(env, 1, make_sharder("key", 1))
        assert sharded.shards[0].rows == env.rows

    def test_bad_shard_function_rejected(self, schema):
        env = make_env(schema, n=4)
        with pytest.raises(ShardingError):
            ShardedEnvironment(env, 2, lambda row: 7)


class TestRouteDelta:
    def test_routes_changes_to_their_shards(self, schema):
        env = make_env(schema, n=24, grid=40, seed=4)
        shard_of = make_sharder("spatial", 3, extent=40)
        sharded = ShardedEnvironment(env, 3, shard_of)

        new = env.copy()
        # in-shard update: move within the strip
        moved = new.rows[0]
        moved["health"] -= 1
        # cross-shard update: teleport to the far strip
        crosser = next(r for r in new.rows[1:] if shard_of(r) == 0)
        crosser_old_key = crosser["key"]
        crosser["posx"] = 39
        # delete one, insert one
        dead = new.rows.pop(5)
        spawn = dict(env.rows[6], key=999, posx=2)
        new.rows.append(spawn)

        delta = diff_by_key(env, new)
        routed = sharded.route_delta(delta)
        assert len(routed) == 3
        assert sum(d.changed for d in routed) >= delta.changed

        # the cross-shard move became delete(old strip) + insert(new strip)
        assert any(
            r["key"] == crosser_old_key for r in routed[0].deleted
        )
        assert any(r["key"] == crosser_old_key for r in routed[2].inserted)
        # the in-shard update stayed an update
        home = shard_of(moved)
        assert any(
            old["key"] == moved["key"] for old, _ in routed[home].updated
        )
        # spawn and death routed to their shards
        assert any(r["key"] == 999 for r in routed[0].inserted)
        assert any(
            r["key"] == dead["key"] for r in routed[shard_of(dead)].deleted
        )
        # base sizes reflect shard populations
        assert [d.base_size for d in routed] == sharded.sizes()


def test_partition_rows_helper(schema):
    env = make_env(schema, n=12)
    shard_of = make_sharder("key", 4)
    parts = partition_rows(env.rows, 4, shard_of)
    assert sum(len(p) for p in parts) == 12
    for shard_id, part in enumerate(parts):
        assert all(shard_of(r) == shard_id for r in part)
    assert partition_rows(env.rows, 1, shard_of) == [env.rows]
