"""Incremental insert/delete/update paths of the Section 5.3 indexes.

Every mutated structure must answer queries exactly like a structure
freshly built from the post-mutation row set -- the invariant the
delta-driven maintenance subsystem in the indexed evaluator relies on.
"""

import random

import pytest

from repro.indexes.agg_range_tree import AggRangeTree2D, PrefixAggregate1D
from repro.indexes.composite import GroupAggIndex
from repro.indexes.hash_layer import PartitionedIndex
from repro.indexes.kdtree import KDTree


def rect_queries(rng, n=20, span=30):
    for _ in range(n):
        xlo = rng.randrange(span)
        ylo = rng.randrange(span)
        yield xlo, xlo + rng.randrange(span), ylo, ylo + rng.randrange(span)


class TestAggRangeTree2DDelta:
    def test_insert_delete_matches_rebuild(self):
        rng = random.Random(5)
        points = [(rng.randrange(30), rng.randrange(30)) for _ in range(60)]
        values = [(float(rng.randrange(10)),) for _ in points]
        tree = AggRangeTree2D(points, values)

        for _ in range(15):  # delete a built-in element
            i = rng.randrange(len(points))
            tree.delete(points.pop(i), values.pop(i))
        for _ in range(10):  # insert fresh elements
            p, v = (rng.randrange(30), rng.randrange(30)), (float(rng.randrange(10)),)
            points.append(p)
            values.append(v)
            tree.insert(p, v)

        rebuilt = AggRangeTree2D(points, values)
        assert len(tree) == len(rebuilt) == len(points)
        assert tree.overlay_size > 0
        for box in rect_queries(random.Random(6)):
            assert tree.query(*box) == rebuilt.query(*box)

    def test_delete_of_inserted_element_cancels(self):
        tree = AggRangeTree2D([(0, 0)], [(1.0,)])
        tree.insert((5, 5), (2.0,))
        tree.delete((5, 5), (2.0,))
        assert tree.overlay_size == 0
        assert len(tree) == 1
        assert tree.query(0, 10, 0, 10)[0].count == 1

    def test_empty_build_then_insert(self):
        tree = AggRangeTree2D([], [], width=1)
        tree.insert((3, 4), (7.0,))
        moments = tree.query(0, 10, 0, 10)[0]
        assert (moments.count, moments.total) == (1, 7.0)

    def test_measure_width_enforced(self):
        tree = AggRangeTree2D([(0, 0)], [(1.0,)])
        with pytest.raises(ValueError):
            tree.insert((1, 1), (1.0, 2.0))


class TestPrefixAggregate1DDelta:
    def test_insert_delete_matches_rebuild(self):
        rng = random.Random(7)
        keys = [float(rng.randrange(50)) for _ in range(40)]
        values = [(float(rng.randrange(9)),) for _ in keys]
        agg = PrefixAggregate1D(keys, values)

        for _ in range(10):
            i = rng.randrange(len(keys))
            agg.delete(keys.pop(i), values.pop(i))
        for _ in range(8):
            k, v = float(rng.randrange(50)), (float(rng.randrange(9)),)
            keys.append(k)
            values.append(v)
            agg.insert(k, v)

        rebuilt = PrefixAggregate1D(keys, values)
        assert len(agg) == len(rebuilt)
        for _ in range(20):
            lo = rng.randrange(50)
            hi = lo + rng.randrange(20)
            assert agg.query(lo, hi) == rebuilt.query(lo, hi)

    def test_count_only_overlay(self):
        agg = PrefixAggregate1D([1.0, 2.0, 3.0])
        agg.delete(2.0)
        agg.insert(5.0)
        assert agg.count(0, 10) == 3
        assert agg.count(0, 4) == 2


class TestKDTreeDelta:
    def positions(self, rng, n):
        return [(rng.randrange(40), rng.randrange(40)) for _ in range(n)]

    def test_insert_delete_matches_rebuild(self):
        rng = random.Random(11)
        points = self.positions(rng, 50)
        items = list(range(50))
        tree = KDTree(points, items)

        for _ in range(12):
            i = rng.randrange(len(points))
            point, item = points.pop(i), items.pop(i)
            assert tree.delete(point, lambda it, item=item: it == item)
        for j in range(12, 24):
            p = (rng.randrange(40), rng.randrange(40))
            points.append(p)
            items.append(100 + j)
            tree.insert(p, 100 + j)

        rebuilt = KDTree(points, items)
        assert len(tree) == len(rebuilt)
        tie = lambda it: it  # noqa: E731
        for _ in range(25):
            probe = (rng.randrange(40), rng.randrange(40))
            assert (
                tree.nearest(probe, tie_key=tie)
                == rebuilt.nearest(probe, tie_key=tie)
            )
            assert sorted(tree.within_radius(probe, 6)) == sorted(
                rebuilt.within_radius(probe, 6)
            )

    def test_delete_missing_returns_false(self):
        tree = KDTree([(1, 1)], ["a"])
        assert not tree.delete((2, 2), lambda it: True)
        assert not tree.delete((1, 1), lambda it: it == "b")

    def test_delete_with_duplicate_coordinates(self):
        # equal sort-coordinates land on both sides of the median split;
        # deletion must find them regardless
        points = [(5, i % 3) for i in range(9)]
        items = list(range(9))
        tree = KDTree(points, items)
        for item in range(9):
            assert tree.delete(points[item], lambda it, i=item: it == i)
        assert len(tree) == 0
        assert tree.nearest((5, 1)) is None

    def test_replace_item_in_place(self):
        tree = KDTree([(1, 1), (4, 4)], ["old", "other"])
        assert tree.replace_item((1, 1), lambda it: it == "old", "new")
        item, _ = tree.nearest((0, 0))
        assert item == "new"
        assert not tree.replace_item((9, 9), lambda it: True, "x")

    def test_insert_into_empty(self):
        tree = KDTree([], [])
        tree.insert((2, 3), "only")
        assert tree.nearest((0, 0)) == ("only", 13.0)

    def test_deep_insert_chain_does_not_recurse_out(self):
        # regression: monotone dynamic inserts form a linear chain far
        # deeper than the interpreter's recursion limit; searches must
        # degrade in time only, never raise RecursionError
        import sys

        depth = sys.getrecursionlimit() + 500
        tree = KDTree([(0, 0)], [0])
        for i in range(1, depth):
            tree.insert((i, i), i)
        item, dist_sq = tree.nearest((depth, depth), tie_key=lambda it: it)
        assert item == depth - 1 and dist_sq == 2.0
        assert len(tree.within_radius((depth - 1, depth - 1), 1.5)) == 2
        assert tree.delete((depth - 1, depth - 1), lambda it: it == depth - 1)
        assert tree.nearest((depth, depth))[0] == depth - 2


def make_rows(rng, n, players=2):
    return [
        {
            "key": k,
            "player": rng.randrange(players),
            "posx": rng.randrange(30),
            "posy": rng.randrange(30),
            "health": float(rng.randrange(1, 20)),
        }
        for k in range(n)
    ]


class TestPartitionedIncremental:
    def test_list_groups_track_rebuild(self):
        rng = random.Random(3)
        rows = make_rows(rng, 30)
        index = PartitionedIndex(rows, ("player",), factory=list)

        removed = [rows.pop(rng.randrange(len(rows))) for _ in range(8)]
        for row in removed:
            index.delete(dict(row))  # delete via a value-equal snapshot
        added = make_rows(random.Random(4), 5)
        for i, row in enumerate(added):
            row["key"] = 100 + i
            rows.append(row)
            index.insert(row)

        rebuilt = PartitionedIndex(rows, ("player",), factory=list)
        assert len(index) == len(rebuilt)
        assert set(index.groups) == set(rebuilt.groups)
        for key in index.groups:
            assert sorted(r["key"] for r in index.groups[key]) == sorted(
                r["key"] for r in rebuilt.groups[key]
            )
        assert index.mutations == 13

    def test_group_created_and_dropped(self):
        rows = [{"key": 0, "player": 0}]
        index = PartitionedIndex(rows, ("player",), factory=list)
        index.insert({"key": 1, "player": 7})
        assert index.probe((7,)) is not None
        index.delete({"key": 1, "player": 7})
        assert index.probe((7,)) is None
        assert index.group_size((7,)) == 0

    def test_update_reroutes_category_change(self):
        rows = [{"key": 0, "player": 0}, {"key": 1, "player": 0}]
        index = PartitionedIndex(rows, ("player",), factory=list)
        index.update({"key": 1, "player": 0}, {"key": 1, "player": 1})
        assert [r["key"] for r in index.probe((1,))] == [1]
        assert [r["key"] for r in index.probe((0,))] == [0]

    def test_delete_from_missing_group_raises(self):
        index = PartitionedIndex([], ("player",), factory=list)
        with pytest.raises(KeyError):
            index.delete({"key": 0, "player": 3})

    def test_non_list_requires_adapters(self):
        index = PartitionedIndex(
            [{"key": 0, "player": 0, "posx": 1, "posy": 2}],
            ("player",),
            factory=lambda group: KDTree(
                [(r["posx"], r["posy"]) for r in group], group
            ),
        )
        with pytest.raises(TypeError):
            index.insert({"key": 1, "player": 0, "posx": 3, "posy": 4})

    def test_agg_group_adapters_match_rebuild(self):
        rng = random.Random(9)
        rows = make_rows(rng, 40)
        measures = [lambda r: r["health"]]

        def factory(group):
            return GroupAggIndex(group, ("posx", "posy"), measures)

        def build(source):
            return PartitionedIndex(
                source,
                ("player",),
                factory=factory,
                row_insert=lambda g, r: g.insert(r),
                row_delete=lambda g, r: g.delete(r),
            )

        index = build(rows)
        for _ in range(10):
            row = rows.pop(rng.randrange(len(rows)))
            index.delete(row)
        fresh = make_rows(random.Random(10), 6)
        for i, row in enumerate(fresh):
            row["key"] = 200 + i
            rows.append(row)
            index.insert(row)

        rebuilt = build(rows)
        for key in set(index.groups) | set(rebuilt.groups):
            for box in rect_queries(random.Random(12), n=10):
                bounds = [(box[0], box[1]), (box[2], box[3])]
                assert index.probe(key).query(bounds) == rebuilt.probe(
                    key
                ).query(bounds)


class TestGroupAggIndexDelta:
    def test_zero_dim_totals(self):
        rows = [{"health": 3.0}, {"health": 5.0}]
        group = GroupAggIndex(rows, (), [lambda r: r["health"]])
        group.insert({"health": 7.0})
        group.delete({"health": 3.0})
        moments = group.query([])[0]
        assert (moments.count, moments.total) == (2, 12.0)

    def test_zero_dim_count_only(self):
        group = GroupAggIndex([{"x": 1}], (), [])
        group.insert({"x": 2})
        assert group.query([])[0].count == 2

    def test_values_of(self):
        group = GroupAggIndex(
            [{"posx": 1, "posy": 2, "health": 3.0}],
            ("posx", "posy"),
            [lambda r: r["health"], lambda r: r["posx"] * 2],
        )
        assert group.values_of({"posx": 4, "posy": 0, "health": 1.5}) == (1.5, 8)
