"""Segment-tree interval index + divisible aggregate accumulators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.divisible import Moments, MomentVector, is_divisible
from repro.indexes.interval_agg import IntervalAggregateIndex


class TestIntervalAggregateIndex:
    def test_min_updates_percolate(self):
        tree = IntervalAggregateIndex(8, "min")
        tree.set(3, 5.0)
        tree.set(6, 2.0)
        assert tree.query(0, 7) == 2.0
        assert tree.query(0, 4) == 5.0

    def test_clear_restores_neutral(self):
        tree = IntervalAggregateIndex(4, "min")
        tree.set(1, 3.0)
        tree.clear(1)
        assert tree.query(0, 3) == float("inf")

    def test_sum_kind(self):
        tree = IntervalAggregateIndex(5, "sum")
        for i in range(5):
            tree.set(i, float(i))
        assert tree.query(1, 3) == 6.0
        assert tree.total() == 10.0

    def test_max_kind(self):
        tree = IntervalAggregateIndex(4, "max")
        tree.set(0, -5.0)
        assert tree.query(0, 3) == -5.0
        assert tree.query(1, 3) == float("-inf")

    def test_empty_range(self):
        tree = IntervalAggregateIndex(4, "min")
        assert tree.query(3, 1) == float("inf")

    def test_out_of_bounds_clamped(self):
        tree = IntervalAggregateIndex(4, "sum")
        tree.set(0, 1.0)
        assert tree.query(-10, 10) == 1.0

    def test_set_out_of_range_raises(self):
        tree = IntervalAggregateIndex(4, "sum")
        with pytest.raises(IndexError):
            tree.set(4, 1.0)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            IntervalAggregateIndex(4, "avg")

    def test_custom_neutral_tuples(self):
        neutral = (float("inf"), None)
        tree = IntervalAggregateIndex(4, "min", neutral=neutral)
        assert tree.query(0, 3) == neutral
        tree.set(2, (3.0, "unit"))
        assert tree.query(0, 3) == (3.0, "unit")

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.tuples(st.integers(0, 15), st.floats(-100, 100)),
                 max_size=40),
        st.integers(0, 15), st.integers(0, 15),
    )
    def test_matches_bruteforce(self, updates, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = IntervalAggregateIndex(16, "min")
        slots = [float("inf")] * 16
        for slot, value in updates:
            tree.set(slot, value)
            slots[slot] = value
        assert tree.query(lo, hi) == min(slots[lo : hi + 1])


class TestMoments:
    def test_add_and_finalize(self):
        m = Moments()
        for v in (1, 2, 3):
            m.add(v)
        assert m.finalize("count") == 3
        assert m.finalize("sum") == 6
        assert m.finalize("avg") == 2
        assert m.finalize("var") == pytest.approx(2 / 3)
        assert m.finalize("stddev") == pytest.approx(math.sqrt(2 / 3))

    def test_empty_finalizers(self):
        m = Moments()
        assert m.finalize("count") == 0
        assert m.finalize("sum") == 0
        assert m.finalize("avg") is None
        assert m.finalize("stddev") is None

    def test_unknown_aggregate(self):
        with pytest.raises(ValueError):
            Moments().finalize("median")

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-50, 50)), st.lists(st.integers(-50, 50)))
    def test_merge_subtract_group_laws(self, xs, ys):
        # Definition 5.1: agg(A \ B) = f(agg(A), agg(B)) for B ⊆ A
        a, b = Moments(), Moments()
        for v in xs:
            a.add(v)
        for v in ys:
            b.add(v)
        merged = a.merge(b)
        recovered = merged.subtract(b)
        assert recovered.count == a.count
        assert recovered.total == pytest.approx(a.total)
        assert recovered.total_sq == pytest.approx(a.total_sq)

    def test_divisibility_predicate(self):
        for agg in ("count", "sum", "avg", "var", "stddev"):
            assert is_divisible(agg)
        for agg in ("min", "max", "argmin", "argmax"):
            assert not is_divisible(agg)  # the paper's counterexamples


class TestMomentVector:
    def test_lockstep_measures(self):
        mv = MomentVector(2)
        mv.add((1, 10))
        mv.add((3, 30))
        assert mv.moments[0].avg() == 2
        assert mv.moments[1].avg() == 20

    def test_merge_and_subtract(self):
        a, b = MomentVector(1), MomentVector(1)
        a.add((5,))
        b.add((7,))
        merged = a.merge(b)
        assert merged.moments[0].count == 2
        back = merged.subtract(b)
        assert back.moments[0].total == 5.0

    def test_copy_is_independent(self):
        a = MomentVector(1)
        a.add((1,))
        b = a.copy()
        b.add((9,))
        assert a.moments[0].count == 1
