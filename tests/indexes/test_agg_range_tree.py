"""Figure-8 divisible-aggregate trees vs brute-force moments."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.agg_range_tree import AggRangeTree2D, PrefixAggregate1D

coord = st.integers(-30, 30)
value = st.integers(-20, 20)
entries = st.lists(st.tuples(coord, coord, value), max_size=50)
interval = st.tuples(coord, coord).map(lambda ab: (min(ab), max(ab)))


def brute_moments(rows, xlo, xhi, ylo, yhi):
    picked = [v for x, y, v in rows if xlo <= x <= xhi and ylo <= y <= yhi]
    return (
        len(picked),
        float(sum(picked)),
        float(sum(v * v for v in picked)),
    )


class TestAggRangeTree2D:
    @pytest.mark.parametrize("cascade", [True, False])
    def test_simple_rectangle(self, cascade):
        rows = [(0, 0, 1), (1, 1, 2), (2, 2, 3), (10, 10, 4)]
        tree = AggRangeTree2D(
            [(x, y) for x, y, _ in rows], [(v,) for _, _, v in rows],
            cascade=cascade,
        )
        moments, = tree.query(0, 2, 0, 2)
        assert moments.count == 3
        assert moments.total == 6.0
        assert moments.total_sq == 14.0

    @settings(max_examples=150, deadline=None)
    @given(entries, interval, interval, st.booleans())
    def test_matches_bruteforce(self, rows, bx, by, cascade):
        tree = AggRangeTree2D(
            [(x, y) for x, y, _ in rows], [(v,) for _, _, v in rows],
            cascade=cascade,
        )
        moments, = tree.query(bx[0], bx[1], by[0], by[1])
        count, total, total_sq = brute_moments(rows, bx[0], bx[1], by[0], by[1])
        assert moments.count == count
        assert moments.total == pytest.approx(total)
        assert moments.total_sq == pytest.approx(total_sq)

    @settings(max_examples=80, deadline=None)
    @given(entries, interval, interval)
    def test_cascade_equals_no_cascade(self, rows, bx, by):
        points = [(x, y) for x, y, _ in rows]
        values = [(v,) for _, _, v in rows]
        a, = AggRangeTree2D(points, values, cascade=True).query(
            bx[0], bx[1], by[0], by[1]
        )
        b, = AggRangeTree2D(points, values, cascade=False).query(
            bx[0], bx[1], by[0], by[1]
        )
        assert (a.count, a.total, a.total_sq) == (b.count, b.total, b.total_sq)

    def test_count_only_tree(self):
        tree = AggRangeTree2D([(0, 0), (1, 1), (5, 5)])
        assert tree.count(0, 1, 0, 1) == 2

    def test_multiple_measures_share_tree(self):
        # a centroid: avg x and avg y from one structure
        points = [(0, 0), (2, 4), (4, 8)]
        tree = AggRangeTree2D(points, [(x, y) for x, y in points])
        mx, my = tree.query(0, 4, 0, 8)
        assert mx.avg() == pytest.approx(2.0)
        assert my.avg() == pytest.approx(4.0)

    def test_stddev_finalizer(self):
        tree = AggRangeTree2D([(0, 0), (1, 0)], [(0,), (2,)])
        m, = tree.query(-1, 2, -1, 1)
        assert m.stddev() == pytest.approx(1.0)

    def test_empty_query(self):
        tree = AggRangeTree2D([(0, 0)], [(5,)])
        m, = tree.query(10, 20, 10, 20)
        assert m.count == 0 and m.avg() is None

    def test_empty_tree(self):
        tree = AggRangeTree2D([], [])
        m, = tree.query(-1, 1, -1, 1)
        assert m.count == 0


class TestPrefixAggregate1D:
    @settings(max_examples=120, deadline=None)
    @given(st.lists(st.tuples(coord, value), max_size=50), interval)
    def test_matches_bruteforce(self, rows, bounds):
        index = PrefixAggregate1D(
            [k for k, _ in rows], [(v,) for _, v in rows]
        )
        m, = index.query(bounds[0], bounds[1])
        picked = [v for k, v in rows if bounds[0] <= k <= bounds[1]]
        assert m.count == len(picked)
        assert m.total == pytest.approx(sum(picked))

    def test_unsorted_input(self):
        index = PrefixAggregate1D([5, 1, 3], [(50,), (10,), (30,)])
        m, = index.query(1, 3)
        assert m.count == 2 and m.total == 40.0

    def test_variance_numerical_floor(self):
        # identical values: variance must be exactly >= 0 despite
        # floating cancellation
        index = PrefixAggregate1D([0, 1, 2], [(0.1,), (0.1,), (0.1,)])
        m, = index.query(0, 2)
        assert m.var() >= 0.0
        assert math.isclose(m.stddev(), 0.0, abs_tol=1e-9)
