"""Categorical hash layers and layered compositions (Sections 5.3.1/5.3.2)."""

import pytest

from repro.indexes.composite import (
    GroupAggIndex,
    partitioned_agg_tree,
    partitioned_kdtree,
    partitioned_rows,
)
from repro.indexes.hash_layer import PartitionedIndex


def rows():
    out = []
    key = 0
    for player in (0, 1):
        for unittype in ("knight", "archer"):
            for i in range(3):
                out.append(
                    {
                        "key": key,
                        "player": player,
                        "unittype": unittype,
                        "posx": key * 2,
                        "posy": key * 3 % 7,
                        "health": 10 + key,
                    }
                )
                key += 1
    return out


class TestPartitionedIndex:
    def test_partitions_by_attrs(self):
        index = PartitionedIndex(rows(), ("player", "unittype"), factory=len)
        assert index.probe((0, "knight")) == 3
        assert index.probe((1, "archer")) == 3

    def test_missing_group_is_none(self):
        index = PartitionedIndex(rows(), ("player",), factory=list)
        assert index.probe((7,)) is None

    def test_no_attrs_single_group(self):
        index = PartitionedIndex(rows(), (), factory=len)
        assert index.probe(()) == 12

    def test_group_size_and_len(self):
        index = PartitionedIndex(rows(), ("player",), factory=list)
        assert index.group_size((0,)) == 6
        assert len(index) == 12

    def test_groups_view(self):
        index = PartitionedIndex(rows(), ("unittype",), factory=len)
        assert set(index.groups) == {("knight",), ("archer",)}


class TestGroupAggIndex:
    def test_zero_dims_totals(self):
        group = GroupAggIndex(rows(), (), [lambda r: r["health"]])
        moments, = group.query([])
        assert moments.count == 12
        assert moments.total == sum(10 + k for k in range(12))

    def test_zero_dims_count_only(self):
        group = GroupAggIndex(rows(), (), [])
        moments, = group.query([])
        assert moments.count == 12

    def test_one_dim(self):
        group = GroupAggIndex(rows(), ("posx",), [lambda r: r["health"]])
        moments, = group.query([(0, 6)])  # posx in {0,2,4,6} -> keys 0..3
        assert moments.count == 4

    def test_two_dims(self):
        group = GroupAggIndex(
            rows(), ("posx", "posy"), [lambda r: r["health"]]
        )
        all_m, = group.query([(-100, 100), (-100, 100)])
        assert all_m.count == 12

    def test_too_many_dims_rejected(self):
        with pytest.raises(ValueError):
            GroupAggIndex(rows(), ("posx", "posy", "health"), [])

    def test_bounds_arity_checked(self):
        group = GroupAggIndex(rows(), ("posx",), [])
        with pytest.raises(ValueError):
            group.query([(0, 1), (0, 1)])


class TestCompositeBuilders:
    def test_partitioned_rows(self):
        index = partitioned_rows(rows(), ("player",))
        assert len(index.probe((0,))) == 6

    def test_partitioned_kdtree_probes_within_group(self):
        index = partitioned_kdtree(rows(), ("player",))
        tree = index.probe((1,))
        found, _ = tree.nearest((100, 0))
        assert found["player"] == 1

    def test_partitioned_agg_tree(self):
        index = partitioned_agg_tree(
            rows(), ("player",), ("posx", "posy"), [lambda r: r["health"]]
        )
        group = index.probe((0,))
        moments, = group.query([(-100, 100), (-100, 100)])
        assert moments.count == 6

    def test_volatility_ordering_documented(self):
        # categorical layers (player/unittype) above continuous ones
        # (posx/posy): probing a category narrows before any tree walk
        index = partitioned_agg_tree(
            rows(), ("player", "unittype"), ("posx",), []
        )
        group = index.probe((0, "knight"))
        moments, = group.query([(-100, 100)])
        assert moments.count == 3
