"""Figure-9 sweep-line min/max vs brute force, incl. argmin tie-breaks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.sweepline import sweep_arg_minmax, sweep_minmax

coord = st.integers(-20, 20)
value = st.integers(-10, 10)
sources = st.lists(st.tuples(coord, coord, value), max_size=40)
probes = st.lists(st.tuples(coord, coord), max_size=25)
extent = st.integers(0, 8)


def brute(sources, px, py, rx, ry, kind):
    hits = [
        v for x, y, v in sources if abs(x - px) <= rx and abs(y - py) <= ry
    ]
    if not hits:
        return None
    return min(hits) if kind == "min" else max(hits)


class TestSweepMinMax:
    @settings(max_examples=150, deadline=None)
    @given(sources, probes, extent, extent, st.sampled_from(["min", "max"]))
    def test_matches_bruteforce(self, src, prb, rx, ry, kind):
        xy = [(x, y) for x, y, _ in src]
        values = [v for _, _, v in src]
        results = sweep_minmax(xy, values, prb, rx, ry, kind)
        for (px, py), got in zip(prb, results):
            assert got == brute(src, px, py, rx, ry, kind)

    def test_empty_sources(self):
        assert sweep_minmax([], [], [(0, 0)], 5, 5, "min") == [None]

    def test_empty_probes(self):
        assert sweep_minmax([(0, 0)], [1], [], 5, 5, "min") == []

    def test_probe_on_boundary_included(self):
        # source exactly rx/ry away is inside the closed box
        result = sweep_minmax([(3, 4)], [7], [(0, 0)], 3, 4, "min")
        assert result == [7]

    def test_probe_just_outside_excluded(self):
        result = sweep_minmax([(3, 4)], [7], [(0, 0)], 2, 4, "min")
        assert result == [None]

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            sweep_minmax([], [], [], 1, 1, "sum")


class TestSweepArgMinMax:
    @settings(max_examples=120, deadline=None)
    @given(sources, probes, extent, extent, st.sampled_from(["min", "max"]))
    def test_value_matches_bruteforce(self, src, prb, rx, ry, kind):
        xy = [(x, y) for x, y, _ in src]
        values = [v for _, _, v in src]
        keys = list(range(len(src)))
        results = sweep_arg_minmax(xy, values, keys, prb, rx, ry, kind)
        for (px, py), got in zip(prb, results):
            expected = brute(src, px, py, rx, ry, kind)
            if expected is None:
                assert got is None
            else:
                assert got[0] == expected

    @settings(max_examples=120, deadline=None)
    @given(sources, probes, extent, extent, st.sampled_from(["min", "max"]))
    def test_tie_breaks_toward_smallest_key(self, src, prb, rx, ry, kind):
        xy = [(x, y) for x, y, _ in src]
        values = [v for _, _, v in src]
        keys = list(range(len(src)))
        results = sweep_arg_minmax(xy, values, keys, prb, rx, ry, kind)
        for (px, py), got in zip(prb, results):
            hits = [
                (v, k)
                for k, (x, y, v) in enumerate(src)
                if abs(x - px) <= rx and abs(y - py) <= ry
            ]
            if not hits:
                assert got is None
                continue
            best_value = (
                min(v for v, _ in hits) if kind == "min"
                else max(v for v, _ in hits)
            )
            best_key = min(k for v, k in hits if v == best_value)
            assert got == (best_value, best_key)

    def test_identity_returned(self):
        result = sweep_arg_minmax(
            [(0, 0), (1, 0)], [9, 3], ["a", "b"], [(0, 0)], 2, 2, "min"
        )
        assert result == [(3, "b")]
