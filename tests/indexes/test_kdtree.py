"""kD-tree nearest-neighbour and radius search vs brute force."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.kdtree import KDTree, build_kdtree_from_rows

coord = st.integers(-30, 30)
points = st.lists(st.tuples(coord, coord), min_size=1, max_size=50)
probe = st.tuples(coord, coord)


def dist_sq(a, b):
    return (a[0] - b[0]) ** 2 + (a[1] - b[1]) ** 2


class TestNearest:
    @settings(max_examples=150, deadline=None)
    @given(points, probe)
    def test_distance_matches_bruteforce(self, pts, p):
        tree = KDTree(pts)
        found = tree.nearest(p)
        best = min(dist_sq(q, p) for q in pts)
        assert found is not None and found[1] == best

    @settings(max_examples=100, deadline=None)
    @given(points, probe)
    def test_tie_break_by_key(self, pts, p):
        tree = KDTree(pts)
        found = tree.nearest(p, tie_key=lambda i: i)
        best = min(dist_sq(q, p) for q in pts)
        best_index = min(i for i, q in enumerate(pts) if dist_sq(q, p) == best)
        assert found == (best_index, best)

    @settings(max_examples=100, deadline=None)
    @given(points, probe)
    def test_exclude_predicate(self, pts, p):
        tree = KDTree(pts)
        found = tree.nearest(p, exclude=lambda i: i % 2 == 0)
        candidates = [
            (dist_sq(q, p), i) for i, q in enumerate(pts) if i % 2 == 1
        ]
        if not candidates:
            assert found is None
        else:
            assert found[1] == min(d for d, _ in candidates)

    def test_max_dist_bound(self):
        tree = KDTree([(10, 10)])
        assert tree.nearest((0, 0), max_dist_sq=4) is None
        assert tree.nearest((9, 10), max_dist_sq=4) is not None

    def test_empty_tree(self):
        assert KDTree([]).nearest((0, 0)) is None

    def test_duplicate_points(self):
        tree = KDTree([(1, 1), (1, 1), (5, 5)])
        found = tree.nearest((0, 0), tie_key=lambda i: i)
        assert found == (0, 2)


class TestWithinRadius:
    @settings(max_examples=120, deadline=None)
    @given(points, probe, st.integers(0, 15))
    def test_matches_bruteforce(self, pts, p, radius):
        tree = KDTree(pts)
        got = sorted(i for i, _ in tree.within_radius(p, radius))
        expected = sorted(
            i for i, q in enumerate(pts) if dist_sq(q, p) <= radius * radius
        )
        assert got == expected

    def test_boundary_inclusive(self):
        tree = KDTree([(3, 4)])
        assert tree.within_radius((0, 0), 5) == [(0, 25.0)]


class TestRowHelper:
    def test_build_from_rows(self):
        rows = [
            {"key": 1, "posx": 0, "posy": 0},
            {"key": 2, "posx": 9, "posy": 9},
        ]
        tree = build_kdtree_from_rows(rows)
        found = tree.nearest((1, 1))
        assert found[0]["key"] == 1

    def test_len(self):
        assert len(KDTree([(0, 0), (1, 1)])) == 2


def tree_depth(tree):
    depth = 0
    stack = [(tree._root, 1)]
    while stack:
        node, d = stack.pop()
        if node is None:
            continue
        depth = max(depth, d)
        stack.append((node.left, d + 1))
        stack.append((node.right, d + 1))
    return depth


class TestDepthBound:
    def test_sequential_inserts_stay_logarithmic(self):
        """Adversarial sorted-coordinate churn: without the attach-depth
        bound, each insert lands below the previous leaf and the tree
        becomes an O(n) chain; with it, depth stays within the budget."""
        import math

        tree = KDTree([(0, 0)])
        n = 512
        for i in range(1, n):
            tree.insert((i, i), i)
        assert tree.depth_rebuilds > 0
        assert tree_depth(tree) <= 4 * math.log2(len(tree)) + 1

    def test_rebuild_preserves_answers_and_drops_tombstones(self):
        pts = [(i, 0) for i in range(16)]
        tree = KDTree(pts, list(range(16)))
        for i in range(6):
            assert tree.delete((i, 0), lambda item, i=i: item == i)
        # sorted inserts force the depth rebuild eventually
        for j in range(16, 200):
            tree.insert((j, j), j)
        assert tree.depth_rebuilds > 0
        assert len(tree) == 10 + 184
        # tombstoned points must never come back
        assert tree.nearest((0, 0), tie_key=lambda i: i) == (6, 36)
        # and live answers match brute force
        live = [(q, i) for i, q in enumerate(pts) if i >= 6]
        live += [((j, j), j) for j in range(16, 200)]
        for p in [(3, 3), (50, 40), (199, 0)]:
            found = tree.nearest(p, tie_key=lambda i: i)
            best = min((dist_sq(q, p), i) for q, i in live)
            assert found == (best[1], best[0])

    def test_random_inserts_do_not_trip_the_bound(self):
        import random

        rng = random.Random(7)
        tree = KDTree([(rng.random(), rng.random()) for _ in range(8)])
        for i in range(400):
            tree.insert((rng.random(), rng.random()), i)
        assert tree.depth_rebuilds == 0
