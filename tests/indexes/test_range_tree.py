"""Layered range trees vs brute-force scans (Section 5.3.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes.range_tree import LayeredRangeTree2D, RangeTree

coord = st.integers(-50, 50)
points2d = st.lists(st.tuples(coord, coord), max_size=60)
box_side = st.tuples(coord, coord).map(lambda ab: (min(ab), max(ab)))


def brute2d(points, xlo, xhi, ylo, yhi):
    return sorted(
        i for i, (x, y) in enumerate(points)
        if xlo <= x <= xhi and ylo <= y <= yhi
    )


class TestLayeredRangeTree2D:
    @settings(max_examples=150, deadline=None)
    @given(points2d, box_side, box_side)
    def test_enumerate_matches_bruteforce_cascade(self, points, bx, by):
        tree = LayeredRangeTree2D(points, cascade=True)
        got = sorted(tree.enumerate(bx[0], bx[1], by[0], by[1]))
        assert got == brute2d(points, bx[0], bx[1], by[0], by[1])

    @settings(max_examples=150, deadline=None)
    @given(points2d, box_side, box_side)
    def test_enumerate_matches_bruteforce_no_cascade(self, points, bx, by):
        tree = LayeredRangeTree2D(points, cascade=False)
        got = sorted(tree.enumerate(bx[0], bx[1], by[0], by[1]))
        assert got == brute2d(points, bx[0], bx[1], by[0], by[1])

    @settings(max_examples=100, deadline=None)
    @given(points2d, box_side, box_side)
    def test_count_matches_enumerate(self, points, bx, by):
        tree = LayeredRangeTree2D(points)
        assert tree.count(bx[0], bx[1], by[0], by[1]) == len(
            tree.enumerate(bx[0], bx[1], by[0], by[1])
        )

    def test_empty_tree(self):
        tree = LayeredRangeTree2D([])
        assert tree.enumerate(-1, 1, -1, 1) == []
        assert tree.count(-1, 1, -1, 1) == 0

    def test_inverted_range_is_empty(self):
        tree = LayeredRangeTree2D([(0, 0)])
        assert tree.enumerate(1, -1, 0, 0) == []

    def test_duplicate_coordinates(self):
        points = [(0, 0)] * 5 + [(1, 1)] * 3
        tree = LayeredRangeTree2D(points)
        assert tree.count(0, 0, 0, 0) == 5
        assert tree.count(0, 1, 0, 1) == 8

    def test_custom_items(self):
        tree = LayeredRangeTree2D([(0, 0), (5, 5)], items=["a", "b"])
        assert tree.enumerate(4, 6, 4, 6) == ["b"]

    def test_boundary_inclusive(self):
        tree = LayeredRangeTree2D([(1, 1), (3, 3)])
        assert sorted(tree.enumerate(1, 3, 1, 3)) == [0, 1]

    def test_mismatched_items_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            LayeredRangeTree2D([(0, 0)], items=[1, 2])


class TestGeneralRangeTree:
    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(st.tuples(coord, coord, coord), max_size=40),
        box_side, box_side, box_side,
    )
    def test_3d_matches_bruteforce(self, points, bx, by, bz):
        tree = RangeTree(points)
        box = [bx, by, bz]
        got = sorted(tree.enumerate(box))
        expected = sorted(
            i for i, p in enumerate(points)
            if all(lo <= c <= hi for c, (lo, hi) in zip(p, box))
        )
        assert got == expected

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.tuples(coord), max_size=40), box_side)
    def test_1d_matches_bruteforce(self, points, bx):
        tree = RangeTree(points)
        got = sorted(tree.enumerate([bx]))
        expected = sorted(
            i for i, (x,) in enumerate(points) if bx[0] <= x <= bx[1]
        )
        assert got == expected

    def test_dimension_mismatch_rejected(self):
        import pytest

        tree = RangeTree([(0, 0)])
        with pytest.raises(ValueError):
            tree.enumerate([(0, 1)])

    def test_empty(self):
        assert RangeTree([]).enumerate([]) == []
