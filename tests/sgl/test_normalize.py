"""Aggregate normal form (Section 5.1): hoisting + semantic preservation."""

from repro.sgl import ast
from repro.sgl.interp import reference_tick
from repro.sgl.normalize import is_normal_form, normalize_script
from repro.sgl.parser import parse_script
from tests.conftest import make_env


class TestHoisting:
    def test_paper_example(self, registry):
        # if agg(...) = 3 then f  ==  (let v = agg(...)) if v = 3 then f
        script = parse_script(
            "main(u) { if CountEnemiesInRange(u, 5) = 3 then "
            "perform UseWeapon(u) }"
        )
        assert not is_normal_form(script, registry)
        normal = normalize_script(script, registry)
        assert is_normal_form(normal, registry)
        body = normal.main.body
        assert isinstance(body, ast.Let)
        assert isinstance(body.term, ast.Call)

    def test_let_top_level_aggregate_already_normal(self, registry):
        script = parse_script(
            "main(u) { (let c = CountEnemiesInRange(u, 5)) "
            "if c > 0 then perform UseWeapon(u) }"
        )
        assert is_normal_form(script, registry)
        assert normalize_script(script, registry).main.body == script.main.body

    def test_nested_aggregate_in_let_hoisted(self, registry):
        script = parse_script(
            "main(u) { (let x = 1 + CountEnemiesInRange(u, 5)) "
            "if x > 1 then perform UseWeapon(u) }"
        )
        assert not is_normal_form(script, registry)
        normal = normalize_script(script, registry)
        assert is_normal_form(normal, registry)

    def test_aggregate_in_perform_arg_hoisted(self, registry):
        script = parse_script(
            "main(u) { perform FireAt(u, NearestEnemy(u).key) }"
        )
        normal = normalize_script(script, registry)
        assert is_normal_form(normal, registry)
        assert isinstance(normal.main.body, ast.Let)

    def test_else_expanded_to_negated_if(self, registry):
        script = parse_script(
            "main(u) { if u.health > 5 then perform UseWeapon(u) "
            "else perform MoveInDirection(u, 1, 0) }"
        )
        normal = normalize_script(script, registry)
        body = normal.main.body
        assert isinstance(body, ast.Seq)
        assert isinstance(body.second, ast.If)
        assert isinstance(body.second.cond, ast.Not)

    def test_fresh_names_avoid_collisions(self, registry):
        script = parse_script(
            "main(u) { (let __countenemies_1 = 7) "
            "if CountEnemiesInRange(u, 5) > 0 then "
            "perform MoveInDirection(u, __countenemies_1, 0) }"
        )
        normal = normalize_script(script, registry)
        assert is_normal_form(normal, registry)
        # the existing binding must be untouched
        assert isinstance(normal.main.body, ast.Let)

    def test_math_builtins_not_hoisted(self, registry):
        script = parse_script(
            "main(u) { if sqrt(u.health) > 2 then perform UseWeapon(u) }"
        )
        assert is_normal_form(script, registry)


class TestSemanticPreservation:
    def check(self, source, registry, schema, n=10):
        env = make_env(schema, n=n)
        script = parse_script(source)
        normal = normalize_script(script, registry)
        rng = lambda row, i: (hash((row["key"], i)) & 0xFFFF)  # noqa: E731
        before = reference_tick(env, lambda u: script, registry, rng)
        after = reference_tick(env, lambda u: normal, registry, rng)
        assert before == after

    def test_condition_aggregate(self, registry, schema):
        self.check(
            "main(u) { if CountEnemiesInRange(u, 100) > 2 then "
            "perform UseWeapon(u) }",
            registry, schema,
        )

    def test_if_else_with_aggregates(self, registry, schema):
        self.check(
            "main(u) { if CountEnemiesInRange(u, 8) > 1 then "
            "perform UseWeapon(u) else perform MoveInDirection(u, 1, 1) }",
            registry, schema,
        )

    def test_perform_arg_aggregate(self, registry, schema):
        self.check(
            "main(u) { if CountEnemiesInRange(u, 1000) > 0 then "
            "perform FireAt(u, NearestEnemy(u).key) }",
            registry, schema,
        )

    def test_battle_scripts_normalize_cleanly(self, registry, schema):
        from repro.game.scripts import (
            ARCHER_SCRIPT,
            HEALER_SCRIPT,
            KNIGHT_SCRIPT,
        )

        for source in (KNIGHT_SCRIPT, ARCHER_SCRIPT, HEALER_SCRIPT):
            self.check(source, registry, schema, n=16)
