"""The restricted SQL fragment: parsing Figures 4/5 and naive evaluation."""

import pytest

from repro.env.schema import Attribute, AttributeType, Schema
from repro.env.table import EnvironmentTable
from repro.sgl import ast
from repro.sgl.builtins import FunctionRegistry
from repro.sgl.errors import SglSyntaxError
from repro.sgl.evalterm import EvalContext
from repro.sgl.interp import NaiveAggregateEvaluator
from repro.sgl.sqlspec import (
    SqlActionSpec,
    SqlAggregateSpec,
    apply_action_scan,
    evaluate_aggregate_scan,
    parse_sql_function,
    parse_sql_functions,
    split_conjuncts,
)
from repro.sgl.values import Record


def make_schema():
    c = AttributeType.CONST
    return Schema(
        [
            Attribute("key", c), Attribute("player", c),
            Attribute("posx", c), Attribute("posy", c),
            Attribute("health", c),
            Attribute("damage", AttributeType.SUM),
        ]
    )


def make_env(rows):
    schema = make_schema()
    env = EnvironmentTable(schema)
    for key, player, x, y, health in rows:
        env.rows.append(
            {"key": key, "player": player, "posx": x, "posy": y,
             "health": health, "damage": 0}
        )
    return env


def make_ctx(env):
    return EvalContext(
        env=env,
        registry=FunctionRegistry(),
        agg_eval=NaiveAggregateEvaluator(),
        rng=lambda row, i: 0,
        bindings={},
        unit=None,
    )


FIGURE_4_COUNT = """
function CountEnemiesInRange(u, range) returns
SELECT Count(*)
FROM E
WHERE E.posx >= u.posx - range
  AND E.posx <= u.posx + range
  AND E.posy >= u.posy - range
  AND E.posy <= u.posy + range
  AND E.player <> u.player;
"""


class TestParsing:
    def test_figure_4_count(self):
        parsed = parse_sql_function(FIGURE_4_COUNT)
        assert parsed.name == "CountEnemiesInRange"
        assert parsed.params == ("u", "range")
        assert isinstance(parsed.spec, SqlAggregateSpec)
        assert len(parsed.spec.where) == 5
        assert parsed.spec.outputs[0].agg == "count"

    def test_figure_4_centroid_multi_output(self):
        parsed = parse_sql_function(
            """
            function Centroid(u) returns
            SELECT Avg(posx) AS x, Avg(posy) AS y
            FROM E e WHERE e.player <> u.player;
            """
        )
        assert [o.alias for o in parsed.spec.outputs] == ["x", "y"]

    def test_bare_columns_normalise_to_e(self):
        parsed = parse_sql_function(
            "function F(u) returns SELECT Sum(health) FROM E e;"
        )
        term = parsed.spec.outputs[0].term
        assert term == ast.FieldAccess(ast.Name("e"), "health")

    def test_table_alias_normalises(self):
        parsed = parse_sql_function(
            "function F(u) returns SELECT Count(*) FROM E t WHERE t.posx > u.posx;"
        )
        conjunct = parsed.spec.where[0]
        assert conjunct.left == ast.FieldAccess(ast.Name("e"), "posx")

    def test_constants_stay_names(self):
        parsed = parse_sql_function(
            "function F(u) returns SELECT Count(*) FROM E e WHERE e.posx < _LIMIT;"
        )
        assert parsed.spec.where[0].right == ast.Name("_LIMIT")

    def test_action_spec(self):
        parsed = parse_sql_function(
            """
            function Move(u, vx) returns
            SELECT e.key, vx AS movevect_x, e.damage AS damage
            FROM E e WHERE e.key = u.key;
            """
        )
        spec = parsed.spec
        assert isinstance(spec, SqlActionSpec)
        # e.damage AS damage is an explicit pass-through, not an effect
        assert set(spec.effects) == {"movevect_x"}

    def test_multiple_functions(self):
        parsed = parse_sql_functions(FIGURE_4_COUNT * 1 + FIGURE_4_COUNT.replace(
            "CountEnemiesInRange", "CountEnemiesInRange2"))
        assert [p.name for p in parsed] == [
            "CountEnemiesInRange", "CountEnemiesInRange2",
        ]

    def test_mixed_select_list_rejected(self):
        with pytest.raises(SglSyntaxError):
            parse_sql_function(
                "function F(u) returns SELECT Count(*), e.key FROM E e;"
            )

    def test_aggregate_requires_single_argument(self):
        with pytest.raises(SglSyntaxError):
            parse_sql_function(
                "function F(u) returns SELECT Sum(a, b) FROM E e;"
            )

    def test_duplicate_aliases_rejected(self):
        with pytest.raises(SglSyntaxError):
            parse_sql_function(
                "function F(u) returns SELECT Avg(posx), Avg(posy) FROM E e;"
            )

    def test_split_conjuncts(self):
        parsed = parse_sql_function(FIGURE_4_COUNT)
        assert len(parsed.spec.where) == 5
        rejoined = parsed.spec.where[0]
        assert split_conjuncts(rejoined) == (rejoined,)


class TestAggregateEvaluation:
    def rows(self):
        return [
            (0, 0, 0, 0, 10),
            (1, 1, 1, 0, 8),
            (2, 1, 2, 0, 6),
            (3, 1, 50, 50, 4),
        ]

    def evaluate(self, sql, unit_key=0, extra_args=()):
        env = make_env(self.rows())
        parsed = parse_sql_function(sql)
        ctx = make_ctx(env)
        unit = env.rows[unit_key]
        bindings = dict(zip(parsed.params, (unit, *extra_args)))
        return evaluate_aggregate_scan(parsed.spec, bindings, env.rows, ctx)

    def test_count_in_range(self):
        assert self.evaluate(FIGURE_4_COUNT, extra_args=(5,)) == 2

    def test_count_everything(self):
        assert self.evaluate(
            "function F(u) returns SELECT Count(*) FROM E e;"
        ) == 4

    def test_sum_avg(self):
        value = self.evaluate(
            "function F(u) returns SELECT Avg(health) FROM E e "
            "WHERE e.player <> u.player;"
        )
        assert value == pytest.approx(6.0)

    def test_min_max(self):
        record = self.evaluate(
            "function F(u) returns SELECT Min(health) AS lo, Max(health) AS hi "
            "FROM E e WHERE e.player <> u.player;"
        )
        assert record.lo == 4 and record.hi == 8

    def test_stddev(self):
        value = self.evaluate(
            "function F(u) returns SELECT Stddev(health) FROM E e "
            "WHERE e.player = u.player;"
        )
        assert value == pytest.approx(0.0)

    def test_argmin_returns_row_record(self):
        record = self.evaluate(
            "function F(u) returns SELECT ArgMin(health) FROM E e "
            "WHERE e.player <> u.player;"
        )
        assert isinstance(record, Record) and record.key == 3

    def test_argmin_tie_breaks_by_key(self):
        env = make_env([(0, 0, 0, 0, 5), (2, 1, 0, 0, 7), (1, 1, 1, 0, 7)])
        parsed = parse_sql_function(
            "function F(u) returns SELECT ArgMin(health) FROM E e "
            "WHERE e.player <> u.player;"
        )
        ctx = make_ctx(env)
        result = evaluate_aggregate_scan(
            parsed.spec, {"u": env.rows[0]}, env.rows, ctx
        )
        assert result.key == 1

    def test_empty_selection_semantics(self):
        record = self.evaluate(
            "function F(u) returns SELECT Count(*) AS c, Sum(health) AS s, "
            "Min(health) AS lo, Avg(health) AS a FROM E e WHERE e.posx > 1000;"
        )
        assert record.c == 0 and record.s == 0
        assert record.lo is None and record.a is None


class TestActionEvaluation:
    def test_apply_to_keyed_target(self):
        env = make_env([(0, 0, 0, 0, 10), (1, 1, 1, 0, 8)])
        parsed = parse_sql_function(
            """
            function Hit(u, target) returns
            SELECT e.key, e.damage + 5 AS damage
            FROM E e WHERE e.key = target;
            """
        )
        ctx = make_ctx(env)
        rows = apply_action_scan(
            parsed.spec, {"u": env.rows[0], "target": 1}, ctx
        )
        assert len(rows) == 1
        assert rows[0]["key"] == 1 and rows[0]["damage"] == 5

    def test_no_match_produces_no_rows(self):
        env = make_env([(0, 0, 0, 0, 10)])
        parsed = parse_sql_function(
            "function Hit(u, target) returns SELECT e.key, 1 AS damage "
            "FROM E e WHERE e.key = target;"
        )
        rows = apply_action_scan(
            parsed.spec, {"u": env.rows[0], "target": 99}, make_ctx(env)
        )
        assert rows == []

    def test_area_action_hits_many(self):
        env = make_env([(0, 0, 0, 0, 10), (1, 0, 1, 1, 8), (2, 0, 30, 30, 6)])
        parsed = parse_sql_function(
            """
            function Blast(u) returns
            SELECT e.key, e.damage + 2 AS damage
            FROM E e
            WHERE abs(u.posx - e.posx) <= 3 AND abs(u.posy - e.posy) <= 3;
            """
        )
        rows = apply_action_scan(parsed.spec, {"u": env.rows[0]}, make_ctx(env))
        assert sorted(r["key"] for r in rows) == [0, 1]
