"""Term/condition evaluation: [[.]]_term and [[.]]_cond of Section 4.3."""

import pytest

from repro.env.schema import Attribute, AttributeType, Schema
from repro.env.table import EnvironmentTable
from repro.sgl.builtins import FunctionRegistry
from repro.sgl.errors import SglNameError, SglRuntimeError, SglTypeError
from repro.sgl.evalterm import EvalContext, compare, eval_cond, eval_term
from repro.sgl.interp import NaiveAggregateEvaluator
from repro.sgl.parser import parse_condition, parse_term
from repro.sgl.values import Vec


def make_ctx(bindings=None, unit=None, registry=None):
    schema = Schema([Attribute("key", AttributeType.CONST)])
    return EvalContext(
        env=EnvironmentTable(schema),
        registry=registry or FunctionRegistry(),
        agg_eval=NaiveAggregateEvaluator(),
        rng=lambda row, i: (hash((row.get("key"), i)) & 0x7FFFFFFF),
        bindings=dict(bindings or {}),
        unit=unit,
    )


def ev(src, **kw):
    return eval_term(parse_term(src), make_ctx(**kw))


def cond(src, **kw):
    return eval_cond(parse_condition(src), make_ctx(**kw))


class TestArithmetic:
    def test_constants(self):
        assert ev("1 + 2 * 3") == 7

    def test_division(self):
        assert ev("7 / 2") == 3.5

    def test_modulo(self):
        assert ev("7 % 3") == 1

    def test_negation(self):
        assert ev("-(2 + 3)") == -5

    def test_division_by_zero(self):
        with pytest.raises(SglRuntimeError):
            ev("1 / 0")

    def test_string_plus_number_rejected(self):
        with pytest.raises(SglTypeError):
            ev("'a' + 1")


class TestNames:
    def test_binding_lookup(self):
        assert ev("x + 1", bindings={"x": 41}) == 42

    def test_unbound_name(self):
        with pytest.raises(SglNameError):
            ev("nope")

    def test_registry_constant(self):
        registry = FunctionRegistry()
        registry.register_constant("_HEAL", 3)
        assert ev("_HEAL * 2", registry=registry) == 6

    def test_field_access_on_unit(self):
        row = {"key": 1, "posx": 10}
        assert ev("u.posx", bindings={"u": row}) == 10


class TestVectors:
    def test_vector_literal(self):
        assert ev("(1, 2)") == Vec([1, 2])

    def test_vector_arithmetic(self):
        assert ev("(5, 5) - (2, 3)") == Vec([3, 2])

    def test_null_item_propagates(self):
        assert ev("(x, 2)", bindings={"x": None}) is None


class TestMathBuiltins:
    def test_sqrt(self):
        assert ev("sqrt(9)") == 3

    def test_abs(self):
        assert ev("abs(0 - 5)") == 5

    def test_step(self):
        assert ev("step(3)") == 1
        assert ev("step(0)") == 1
        assert ev("step(0 - 1)") == 0

    def test_nonsql_max_min(self):
        assert ev("nonsql_max(2, 5)") == 5
        assert ev("nonsql_min(2, 5)") == 2

    def test_norm_of_vec(self):
        assert ev("norm((3, 4))") == 5

    def test_null_argument_propagates(self):
        assert ev("sqrt(x)", bindings={"x": None}) is None


class TestRandom:
    def test_single_arg_uses_unit(self):
        unit = {"key": 7}
        value = ev("Random(1)", unit=unit)
        assert value == ev("Random(1)", unit=unit)  # stable per tick

    def test_two_arg_uses_given_row(self):
        unit = {"key": 7}
        other = {"key": 9}
        assert ev("Random(e, 1)", unit=unit, bindings={"e": other}) == ev(
            "Random(e, 1)", unit=unit, bindings={"e": other}
        )

    def test_without_unit_raises(self):
        with pytest.raises(SglRuntimeError):
            ev("Random(1)")

    def test_unknown_function(self):
        with pytest.raises(SglNameError):
            ev("Mystery(1)")


class TestConditions:
    def test_comparisons(self):
        assert cond("2 < 3") and cond("3 <= 3") and cond("4 > 3")
        assert cond("3 >= 3") and cond("1 = 1") and cond("1 <> 2")

    def test_boolean_connectives(self):
        assert cond("1 = 1 and 2 = 2")
        assert cond("1 = 2 or 2 = 2")
        assert cond("not 1 = 2")

    def test_string_equality(self):
        assert cond("x = 'knight'", bindings={"x": "knight"})

    def test_short_circuit_and(self):
        # right side would raise if evaluated
        assert not cond("1 = 2 and 1 / 0 = 1")


class TestNullComparisons:
    """SQL three-valued logic: NULL compares false under every operator."""

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_null_left(self, op):
        assert compare(op, None, 1) is False

    @pytest.mark.parametrize("op", ["=", "<>", "<", "<=", ">", ">="])
    def test_null_right(self, op):
        assert compare(op, 1, None) is False

    def test_null_both(self):
        assert compare("=", None, None) is False

    def test_null_arithmetic_propagates(self):
        assert ev("x + 1", bindings={"x": None}) is None
        assert ev("-x", bindings={"x": None}) is None

    def test_incomparable_types(self):
        with pytest.raises(SglTypeError):
            compare("<", "a", 1)
