"""Parser coverage: the grammar of Section 4.1 and Figure 3 verbatim."""

import pytest

from repro.sgl import ast
from repro.sgl.errors import SglSyntaxError
from repro.sgl.parser import (
    parse_action,
    parse_condition,
    parse_script,
    parse_term,
)


class TestTerms:
    def test_number(self):
        assert parse_term("42") == ast.Num(42)

    def test_float(self):
        assert parse_term("2.5") == ast.Num(2.5)

    def test_string(self):
        assert parse_term("'knight'") == ast.Str("knight")

    def test_name(self):
        assert parse_term("c") == ast.Name("c")

    def test_field_access(self):
        assert parse_term("u.posx") == ast.FieldAccess(ast.Name("u"), "posx")

    def test_chained_field_access(self):
        term = parse_term("GetNearestEnemy(u).key")
        assert isinstance(term, ast.FieldAccess)
        assert isinstance(term.base, ast.Call)

    def test_precedence_mul_over_add(self):
        term = parse_term("1 + 2 * 3")
        assert term == ast.BinOp("+", ast.Num(1),
                                 ast.BinOp("*", ast.Num(2), ast.Num(3)))

    def test_left_associativity(self):
        term = parse_term("1 - 2 - 3")
        assert term == ast.BinOp("-", ast.BinOp("-", ast.Num(1), ast.Num(2)),
                                 ast.Num(3))

    def test_parenthesised_grouping(self):
        term = parse_term("(1 + 2) * 3")
        assert isinstance(term, ast.BinOp) and term.op == "*"

    def test_unary_minus(self):
        assert parse_term("-x") == ast.Neg(ast.Name("x"))

    def test_unary_plus_is_noop(self):
        assert parse_term("+x") == ast.Name("x")

    def test_modulo(self):
        assert parse_term("a % 2").op == "%"

    def test_vector_literal(self):
        term = parse_term("(u.posx, u.posy)")
        assert isinstance(term, ast.VecLit) and len(term.items) == 2

    def test_call_with_args(self):
        term = parse_term("Count(u, u.range)")
        assert term == ast.Call(
            "Count", (ast.Name("u"), ast.FieldAccess(ast.Name("u"), "range"))
        )

    def test_call_no_args(self):
        assert parse_term("Foo()") == ast.Call("Foo", ())

    def test_garbage_rejected(self):
        with pytest.raises(SglSyntaxError):
            parse_term("1 +")


class TestConditions:
    def test_comparison(self):
        cond = parse_condition("c > u.morale")
        assert isinstance(cond, ast.Compare) and cond.op == ">"

    def test_equality_is_sql_style(self):
        assert parse_condition("a = 1").op == "="
        assert parse_condition("a == 1").op == "="  # canonicalised

    def test_inequality_aliases(self):
        assert parse_condition("a <> 1").op == "<>"
        assert parse_condition("a != 1").op == "<>"

    def test_and_or_precedence(self):
        cond = parse_condition("a = 1 or b = 2 and c = 3")
        assert isinstance(cond, ast.Or)
        assert isinstance(cond.right, ast.And)

    def test_not(self):
        cond = parse_condition("not a = 1")
        assert isinstance(cond, ast.Not)

    def test_parenthesised_condition(self):
        cond = parse_condition("(c > 0 and u.cooldown = 0)")
        assert isinstance(cond, ast.And)

    def test_boolean_literals(self):
        assert parse_condition("true") == ast.BoolLit(True)
        assert parse_condition("false") == ast.BoolLit(False)

    def test_missing_comparator_rejected(self):
        with pytest.raises(SglSyntaxError):
            parse_condition("a")


class TestActions:
    def test_perform(self):
        action = parse_action("perform Fire(u, 3)")
        assert action == ast.Perform("Fire", (ast.Name("u"), ast.Num(3)))

    def test_let_binds_one_action(self):
        action = parse_action("(let x = 1) perform F(x)")
        assert isinstance(action, ast.Let)
        assert isinstance(action.body, ast.Perform)

    def test_nested_lets(self):
        action = parse_action("(let x = 1) (let y = 2) perform F(x, y)")
        assert isinstance(action, ast.Let)
        assert isinstance(action.body, ast.Let)

    def test_if_then(self):
        action = parse_action("if x > 0 then perform F(x)")
        assert isinstance(action, ast.If) and action.else_branch is None

    def test_if_then_else(self):
        action = parse_action("if x > 0 then perform F(x) else perform G(x)")
        assert isinstance(action, ast.If)
        assert action.else_branch is not None

    def test_semicolon_before_else(self):
        # the paper's Figure 3 writes "perform ...; else if ..."
        action = parse_action(
            "if x > 0 then perform F(x); else perform G(x)"
        )
        assert action.else_branch is not None

    def test_block_sequences(self):
        action = parse_action("{ perform F(x); perform G(x) }")
        assert isinstance(action, ast.Seq)

    def test_empty_block_is_skip(self):
        assert isinstance(parse_action("{ }"), ast.Skip)

    def test_sequencing_at_top_level(self):
        action = parse_action("perform F(x); perform G(x); perform H(x)")
        assert isinstance(action, ast.Seq)
        assert isinstance(action.first, ast.Seq)


class TestScripts:
    def test_figure_3_parses(self):
        script = parse_script(
            """
            main(u) {
              (let c = CountEnemiesInRange(u, u.range))
              (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
                if (c > u.morale) then
                  perform MoveInDirection(u, away_vector);
                else if (c > 0 and u.cooldown = 0) then
                  (let target_key = getNearestEnemy(u).key) {
                    perform FireAt(u, target_key);
                  }
              }
            }
            """
        )
        assert script.main.params == ("u",)
        body = script.main.body
        assert isinstance(body, ast.Let) and body.name == "c"

    def test_multiple_functions(self):
        script = parse_script(
            "main(u) { perform Helper(u) } function Helper(u) { perform F(u) }"
        )
        assert set(script.functions) == {"main", "Helper"}

    def test_function_keyword_optional(self):
        script = parse_script("main(u) { }")
        assert isinstance(script.main.body, ast.Skip)

    def test_duplicate_function_rejected(self):
        with pytest.raises(SglSyntaxError):
            parse_script("main(u) { } main(u) { }")

    def test_missing_main_rejected(self):
        with pytest.raises(SglSyntaxError):
            parse_script("helper(u) { }")

    def test_empty_script_rejected(self):
        with pytest.raises(SglSyntaxError):
            parse_script("")

    def test_custom_entry_point(self):
        script = parse_script("go(u) { }", entry="go")
        assert script.main.name == "go"

    def test_roundtrip_str_reparses(self):
        source = (
            "main(u) { (let c = Count(u)) if c > 0 then perform F(u, c) "
            "else perform G(u) }"
        )
        script = parse_script(source)
        reparsed = parse_script(f"main(u) {{ {script.main.body} }}")
        assert reparsed.main.body == script.main.body
