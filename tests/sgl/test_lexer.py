"""Tokenizer coverage, including the SQL keyword subset and comments."""

import pytest

from repro.sgl.errors import SglSyntaxError
from repro.sgl.tokens import TokenKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)][:-1]  # drop EOF


def texts(src):
    return [t.text for t in tokenize(src)][:-1]


class TestBasics:
    def test_empty_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1 and tokens[0].kind is TokenKind.EOF

    def test_numbers(self):
        assert texts("1 42 3.5 0.25") == ["1", "42", "3.5", "0.25"]

    def test_number_then_dot_field(self):
        # '1.x' style: the dot must not be eaten by the number
        assert [t.text for t in tokenize("1.x")][:3] == ["1", ".", "x"]

    def test_names_and_keywords(self):
        tokens = tokenize("if posx then Else")
        assert tokens[0].is_keyword("if")
        assert tokens[1].kind is TokenKind.NAME
        assert tokens[2].is_keyword("then")
        assert tokens[3].is_keyword("else")  # keywords case-insensitive

    def test_sql_keywords(self):
        tokens = tokenize("SELECT x FROM E WHERE y AS z")
        assert tokens[0].is_keyword("select")
        assert tokens[2].is_keyword("from")
        assert tokens[4].is_keyword("where")
        assert tokens[6].is_keyword("as")

    def test_operators(self):
        assert texts("<= >= <> != == = < >") == [
            "<=", ">=", "<>", "!=", "==", "=", "<", ">",
        ]

    def test_punctuation(self):
        assert kinds("(){},;.*") == [
            TokenKind.LPAREN, TokenKind.RPAREN, TokenKind.LBRACE,
            TokenKind.RBRACE, TokenKind.COMMA, TokenKind.SEMI,
            TokenKind.DOT, TokenKind.STAR,
        ]

    def test_strings_single_and_double(self):
        assert texts("'knight' \"archer\"") == ["knight", "archer"]

    def test_underscore_names(self):
        assert texts("_HEAL_AURA foo_bar") == ["_HEAL_AURA", "foo_bar"]


class TestComments:
    def test_hash_comment(self):
        assert texts("1 # comment\n2") == ["1", "2"]

    def test_slash_slash_comment(self):
        assert texts("1 // comment\n2") == ["1", "2"]

    def test_block_comment(self):
        assert texts("1 /* multi\nline */ 2") == ["1", "2"]

    def test_unterminated_block_comment(self):
        with pytest.raises(SglSyntaxError):
            tokenize("/* oops")


class TestErrorsAndPositions:
    def test_unexpected_character(self):
        with pytest.raises(SglSyntaxError):
            tokenize("a @ b")

    def test_unterminated_string(self):
        with pytest.raises(SglSyntaxError):
            tokenize("'oops")

    def test_string_may_not_span_lines(self):
        with pytest.raises(SglSyntaxError):
            tokenize("'a\nb'")

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)
