"""Static analysis: validation errors and optimizer inventories."""

import pytest

from repro.sgl.analysis import analyze_script
from repro.sgl.errors import SglNameError, SglTypeError
from repro.sgl.parser import parse_script


def analyze(src, registry, schema=None):
    return analyze_script(parse_script(src), registry, schema)


class TestValidation:
    def test_valid_script(self, registry, schema):
        analysis = analyze(
            "main(u) { (let c = CountEnemiesInRange(u, u.range)) "
            "if c > 0 then perform UseWeapon(u) }",
            registry, schema,
        )
        assert analysis.aggregate_functions == {"CountEnemiesInRange"}

    def test_unbound_name(self, registry):
        with pytest.raises(SglNameError):
            analyze("main(u) { if x > 0 then perform UseWeapon(u) }", registry)

    def test_let_scoping_is_downward_only(self, registry):
        with pytest.raises(SglNameError):
            analyze(
                "main(u) { if 1 = 1 then (let x = 1) perform UseWeapon(u); "
                "if x > 0 then perform UseWeapon(u) }",
                registry,
            )

    def test_unknown_aggregate(self, registry):
        with pytest.raises(SglNameError):
            analyze("main(u) { (let c = Mystery(u)) perform UseWeapon(u) }",
                    registry)

    def test_unknown_action(self, registry):
        with pytest.raises(SglNameError):
            analyze("main(u) { perform Mystery(u) }", registry)

    def test_aggregate_arity(self, registry):
        with pytest.raises(SglTypeError):
            analyze(
                "main(u) { (let c = CountEnemiesInRange(u)) "
                "perform UseWeapon(u) }",
                registry,
            )

    def test_action_arity(self, registry):
        with pytest.raises(SglTypeError):
            analyze("main(u) { perform FireAt(u) }", registry)

    def test_defined_function_arity(self, registry):
        with pytest.raises(SglTypeError):
            analyze(
                "main(u) { perform Helper(u, 1) } Helper(w) { }", registry
            )

    def test_random_arity(self, registry):
        with pytest.raises(SglTypeError):
            analyze(
                "main(u) { (let r = Random(1, 2, 3)) perform UseWeapon(u) }",
                registry,
            )

    def test_function_needs_unit_param(self, registry):
        with pytest.raises(SglTypeError):
            analyze("main() { }", registry)

    def test_constants_are_bound(self, registry):
        analysis = analyze(
            "main(u) { if u.health < _HEAL_AURA then perform UseWeapon(u) }",
            registry,
        )
        assert analysis.aggregate_calls == []


class TestInventories:
    def test_aggregate_call_sites(self, registry):
        analysis = analyze(
            "main(u) { (let a = CountEnemiesInRange(u, 5)) "
            "(let b = CountEnemiesInRange(u, 10)) "
            "(let c = NearestEnemy(u)) perform UseWeapon(u) }",
            registry,
        )
        assert len(analysis.aggregate_calls) == 3
        assert analysis.aggregate_functions == {
            "CountEnemiesInRange", "NearestEnemy",
        }

    def test_effects_written(self, registry):
        analysis = analyze(
            "main(u) { perform FireAt(u, 3); perform Heal(u) }", registry
        )
        assert "damage" in analysis.effects_written
        assert "inaura" in analysis.effects_written

    def test_actions_performed(self, registry):
        analysis = analyze(
            "main(u) { perform Helper(u) } Helper(w) { perform UseWeapon(w) }",
            registry,
        )
        assert analysis.actions_performed == {"Helper", "UseWeapon"}

    def test_attributes_read(self, registry, schema):
        analysis = analyze(
            "main(u) { if u.health > u.morale then perform UseWeapon(u) }",
            registry, schema,
        )
        assert {"health", "morale"} <= analysis.attributes_read

    def test_random_usage_flag(self, registry):
        analysis = analyze(
            "main(u) { (let r = Random(1)) if r % 2 = 0 then "
            "perform UseWeapon(u) }",
            registry,
        )
        assert analysis.uses_random

    def test_battle_scripts_validate(self, registry, schema):
        from repro.game.scripts import (
            ARCHER_SCRIPT,
            HEALER_SCRIPT,
            KNIGHT_SCRIPT,
        )

        for source in (KNIGHT_SCRIPT, ARCHER_SCRIPT, HEALER_SCRIPT):
            analysis = analyze(source, registry, schema)
            assert analysis.aggregate_calls  # every unit script queries E
