"""Reference interpreter: the semantics equations of Section 4.3."""

import pytest

from repro.env.combine import combine
from repro.sgl.errors import SglNameError, SglTypeError
from repro.sgl.interp import Interpreter, reference_tick
from repro.sgl.parser import parse_script
from tests.conftest import make_env


def run_unit(script_src, registry, env, unit_index=0, tick_rng=None):
    script = parse_script(script_src)
    interp = Interpreter(script, registry)
    rng = tick_rng or (lambda row, i: 0)
    return interp.run_unit(env.rows[unit_index], env, rng)


class TestActionSemantics:
    def test_skip_like_empty_if(self, registry, schema):
        env = make_env(schema, n=4)
        result = run_unit("main(u) { if 1 = 2 then perform UseWeapon(u) }",
                          registry, env)
        assert len(result) == 0

    def test_perform_builtin_action(self, registry, schema):
        env = make_env(schema, n=4)
        result = run_unit("main(u) { perform UseWeapon(u) }", registry, env)
        assert len(result) == 1
        assert result.rows[0]["weaponused"] == 1
        assert result.rows[0]["key"] == env.rows[0]["key"]

    def test_let_extends_scope(self, registry, schema):
        env = make_env(schema, n=4)
        result = run_unit(
            "main(u) { (let v = 2 + 3) if v = 5 then perform UseWeapon(u) }",
            registry, env,
        )
        assert len(result) == 1

    def test_if_else(self, registry, schema):
        env = make_env(schema, n=4)
        result = run_unit(
            "main(u) { if 1 = 2 then perform UseWeapon(u) "
            "else perform MoveInDirection(u, 1, 0) }",
            registry, env,
        )
        assert result.rows[0]["movevect_x"] == 1

    def test_seq_combines_with_oplus(self, registry, schema):
        env = make_env(schema, n=4)
        result = run_unit(
            "main(u) { perform MoveInDirection(u, 1, 0); "
            "perform MoveInDirection(u, 2, 0) }",
            registry, env,
        )
        # both moves target the same unit: sum-tagged movevect_x stacks
        assert len(result) == 1
        assert result.rows[0]["movevect_x"] == 3

    def test_result_is_already_combined(self, registry, schema):
        env = make_env(schema, n=4)
        result = run_unit(
            "main(u) { perform UseWeapon(u); perform UseWeapon(u) }",
            registry, env,
        )
        assert combine(result) == result

    def test_defined_function_call(self, registry, schema):
        env = make_env(schema, n=4)
        result = run_unit(
            "main(u) { perform Helper(u, 4) } "
            "Helper(w, amount) { perform MoveInDirection(w, amount, 0) }",
            registry, env,
        )
        assert result.rows[0]["movevect_x"] == 4

    def test_defined_function_lexical_scope(self, registry, schema):
        # Helper must not see main's let bindings
        env = make_env(schema, n=4)
        with pytest.raises(SglNameError):
            run_unit(
                "main(u) { (let x = 1) perform Helper(u) } "
                "Helper(w) { perform MoveInDirection(w, x, 0) }",
                registry, env,
            )

    def test_unknown_action(self, registry, schema):
        env = make_env(schema, n=4)
        with pytest.raises(SglNameError):
            run_unit("main(u) { perform Nothing(u) }", registry, env)

    def test_wrong_arity(self, registry, schema):
        env = make_env(schema, n=4)
        with pytest.raises(SglTypeError):
            run_unit("main(u) { perform UseWeapon(u, 1) }", registry, env)


class TestAggregatesInScripts:
    def test_count_feeds_condition(self, registry, schema):
        env = make_env(schema, n=6)
        result = run_unit(
            "main(u) { (let c = CountEnemiesInRange(u, 1000)) "
            "if c > 0 then perform UseWeapon(u) }",
            registry, env,
        )
        assert len(result) == 1

    def test_argmin_record_key_targets_action(self, registry, schema):
        env = make_env(schema, n=6)
        result = run_unit(
            "main(u) { (let t = NearestEnemy(u)) perform FireAt(u, t.key) }",
            registry, env, tick_rng=lambda row, i: 19,
        )
        assert len(result) == 1
        assert result.rows[0]["player"] != env.rows[0]["player"]


class TestReferenceTick:
    def test_every_unit_present_in_output(self, registry, schema):
        env = make_env(schema, n=10)
        script = parse_script("main(u) { }")
        result = reference_tick(env, lambda u: script, registry,
                                lambda row, i: 0)
        assert sorted(r["key"] for r in result) == sorted(
            r["key"] for r in env
        )

    def test_idle_tick_preserves_defaults(self, registry, schema):
        env = make_env(schema, n=5)
        script = parse_script("main(u) { }")
        result = reference_tick(env, lambda u: script, registry,
                                lambda row, i: 0)
        for row in result:
            assert row["damage"] == 0

    def test_effects_merge_into_units(self, registry, schema):
        env = make_env(schema, n=6)
        script = parse_script("main(u) { perform UseWeapon(u) }")
        result = reference_tick(env, lambda u: script, registry,
                                lambda row, i: 0)
        assert all(row["weaponused"] == 1 for row in result)

    def test_per_unit_scripts(self, registry, schema):
        env = make_env(schema, n=6)
        move = parse_script("main(u) { perform MoveInDirection(u, 1, 0) }")
        idle = parse_script("main(u) { }")

        def script_for(row):
            return move if row["player"] == 0 else idle

        result = reference_tick(env, script_for, registry, lambda row, i: 0)
        for row in result:
            expected = 1 if row["player"] == 0 else 0
            assert row["movevect_x"] == expected
