"""Runtime values: Vec, Record, field access, NULL propagation."""

import pytest

from repro.sgl.errors import SglRuntimeError, SglTypeError
from repro.sgl.values import Record, Vec, field_of


class TestVec:
    def test_componentwise_add_sub(self):
        assert Vec([1, 2]) + Vec([3, 4]) == Vec([4, 6])
        assert Vec([5, 5]) - Vec([2, 3]) == Vec([3, 2])

    def test_scalar_mul_div(self):
        assert Vec([1, 2]) * 3 == Vec([3, 6])
        assert Vec([4, 8]) / 2 == Vec([2, 4])

    def test_negation(self):
        assert -Vec([1, -2]) == Vec([-1, 2])

    def test_norm(self):
        assert Vec([3, 4]).norm() == 5.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(SglTypeError):
            Vec([1]) + Vec([1, 2])

    def test_scalar_add_rejected(self):
        with pytest.raises(SglTypeError):
            Vec([1, 2]) + 3

    def test_hashable(self):
        assert len({Vec([1, 2]), Vec([1, 2]), Vec([2, 1])}) == 2

    def test_indexing_and_iteration(self):
        vec = Vec([7, 9])
        assert vec[1] == 9 and list(vec) == [7.0, 9.0]


class TestRecord:
    def test_field_access(self):
        record = Record({"x": 1, "y": 2})
        assert record.x == 1 and record.get("y") == 2

    def test_missing_field(self):
        with pytest.raises(SglRuntimeError):
            Record({"x": 1}).get("z")

    def test_immutable(self):
        with pytest.raises(SglTypeError):
            Record({"x": 1}).x = 5

    def test_as_vec_numeric(self):
        assert Record({"x": 1, "y": 2}).as_vec() == Vec([1, 2])

    def test_as_vec_null_propagates(self):
        # Figure 3's away_vector with no enemies in range
        assert Record({"x": None, "y": None}).as_vec() is None

    def test_as_vec_rejects_strings(self):
        with pytest.raises(SglTypeError):
            Record({"x": "knight", "y": 1}).as_vec()

    def test_vec_minus_record(self):
        assert Vec([5, 5]) - Record({"x": 2, "y": 1}) == Vec([3, 4])

    def test_vec_minus_null_record_is_null(self):
        assert Vec([5, 5]) - Record({"x": None, "y": None}) is None

    def test_record_minus_vec(self):
        assert Record({"x": 5, "y": 5}) - Vec([1, 2]) == Vec([4, 3])

    def test_equality(self):
        assert Record({"x": 1}) == Record({"x": 1})
        assert Record({"x": 1}) != Record({"x": 2})


class TestFieldOf:
    def test_mapping(self):
        assert field_of({"health": 9}, "health") == 9

    def test_mapping_missing(self):
        with pytest.raises(SglRuntimeError):
            field_of({}, "health")

    def test_record(self):
        assert field_of(Record({"key": 3}), "key") == 3

    def test_vec_xyz(self):
        vec = Vec([1, 2])
        assert field_of(vec, "x") == 1 and field_of(vec, "y") == 2

    def test_vec_out_of_range(self):
        with pytest.raises(SglRuntimeError):
            field_of(Vec([1, 2]), "z")

    def test_none_propagates(self):
        assert field_of(None, "key") is None

    def test_number_rejected(self):
        with pytest.raises(SglTypeError):
            field_of(42, "x")
