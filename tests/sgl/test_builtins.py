"""FunctionRegistry: registration paths, lookups, and conflicts."""

import pytest

from repro.sgl.builtins import (
    ActionFunction,
    AggregateFunction,
    FunctionRegistry,
)
from repro.sgl.errors import SglNameError, SglTypeError
from repro.sgl.sqlspec import SqlActionSpec, SqlAggregateSpec


class TestRegistration:
    def test_sql_registration_classifies(self):
        registry = FunctionRegistry()
        names = registry.register_sql(
            """
            function CountAll(u) returns SELECT Count(*) FROM E e;
            function Mark(u) returns SELECT e.key, 1 AS damage
            FROM E e WHERE e.key = u.key;
            """
        )
        assert names == ["CountAll", "Mark"]
        assert "CountAll" in registry.aggregates
        assert "Mark" in registry.actions

    def test_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.register_sql(
            "function F(u) returns SELECT Count(*) FROM E e;"
        )
        with pytest.raises(SglTypeError):
            registry.register_sql(
                "function F(u) returns SELECT Count(*) FROM E e;"
            )

    def test_cross_kind_duplicate_rejected(self):
        registry = FunctionRegistry()
        registry.register_sql(
            "function F(u) returns SELECT Count(*) FROM E e;"
        )
        with pytest.raises(SglTypeError):
            registry.register_sql(
                "function F(u) returns SELECT e.key, 1 AS damage "
                "FROM E e WHERE e.key = u.key;"
            )

    def test_native_registration(self):
        registry = FunctionRegistry()
        registry.register_native_aggregate(
            "Pop", ("u",), lambda args, rows, ctx: len(rows)
        )
        registry.register_native_action(
            "Noop", ("u",), lambda args, ctx: []
        )
        assert registry.aggregate("Pop").native is not None
        assert registry.action("Noop").native is not None

    def test_constants(self):
        registry = FunctionRegistry()
        registry.register_constant("_X", 5)
        registry.register_constants({"_Y": 6, "_Z": 7})
        assert registry.constants == {"_X": 5, "_Y": 6, "_Z": 7}

    def test_lookup_errors(self):
        registry = FunctionRegistry()
        with pytest.raises(SglNameError):
            registry.aggregate("Nope")
        with pytest.raises(SglNameError):
            registry.action("Nope")

    def test_copy_is_independent(self):
        registry = FunctionRegistry()
        registry.register_constant("_X", 1)
        clone = registry.copy()
        clone.register_constant("_Y", 2)
        assert "_Y" not in registry.constants


class TestSpecWrappers:
    def test_aggregate_requires_exactly_one_impl(self):
        spec = SqlAggregateSpec(
            where=(),
            outputs=(
                __import__(
                    "repro.sgl.sqlspec", fromlist=["AggOutput"]
                ).AggOutput("count", None, "c"),
            ),
        )
        with pytest.raises(SglTypeError):
            AggregateFunction("F", ("u",))
        with pytest.raises(SglTypeError):
            AggregateFunction(
                "F", ("u",), spec=spec, native=lambda *a: 0
            )

    def test_action_requires_exactly_one_impl(self):
        with pytest.raises(SglTypeError):
            ActionFunction("F", ("u",))
        with pytest.raises(SglTypeError):
            ActionFunction(
                "F", ("u",),
                spec=SqlActionSpec(where=(), effects={}),
                native=lambda *a: [],
            )

    def test_native_aggregate_runs_in_scripts(self, schema):
        from repro.sgl.interp import Interpreter
        from repro.sgl.parser import parse_script
        from tests.conftest import make_env

        registry = FunctionRegistry()
        registry.register_native_aggregate(
            "Population", ("u",), lambda args, rows, ctx: len(rows)
        )
        registry.register_sql(
            "function Tag(u) returns SELECT e.key, 1 AS damage "
            "FROM E e WHERE e.key = u.key;"
        )
        env = make_env(schema, n=5)
        script = parse_script(
            "main(u) { if Population(u) = 5 then perform Tag(u) }"
        )
        result = Interpreter(script, registry).run_unit(
            env.rows[0], env, lambda row, i: 0
        )
        assert len(result) == 1
