"""The on-disk record format: every way a crashed writer leaves a tail.

A record is either wholly valid (CRC over everything after the record
magic) or detectably torn; :func:`iter_records` must surface each
corruption signature as :class:`TornTailError` carrying the offset
where the valid prefix ends -- never yield a half record, never raise
anything less specific.
"""

import io
import struct

import pytest

from repro.persist.framing import (
    DEFAULT_MAX_PAYLOAD,
    FILE_HEADER,
    FILE_MAGIC,
    FORMAT_VERSION,
    REC_DELTA,
    REC_MAGIC,
    REC_META,
    REC_SNAPSHOT,
    REC_STATE,
    RECORD_HEADER_SIZE,
    LogFormatError,
    TornTailError,
    check_file_header,
    encode_record,
    iter_records,
)


def log_bytes(*records):
    return FILE_HEADER + b"".join(records)


def scan(data, **kwargs):
    return list(iter_records(io.BytesIO(data), **kwargs))


class TestEncode:
    def test_roundtrip_all_types(self):
        records = [
            encode_record(REC_META, 0, b"meta"),
            encode_record(REC_SNAPSHOT, 1, b"snap" * 10),
            encode_record(REC_DELTA, 2, b""),
            encode_record(REC_STATE, 2, b"\x00\xff" * 5),
        ]
        out = scan(log_bytes(*records))
        assert [(r.rtype, r.epoch, r.payload) for r in out] == [
            (REC_META, 0, b"meta"),
            (REC_SNAPSHOT, 1, b"snap" * 10),
            (REC_DELTA, 2, b""),
            (REC_STATE, 2, b"\x00\xff" * 5),
        ]
        # offsets chain: each record starts where the previous ended
        assert out[0].offset == len(FILE_HEADER)
        for prev, rec in zip(out, out[1:]):
            assert rec.offset == prev.end
        assert out[-1].end == len(log_bytes(*records))

    def test_header_size_matches_layout(self):
        rec = encode_record(REC_STATE, 7, b"xy")
        assert len(rec) == RECORD_HEADER_SIZE + 2
        assert rec[:2] == REC_MAGIC

    def test_unknown_type_rejected_at_encode(self):
        with pytest.raises(ValueError, match="unknown record type"):
            encode_record(99, 0, b"")

    def test_negative_epoch_roundtrips(self):
        # NO_REPLICA (-1) stamps pre-first-epoch records; epoch is signed
        (rec,) = scan(log_bytes(encode_record(REC_META, -1, b"m")))
        assert rec.epoch == -1


class TestFileHeader:
    def test_good_header(self):
        check_file_header(FILE_HEADER)

    def test_short_file(self):
        with pytest.raises(LogFormatError, match="not a complete"):
            check_file_header(FILE_MAGIC)

    def test_bad_magic(self):
        with pytest.raises(LogFormatError, match="bad magic"):
            check_file_header(b"NOTALOG!" + FILE_HEADER[8:])

    def test_future_version(self):
        bad = FILE_MAGIC + bytes([FORMAT_VERSION + 1]) + b"\x00" * 7
        with pytest.raises(LogFormatError, match="version"):
            check_file_header(bad)


class TestTornTail:
    """Each corruption signature -> TornTailError at the valid prefix."""

    def torn_offset(self, data, **kwargs):
        fh = io.BytesIO(data)
        seen = []
        with pytest.raises(TornTailError) as err:
            for rec in iter_records(fh, **kwargs):
                seen.append(rec)
        return seen, err.value

    def test_partial_header(self):
        whole = encode_record(REC_STATE, 1, b"ok")
        partial = encode_record(REC_STATE, 2, b"torn")[: RECORD_HEADER_SIZE - 4]
        seen, err = self.torn_offset(log_bytes(whole, partial))
        assert len(seen) == 1  # the whole record still comes through
        assert err.offset == len(FILE_HEADER) + len(whole)
        assert "partial record header" in err.reason

    def test_partial_payload(self):
        whole = encode_record(REC_STATE, 1, b"ok")
        torn = encode_record(REC_SNAPSHOT, 2, b"x" * 100)[:-60]
        seen, err = self.torn_offset(log_bytes(whole, torn))
        assert len(seen) == 1
        assert err.offset == len(FILE_HEADER) + len(whole)
        assert "partial payload" in err.reason

    def test_crc_mismatch(self):
        rec = bytearray(encode_record(REC_STATE, 1, b"payload!"))
        rec[-3] ^= 0xFF  # flip a payload byte; CRC no longer matches
        seen, err = self.torn_offset(log_bytes(bytes(rec)))
        assert seen == []
        assert err.offset == len(FILE_HEADER)
        assert "CRC mismatch" in err.reason

    def test_bad_record_magic(self):
        rec = bytearray(encode_record(REC_STATE, 1, b"p"))
        rec[0] ^= 0xFF
        _, err = self.torn_offset(log_bytes(bytes(rec)))
        assert "bad record magic" in err.reason

    def test_unknown_record_type(self):
        # corrupt the type byte AND fix nothing else: the type check
        # fires before the CRC is even computed
        rec = bytearray(encode_record(REC_STATE, 1, b"p"))
        rec[2] = 200
        _, err = self.torn_offset(log_bytes(bytes(rec)))
        assert "unknown record type 200" in err.reason

    def test_absurd_declared_length_is_refused_not_allocated(self):
        # a corrupt length field must never trigger the allocation it
        # advertises -- same guard as the wire transport's max_frame
        header = struct.pack(
            ">2sBqII", REC_MAGIC, REC_STATE, 1, DEFAULT_MAX_PAYLOAD + 1, 0
        )
        _, err = self.torn_offset(log_bytes(header))
        assert "declares a" in err.reason

    def test_empty_log_is_whole(self):
        assert scan(log_bytes()) == []
