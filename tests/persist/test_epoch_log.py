"""EpochLogWriter/Reader and EpochHistory: replay is bit-exact.

Unit-level: hand-built rows and :class:`ReplicaDelta` patches drive the
writer's delta-vs-checkpoint decision, the reader's replay, and the
spectator history's checkpoint/trim/reconstruct logic -- asserting rows
*and row order* at every epoch, the contract everything downstream
(time travel, crash recovery) leans on.
"""

import logging

import pytest

from repro.env.sharding import NO_REPLICA, ReplicaDelta
from repro.persist import (
    REC_DELTA,
    REC_META,
    REC_SNAPSHOT,
    REC_STATE,
    EpochHistory,
    EpochLogError,
    EpochLogReader,
    EpochLogWriter,
    read_state_file,
    truncate_torn_tail,
    write_state_file,
)

SHARD_CONF = ("key", 1, None)


def rows_at(epoch, n=6):
    """Deterministic tiny table: hp decays per epoch, rows keyed 0..n-1."""
    return [{"key": k, "hp": 100 - epoch * (k + 1)} for k in range(n)]


def delta_between(base_epoch, epoch, n=6):
    """The sparse patch taking rows_at(base_epoch) to rows_at(epoch)."""
    return ReplicaDelta(
        base_epoch=base_epoch,
        epoch=epoch,
        new_size=n,
        updated=[
            (k, {"hp": 100 - epoch * (k + 1)}) for k in range(n)
        ],
    )


def write_epochs(path, epochs, *, checkpoint_every=64, state=False, **kw):
    """A log of chained epochs [1..epochs] with per-epoch state dicts."""
    with EpochLogWriter(
        path, checkpoint_every=checkpoint_every, **kw
    ) as writer:
        writer.append_meta({"key_attr": "key", "seed": 0})
        for epoch in range(1, epochs + 1):
            writer.append_epoch(
                epoch,
                rows_at(epoch),
                SHARD_CONF,
                delta=None if epoch == 1 else delta_between(epoch - 1, epoch),
                state={"epoch": epoch} if state else None,
            )
        stats = writer.stats
    return stats


class TestWriter:
    def test_delta_when_chained_snapshot_when_due(self, tmp_path):
        path = tmp_path / "log"
        stats = write_epochs(path, 7, checkpoint_every=3)
        # epochs 1,4,7 checkpoint (cadence 3); 2,3,5,6 chain as deltas
        assert stats.snapshot_records == 3
        assert stats.delta_records == 4
        assert stats.last_epoch == 7
        assert stats.last_checkpoint_epoch == 7
        with EpochLogReader(path) as reader:
            kinds = [
                (rtype, epoch) for _, _, rtype, epoch in reader.index
            ]
        assert kinds == [
            (REC_META, 0),
            (REC_SNAPSHOT, 1),
            (REC_DELTA, 2),
            (REC_DELTA, 3),
            (REC_SNAPSHOT, 4),
            (REC_DELTA, 5),
            (REC_DELTA, 6),
            (REC_SNAPSHOT, 7),
        ]

    def test_unchained_delta_downgrades_to_snapshot(self, tmp_path):
        path = tmp_path / "log"
        with EpochLogWriter(path, checkpoint_every=100) as writer:
            writer.append_epoch(1, rows_at(1), SHARD_CONF)
            # a delta whose base is not the last logged epoch is unusable
            writer.append_epoch(
                3, rows_at(3), SHARD_CONF, delta=delta_between(2, 3)
            )
            assert writer.stats.snapshot_records == 2
            assert writer.stats.delta_records == 0

    def test_state_record_follows_its_epoch_record(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 3, state=True)
        with EpochLogReader(path) as reader:
            kinds = [(rtype, epoch) for _, _, rtype, epoch in reader.index]
        # durable state implies durable epoch: STATE always after its
        # SNAPSHOT/DELTA at the same epoch
        assert kinds == [
            (REC_META, 0),
            (REC_SNAPSHOT, 1),
            (REC_STATE, 1),
            (REC_DELTA, 2),
            (REC_STATE, 2),
            (REC_DELTA, 3),
            (REC_STATE, 3),
        ]

    def test_flush_makes_enqueued_equal_written(self, tmp_path):
        path = tmp_path / "log"
        with EpochLogWriter(path) as writer:
            writer.append_epoch(1, rows_at(1), SHARD_CONF)
            writer.flush()
            assert writer.stats.bytes_written == writer.stats.bytes_enqueued

    def test_background_write_failure_is_remembered(self, tmp_path):
        path = tmp_path / "log"
        writer = EpochLogWriter(path)
        writer.append_epoch(1, rows_at(1), SHARD_CONF)
        writer.flush()
        writer._fh.close()  # yank the file out from under the thread
        writer.append_epoch(2, rows_at(2), SHARD_CONF)
        with pytest.raises(EpochLogError, match="write failed|flush failed"):
            writer.flush()
            writer.append_epoch(3, rows_at(3), SHARD_CONF)
        with pytest.raises(EpochLogError):
            writer.close()

    def test_append_after_close_refused(self, tmp_path):
        path = tmp_path / "log"
        writer = EpochLogWriter(path)
        writer.close()
        with pytest.raises(EpochLogError, match="closed"):
            writer.append_epoch(1, rows_at(1), SHARD_CONF)
        writer.close()  # idempotent

    def test_knob_validation(self, tmp_path):
        with pytest.raises(ValueError, match="checkpoint_every"):
            EpochLogWriter(tmp_path / "a", checkpoint_every=0)
        with pytest.raises(ValueError, match="fsync policy"):
            EpochLogWriter(tmp_path / "b", fsync="sometimes")

    @pytest.mark.parametrize("fsync", ["never", "checkpoint", "always"])
    @pytest.mark.parametrize("background", [True, False])
    def test_all_modes_produce_identical_logs(
        self, tmp_path, fsync, background
    ):
        path = tmp_path / "log"
        write_epochs(
            path, 5, checkpoint_every=2, fsync=fsync, background=background
        )
        with EpochLogReader(path) as reader:
            result = reader.replay()
        assert result.epoch == 5
        assert result.rows == rows_at(5)

    def test_resume_appends_to_existing_log(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 3, checkpoint_every=100)
        with EpochLogWriter(path, resume=True) as writer:
            # recovery's first act: a fresh checkpoint to chain from
            writer.append_epoch(
                3, rows_at(3), SHARD_CONF, force_snapshot=True
            )
            writer.append_epoch(
                4, rows_at(4), SHARD_CONF, delta=delta_between(3, 4)
            )
        with EpochLogReader(path) as reader:
            assert reader.last_epoch == 4
            assert reader.replay().rows == rows_at(4)
            # the pre-resume records are still there
            assert reader.meta() == {"key_attr": "key", "seed": 0}


class TestReader:
    def test_replay_every_epoch_bit_exact(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 9, checkpoint_every=4)
        with EpochLogReader(path) as reader:
            assert reader.first_epoch == 1
            assert reader.last_epoch == 9
            for epoch in range(1, 10):
                result = reader.replay(upto=epoch)
                assert result.epoch == epoch
                assert result.rows == rows_at(epoch)  # values AND order
                assert result.shard_conf == SHARD_CONF
                # bounded work: one snapshot + at most cadence-1 deltas
                assert result.applied <= 4

    def test_replay_states_sweeps_whole_history(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 6, checkpoint_every=3)
        with EpochLogReader(path) as reader:
            seen = [
                (epoch, list(rows))
                for epoch, rows in reader.replay_states()
            ]
        assert [e for e, _ in seen] == list(range(1, 7))
        for epoch, rows in seen:
            assert rows == rows_at(epoch)

    def test_last_state_respects_upto(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 5, state=True)
        with EpochLogReader(path) as reader:
            assert reader.last_state() == (5, {"epoch": 5})
            assert reader.last_state(upto=3) == (3, {"epoch": 3})
            assert reader.last_state(upto=0) is None

    def test_replay_before_first_checkpoint_refused(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 3)
        with EpochLogReader(path) as reader:
            with pytest.raises(EpochLogError, match="no checkpoint"):
                reader.replay(upto=0)

    def test_missing_key_attr_needs_explicit_one(self, tmp_path):
        path = tmp_path / "log"
        with EpochLogWriter(path) as writer:  # no meta record
            writer.append_epoch(1, rows_at(1), SHARD_CONF)
        with EpochLogReader(path) as reader:
            with pytest.raises(EpochLogError, match="no key_attr"):
                reader.replay()
            assert reader.replay(key_attr="key").rows == rows_at(1)

    def test_empty_log_properties(self, tmp_path):
        path = tmp_path / "log"
        with EpochLogWriter(path):
            pass
        with EpochLogReader(path) as reader:
            assert reader.index == []
            assert reader.meta() is None
            assert reader.first_epoch == NO_REPLICA
            assert reader.last_epoch == NO_REPLICA
            assert reader.last_state() is None


class TestTruncateTornTail:
    def test_whole_log_untouched(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 3)
        size = path.stat().st_size
        assert truncate_torn_tail(path) == 0
        assert path.stat().st_size == size

    def test_partial_tail_record_dropped_loudly(self, tmp_path, caplog):
        path = tmp_path / "log"
        write_epochs(path, 3, checkpoint_every=100)
        whole = path.stat().st_size
        with open(path, "ab") as fh:
            fh.write(b"\xc5\x1e\x01partial...")  # a record cut mid-write
        with caplog.at_level(logging.WARNING, logger="repro.persist"):
            dropped = truncate_torn_tail(path)
        assert dropped == 13
        assert path.stat().st_size == whole
        assert any("torn tail" in r.message for r in caplog.records)
        # the surviving prefix replays cleanly
        with EpochLogReader(path) as reader:
            assert reader.replay().rows == rows_at(3)

    def test_corrupt_middle_byte_truncates_to_valid_prefix(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 4, checkpoint_every=2)
        with EpochLogReader(path) as reader:
            # corrupt the epoch-3 record: everything after it must go
            offset = next(
                off
                for off, _, rtype, epoch in reader.index
                if epoch == 3 and rtype in (REC_SNAPSHOT, REC_DELTA)
            )
        with open(path, "r+b") as fh:
            fh.seek(offset + 25)
            fh.write(b"\xff")
        assert truncate_torn_tail(path) > 0
        with EpochLogReader(path) as reader:
            assert reader.last_epoch == 2
            assert reader.replay().rows == rows_at(2)

    def test_sub_header_file_truncated_to_empty(self, tmp_path):
        path = tmp_path / "log"
        path.write_bytes(b"REPRO")  # died before the header landed
        assert truncate_torn_tail(path) == 5
        assert path.stat().st_size == 0


class TestStateFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "save"
        state = {"kwargs": {"n_units": 8}, "rows": rows_at(2)}
        write_state_file(path, 2, state)
        assert read_state_file(path) == (2, state)

    def test_truncated_save_never_half_loads(self, tmp_path):
        path = tmp_path / "save"
        write_state_file(path, 2, {"rows": rows_at(2)})
        data = path.read_bytes()
        path.write_bytes(data[:-7])
        with pytest.raises(Exception, match="torn log tail"):
            read_state_file(path)

    def test_non_save_record_rejected(self, tmp_path):
        path = tmp_path / "log"
        write_epochs(path, 1)
        with pytest.raises(EpochLogError, match="not a save file"):
            read_state_file(path)


class TestEpochHistory:
    def feed(self, history, first, last, *, snapshot_first=True):
        """Drive the history like a replica feed over [first..last]."""
        for epoch in range(first, last + 1):
            if epoch == first and snapshot_first:
                history.record_snapshot(epoch, rows_at(epoch))
            else:
                history.record_delta(
                    delta_between(epoch - 1, epoch), rows_at(epoch)
                )

    def test_reconstruct_every_epoch(self):
        history = EpochHistory("key", checkpoint_every=3, retain=100)
        self.feed(history, 1, 10)
        assert history.span() == (1, 10)
        for epoch in range(1, 11):
            assert history.covers(epoch)
            assert history.reconstruct(epoch) == rows_at(epoch)

    def test_trim_keeps_span_reconstructible(self):
        history = EpochHistory("key", checkpoint_every=2, retain=4)
        self.feed(history, 1, 12)
        first, last = history.span()
        assert last == 12
        # retention is approximate up to the checkpoint boundary, but
        # never narrower than asked and the whole span reconstructs
        assert last - first + 1 >= 4
        assert first > 1  # old epochs actually evicted
        for epoch in range(first, last + 1):
            assert history.reconstruct(epoch) == rows_at(epoch)
        assert not history.covers(first - 1)
        with pytest.raises(KeyError, match="not retained"):
            history.reconstruct(first - 1)

    def test_backward_jump_clears_superseded_timeline(self):
        history = EpochHistory("key", checkpoint_every=2, retain=100)
        self.feed(history, 1, 6)
        # the coordinator restored epoch 3 and re-published: the feed
        # jumps backwards with a snapshot
        history.record_snapshot(3, rows_at(3))
        assert history.span() == (3, 3)
        assert not history.covers(5)
        self.feed(history, 4, 5, snapshot_first=False)
        assert history.span() == (3, 5)
        assert history.reconstruct(4) == rows_at(4)

    def test_knob_validation(self):
        with pytest.raises(ValueError, match="checkpoint_every"):
            EpochHistory("key", checkpoint_every=0)
        with pytest.raises(ValueError, match="retain"):
            EpochHistory("key", retain=0)
