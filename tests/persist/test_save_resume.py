"""Save -> resume -> finish is bit-identical to never having stopped.

The engine's rng is counter-mode, so rows + tick number fully determine
the future; a save file (or a replayed log) restores exactly that.  The
drill runs across every parallelism mode and through the save/load
boundary in both directions -- performance knobs may change freely at
the boundary without touching the trajectory, the same guarantee the
live engine makes for mid-run reconfiguration.
"""

import pytest

from repro.api import run_battle
from repro.game.battle import BattleSimulation
from repro.persist import EpochLogError

N_UNITS = 48
TOTAL = 10
SPLIT = 4
BASE = dict(density=0.02, seed=29)

MODES = {
    "serial": {},
    "threads": dict(parallelism="threads", num_shards=2),
    "processes": dict(parallelism="processes", num_shards=2, max_workers=2),
}


@pytest.fixture(scope="module")
def reference():
    with BattleSimulation(N_UNITS, **BASE) as sim:
        summary = sim.run(TOTAL)
        return sim.state_signature(), summary


def assert_matches_reference(sim, reference):
    ref_signature, ref_summary = reference
    assert sim.state_signature() == ref_signature
    assert sim.summary.ticks == ref_summary.ticks
    assert sim.summary.deaths == ref_summary.deaths
    assert sim.summary.resurrections == ref_summary.resurrections
    assert sim.summary.total_damage == ref_summary.total_damage
    assert sim.summary.total_healing == ref_summary.total_healing


@pytest.mark.parametrize("mode", MODES)
def test_save_resume_equivalence(tmp_path, reference, mode):
    """Run SPLIT ticks under *mode*, save, resume serially, finish."""
    save = tmp_path / "battle.save"
    with BattleSimulation(N_UNITS, **BASE, **MODES[mode]) as sim:
        sim.run(SPLIT)
        sim.save(save)
    # resume with the parallelism knobs stripped back to serial: the
    # saved configuration is a default, not a straitjacket
    overrides = (
        dict(parallelism="serial", num_shards=1, max_workers=None)
        if mode != "serial"
        else {}
    )
    with BattleSimulation.load(save, **overrides) as sim:
        assert sim.summary.ticks == SPLIT
        assert sim.engine.tick_count == SPLIT
        sim.run(TOTAL - SPLIT)
        assert_matches_reference(sim, reference)


@pytest.mark.parametrize("mode", MODES)
def test_resume_into_mode(tmp_path, reference, mode):
    """Save serially, resume *into* each parallelism mode."""
    save = tmp_path / "battle.save"
    with BattleSimulation(N_UNITS, **BASE) as sim:
        sim.run(SPLIT)
        sim.save(save)
    with BattleSimulation.load(save, **MODES[mode]) as sim:
        sim.run(TOTAL - SPLIT)
        assert_matches_reference(sim, reference)


def test_run_battle_resume_from(tmp_path, reference):
    save = tmp_path / "battle.save"
    with BattleSimulation(N_UNITS, **BASE) as sim:
        sim.run(SPLIT)
        sim.save(save)
    summary = run_battle(None, TOTAL - SPLIT, resume_from=str(save))
    ref_summary = reference[1]
    assert summary.ticks == ref_summary.ticks
    assert summary.deaths == ref_summary.deaths
    assert summary.total_damage == ref_summary.total_damage
    # the resumed run only ran its own ticks' stats
    assert len(summary.tick_stats) == TOTAL - SPLIT


def test_run_battle_requires_units_or_save():
    with pytest.raises(ValueError, match="n_units"):
        run_battle(None, 5)


def test_save_mid_run_with_epoch_log_attached(tmp_path, reference):
    """save() and the epoch log coexist; both restore paths agree."""
    log = tmp_path / "battle.log"
    save = tmp_path / "battle.save"
    with BattleSimulation(
        N_UNITS, **BASE, epoch_log=str(log), epoch_log_checkpoint_every=3
    ) as sim:
        sim.run(SPLIT)
        sim.save(save)
    with BattleSimulation.load(save) as from_save:
        from_save.run(TOTAL - SPLIT)
        assert_matches_reference(from_save, reference)
    with BattleSimulation.recover(log, resume_log=False) as from_log:
        assert from_log.summary.ticks == SPLIT
        from_log.run(TOTAL - SPLIT)
        assert_matches_reference(from_log, reference)


def test_resumed_run_can_start_its_own_log(tmp_path, reference):
    from repro.persist import EpochLogReader

    save = tmp_path / "battle.save"
    log = tmp_path / "resumed.log"
    with BattleSimulation(N_UNITS, **BASE) as sim:
        sim.run(SPLIT)
        sim.save(save)
    with BattleSimulation.load(save, epoch_log=str(log)) as sim:
        sim.run(TOTAL - SPLIT)
        assert_matches_reference(sim, reference)
        final_rows = list(sim.engine.env.rows)
    with EpochLogReader(log) as reader:
        # the log opens at the resumed epoch, not the scenario's start
        assert reader.first_epoch == SPLIT + 1
        result = reader.replay()
    assert result.epoch == TOTAL + 1
    assert result.rows == final_rows


def test_wrong_file_kinds_are_refused(tmp_path):
    save = tmp_path / "battle.save"
    with BattleSimulation(16, density=0.02, seed=1) as sim:
        sim.tick()
        sim.save(save)
        payload_log = tmp_path / "battle.log"
        sim.attach_epoch_log(str(payload_log))
        sim.tick()
    # a save file is not an epoch log and vice versa
    with pytest.raises(EpochLogError, match="not a save file"):
        BattleSimulation.load(payload_log)
    with pytest.raises(EpochLogError):
        BattleSimulation.recover(save, resume_log=False)
