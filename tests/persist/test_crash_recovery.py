"""Crash drills: kill -9 a writer mid-record, SIGKILL a coordinator.

Real subprocesses, real SIGKILL -- the log must come back with its torn
tail truncated (loudly) and the recovered run must be bit-identical to
one that never crashed.  ``fsync="always"`` is the drill configuration:
every record is durable the moment ``append`` returns, so the recovered
epoch is exactly the pre-crash epoch.
"""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.game.battle import BattleSimulation
from repro.persist import EpochLogReader, truncate_torn_tail

SRC = str(Path(__file__).resolve().parents[2] / "src")


def child_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def run_child(code, *args):
    return subprocess.Popen(
        [sys.executable, "-c", textwrap.dedent(code), *map(str, args)],
        env=child_env(),
        stdout=subprocess.PIPE,
        text=True,
    )


WRITER_CHILD = """
import os, signal, sys
from repro.persist import EpochLogWriter, encode_record, REC_STATE

path, epochs = sys.argv[1], int(sys.argv[2])
rows_at = lambda e: [{"key": k, "hp": 100 - e * (k + 1)} for k in range(6)]
writer = EpochLogWriter(
    path, checkpoint_every=3, fsync="always", background=False
)
writer.append_meta({"key_attr": "key"})
for epoch in range(1, epochs + 1):
    from repro.env.sharding import ReplicaDelta
    delta = None
    if epoch > 1:
        delta = ReplicaDelta(
            base_epoch=epoch - 1, epoch=epoch, new_size=6,
            updated=[(k, {"hp": 100 - epoch * (k + 1)}) for k in range(6)],
        )
    writer.append_epoch(epoch, rows_at(epoch), ("key", 1, None), delta=delta)
# die mid-record: half of the next epoch's bytes land, then kill -9 --
# exactly what a power cut or OOM kill during the write leaves behind
partial = encode_record(REC_STATE, epochs + 1, b"x" * 64)
writer._fh.write(partial[: len(partial) // 2])
writer._fh.flush()
os.fsync(writer._fh.fileno())
os.kill(os.getpid(), signal.SIGKILL)
"""


class TestWriterKilledMidRecord:
    def test_torn_tail_truncated_and_replay_reaches_precrash_epoch(
        self, tmp_path
    ):
        path = tmp_path / "log"
        epochs = 7
        proc = run_child(WRITER_CHILD, path, epochs)
        proc.communicate(timeout=60)
        assert proc.returncode == -signal.SIGKILL
        # the tail holds half a record; recovery drops it, keeps the rest
        dropped = truncate_torn_tail(path)
        assert dropped > 0
        assert truncate_torn_tail(path) == 0  # idempotent
        with EpochLogReader(path) as reader:
            result = reader.replay()
        assert result.epoch == epochs  # every durable epoch survived
        assert result.rows == [
            {"key": k, "hp": 100 - epochs * (k + 1)} for k in range(6)
        ]


BATTLE_CHILD = """
import sys, time
from repro.game.battle import BattleSimulation

log, ticks = sys.argv[1], int(sys.argv[2])
sim = BattleSimulation(
    56, density=0.02, seed=11,
    epoch_log=log, epoch_log_checkpoint_every=4, epoch_log_fsync="always",
)
for t in range(ticks):
    sim.tick()
    # the background writer makes durability eventual; the drill pins
    # it down so a printed tick is a provably durable tick
    sim.engine.epoch_log.flush()
    print(f"TICK {t + 1}", flush=True)
    time.sleep(0.05)  # leave the parent a window to aim SIGKILL into
print("DONE", flush=True)
"""

TOTAL_TICKS = 12
KILL_AFTER = 5


class TestCoordinatorSigkill:
    @pytest.fixture(scope="class")
    def reference(self):
        """The uninterrupted run the recovered one must reproduce."""
        with BattleSimulation(56, density=0.02, seed=11) as sim:
            summary = sim.run(TOTAL_TICKS)
            return sim.state_signature(), summary

    def kill_mid_battle(self, log_path):
        proc = run_child(BATTLE_CHILD, log_path, TOTAL_TICKS)
        try:
            deadline = time.monotonic() + 60
            for line in proc.stdout:
                if line.strip() == f"TICK {KILL_AFTER}":
                    break
                assert time.monotonic() < deadline, "child never progressed"
            proc.kill()  # SIGKILL: no atexit, no flush, no goodbye
            proc.wait(timeout=60)
        finally:
            proc.stdout.close()
            if proc.poll() is None:
                proc.kill()
        assert proc.returncode == -signal.SIGKILL

    def test_recovered_trajectory_bit_identical(self, tmp_path, reference):
        ref_signature, ref_summary = reference
        log = tmp_path / "battle.log"
        self.kill_mid_battle(log)
        with BattleSimulation.recover(log) as sim:
            recovered = sim.summary.ticks
            # every fsynced tick survived the kill; the child confirmed
            # KILL_AFTER ticks and may have completed a few more
            assert KILL_AFTER <= recovered < TOTAL_TICKS
            assert sim.engine.tick_count == recovered
            sim.run(TOTAL_TICKS - recovered)
            assert sim.state_signature() == ref_signature
            assert sim.summary.ticks == ref_summary.ticks
            assert sim.summary.deaths == ref_summary.deaths
            assert sim.summary.resurrections == ref_summary.resurrections
            assert sim.summary.total_damage == ref_summary.total_damage
            assert sim.summary.total_healing == ref_summary.total_healing
            final_rows = list(sim.engine.env.rows)
        # resume_log (the default) kept logging: the log now replays all
        # the way to the finished battle, post-crash ticks included
        with EpochLogReader(log) as reader:
            assert reader.last_epoch == TOTAL_TICKS + 1
            final = reader.replay()
        assert final.epoch == TOTAL_TICKS + 1
        assert final.rows == final_rows  # values AND row order

    def test_recover_without_resume_log_leaves_log_untouched(
        self, tmp_path, reference
    ):
        ref_signature, _ = reference
        log = tmp_path / "battle.log"
        self.kill_mid_battle(log)
        truncate_torn_tail(log)
        size = log.stat().st_size
        with BattleSimulation.recover(log, resume_log=False) as sim:
            recovered = sim.summary.ticks
            sim.run(TOTAL_TICKS - recovered)
            assert sim.state_signature() == ref_signature
        assert log.stat().st_size == size
