"""The public facade: compile, explain, run."""

import pytest

import repro
from repro.api import compile_script, explain_script, run_battle
from repro.game.scripts import FIGURE_3_SCRIPT, build_registry
from repro.sgl.errors import SglNameError


class TestCompileScript:
    def test_valid(self, registry, schema):
        script = compile_script(
            "main(u) { perform UseWeapon(u) }", registry, schema
        )
        assert script.main.name == "main"

    def test_invalid_rejected(self, registry):
        with pytest.raises(SglNameError):
            compile_script("main(u) { perform Nothing(u) }", registry)

    def test_normalized_output(self, registry):
        from repro.sgl.normalize import is_normal_form

        script = compile_script(
            "main(u) { if CountEnemiesInRange(u, 5) > 0 then "
            "perform UseWeapon(u) }",
            registry, normalize=True,
        )
        assert is_normal_form(script, registry)


class TestExplainScript:
    def test_figure_3(self):
        result = explain_script(FIGURE_3_SCRIPT, build_registry())
        assert "⊕" in result.plan
        assert result.aggregate_kinds["CountEnemiesInRange"] == "divisible"
        assert result.aggregate_kinds["NearestEnemy"] == "nearest"
        assert "divisible" in str(result)


class TestRunBattle:
    def test_returns_summary(self):
        summary = run_battle(30, ticks=3, mode="indexed", seed=1)
        assert summary.ticks == 3
        assert summary.total_time > 0

    def test_naive_mode(self):
        summary = run_battle(20, ticks=2, mode="naive", seed=1)
        assert summary.ticks == 2

    def test_index_maintenance_knob(self):
        # all three policies run and agree on summary-level outcomes
        summaries = {
            policy: run_battle(
                24, ticks=3, seed=5, index_maintenance=policy
            )
            for policy in ("rebuild", "incremental", "auto")
        }
        baseline = summaries["rebuild"]
        for summary in summaries.values():
            assert summary.ticks == 3
            assert summary.total_damage == baseline.total_damage
            assert summary.deaths == baseline.deaths

    def test_invalid_index_maintenance_rejected(self):
        with pytest.raises(ValueError):
            run_battle(10, ticks=1, index_maintenance="bogus")


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None
