"""Layered range trees for orthogonal range queries (Section 5.3.1).

Two implementations:

* :class:`RangeTree` -- a general d-dimensional layered range tree.
  Each level is a balanced tree over one attribute whose canonical nodes
  hold a (d-1)-dimensional subtree; the last level is a sorted array.
  Build O(n log^{d-1} n), query O(log^d n + k).

* :class:`LayeredRangeTree2D` -- the 2-d special case with optional
  **fractional cascading** [Chazelle & Guibas]: every canonical x-node
  stores its y-sorted array together with *bridge* pointers into its
  children's arrays, so the y-range is located with a single binary
  search at the root and O(1) work per visited node afterwards.  This is
  the paper's O(log^{d-1} n + k) query structure, and the ablation bench
  A-FC compares cascading on/off.

Both support enumeration and counting.  The divisible-aggregate variant
of Figure 8 (aggregates at the leaves instead of items) lives in
:mod:`repro.indexes.agg_range_tree` and shares the 2-d skeleton.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Callable, Sequence


# ---------------------------------------------------------------------------
# General d-dimensional range tree
# ---------------------------------------------------------------------------


class _DNode:
    __slots__ = ("min_key", "max_key", "left", "right", "sub", "leaf_entries")

    def __init__(self, min_key, max_key):
        self.min_key = min_key
        self.max_key = max_key
        self.left: "_DNode | None" = None
        self.right: "_DNode | None" = None
        self.sub: object = None  # next-level tree or sorted array
        self.leaf_entries: list | None = None


class RangeTree:
    """d-dimensional layered range tree over ``(coords, item)`` entries.

    *coords* are tuples of length d; queries give per-dimension closed
    intervals ``(lo, hi)`` (use ±inf for open sides).
    """

    def __init__(
        self,
        coords: Sequence[Sequence[float]],
        items: Sequence[object] | None = None,
    ):
        if items is None:
            items = list(range(len(coords)))
        if len(items) != len(coords):
            raise ValueError("coords and items must have equal length")
        self._size = len(coords)
        entries = [(tuple(c), item) for c, item in zip(coords, items)]
        self.dims = len(entries[0][0]) if entries else 0
        self._root = self._build(entries, dim=0) if entries else None

    def __len__(self) -> int:
        return self._size

    def _build(self, entries: list, dim: int):
        last = dim == self.dims - 1
        entries = sorted(entries, key=lambda e: e[0][dim])
        if last:
            return entries  # sorted array level
        return self._build_node(entries, dim)

    def _build_node(self, entries: list, dim: int) -> _DNode:
        node = _DNode(entries[0][0][dim], entries[-1][0][dim])
        node.sub = self._build(entries, dim + 1)
        if len(entries) > 1:
            mid = len(entries) // 2
            node.left = self._build_node(entries[:mid], dim)
            node.right = self._build_node(entries[mid:], dim)
        else:
            node.leaf_entries = entries
        return node

    # -- queries --------------------------------------------------------------

    def enumerate(self, box: Sequence[tuple[float, float]]) -> list[object]:
        """All items whose coords fall in the closed *box*."""
        if self._root is None:
            return []
        if len(box) != self.dims:
            raise ValueError(f"box must have {self.dims} intervals")
        out: list[object] = []
        self._query_level(self._root, box, 0, out.append)
        return out

    def count(self, box: Sequence[tuple[float, float]]) -> int:
        return len(self.enumerate(box))

    def _query_level(self, level, box, dim: int, emit) -> None:
        """Query one layer: a sorted array (last dim) or a tree of nodes."""
        if dim == self.dims - 1:
            lo, hi = box[dim]
            start = bisect_left(level, lo, key=lambda e: e[0][dim])
            stop = bisect_right(level, hi, key=lambda e: e[0][dim])
            for _, item in level[start:stop]:
                emit(item)
            return
        self._query_node(level, box, dim, emit)

    def _query_node(
        self,
        node: _DNode,
        box: Sequence[tuple[float, float]],
        dim: int,
        emit: Callable[[object], None],
    ) -> None:
        lo, hi = box[dim]
        if node.max_key < lo or node.min_key > hi:
            return
        if lo <= node.min_key and node.max_key <= hi:
            # canonical node: restrict the remaining dims in its subtree
            self._query_level(node.sub, box, dim + 1, emit)
            return
        if node.left is None:
            coords, item = node.leaf_entries[0]
            if all(
                box[d][0] <= coords[d] <= box[d][1]
                for d in range(dim, self.dims)
            ):
                emit(item)
            return
        self._query_node(node.left, box, dim, emit)
        self._query_node(node.right, box, dim, emit)


# ---------------------------------------------------------------------------
# 2-d layered range tree with fractional cascading
# ---------------------------------------------------------------------------


class _XNode:
    __slots__ = ("min_x", "max_x", "left", "right", "ys", "items",
                 "bridge_left", "bridge_right")

    def __init__(self):
        self.min_x = 0.0
        self.max_x = 0.0
        self.left: "_XNode | None" = None
        self.right: "_XNode | None" = None
        self.ys: list[float] = []
        self.items: list[object] = []
        self.bridge_left: list[int] | None = None
        self.bridge_right: list[int] | None = None


class LayeredRangeTree2D:
    """2-d layered range tree; enumeration and counting.

    With ``cascade=True`` (default) child positions of the y-range are
    derived from bridge pointers instead of fresh binary searches,
    giving O(log n + k) enumeration and O(log n) counting.  With
    ``cascade=False`` every visited canonical node performs its own two
    binary searches -- the O(log² n) variant the paper improves upon.
    """

    def __init__(
        self,
        points: Sequence[tuple[float, float]],
        items: Sequence[object] | None = None,
        *,
        cascade: bool = True,
    ):
        if items is None:
            items = list(range(len(points)))
        if len(items) != len(points):
            raise ValueError("points and items must have equal length")
        self.cascade = cascade
        self._size = len(points)
        entries = sorted(
            ((float(x), float(y), item) for (x, y), item in zip(points, items)),
            key=lambda e: e[0],
        )
        self._root = self._build(entries) if entries else None

    def __len__(self) -> int:
        return self._size

    def _build(self, entries: list) -> _XNode:
        node = _XNode()
        node.min_x = entries[0][0]
        node.max_x = entries[-1][0]
        if len(entries) > 1:
            mid = len(entries) // 2
            node.left = self._build(entries[:mid])
            node.right = self._build(entries[mid:])
            node.ys, node.items = self._merge(node.left, node.right)
            if self.cascade:
                node.bridge_left = self._bridges(node.ys, node.left.ys)
                node.bridge_right = self._bridges(node.ys, node.right.ys)
        else:
            node.ys = [entries[0][1]]
            node.items = [entries[0][2]]
        return node

    @staticmethod
    def _merge(left: _XNode, right: _XNode) -> tuple[list[float], list[object]]:
        ys: list[float] = []
        items: list[object] = []
        i = j = 0
        ly, li, ry, ri = left.ys, left.items, right.ys, right.items
        while i < len(ly) and j < len(ry):
            if ly[i] <= ry[j]:
                ys.append(ly[i]); items.append(li[i]); i += 1
            else:
                ys.append(ry[j]); items.append(ri[j]); j += 1
        while i < len(ly):
            ys.append(ly[i]); items.append(li[i]); i += 1
        while j < len(ry):
            ys.append(ry[j]); items.append(ri[j]); j += 1
        return ys, items

    @staticmethod
    def _bridges(parent_ys: list[float], child_ys: list[float]) -> list[int]:
        """bridge[i] = first index j in child with child_ys[j] >= parent_ys[i].

        One extra slot maps the one-past-the-end position.
        """
        bridges = [0] * (len(parent_ys) + 1)
        j = 0
        for i, y in enumerate(parent_ys):
            while j < len(child_ys) and child_ys[j] < y:
                j += 1
            bridges[i] = j
        bridges[len(parent_ys)] = len(child_ys)
        return bridges

    # -- queries --------------------------------------------------------------

    def enumerate(self, xlo, xhi, ylo, yhi) -> list[object]:
        out: list[object] = []
        self._visit(xlo, xhi, ylo, yhi,
                    lambda node, plo, phi: out.extend(node.items[plo:phi]))
        return out

    def count(self, xlo, xhi, ylo, yhi) -> int:
        total = 0

        def add(node: _XNode, plo: int, phi: int) -> None:
            nonlocal total
            total += phi - plo

        self._visit(xlo, xhi, ylo, yhi, add)
        return total

    def _visit(
        self,
        xlo: float,
        xhi: float,
        ylo: float,
        yhi: float,
        report: Callable[[_XNode, int, int], None],
    ) -> None:
        """Invoke *report(node, plo, phi)* on every canonical node, where
        ``[plo, phi)`` is the y-range slice inside the node's y-array."""
        root = self._root
        if root is None or xlo > xhi or ylo > yhi:
            return
        plo = bisect_left(root.ys, ylo)
        phi = bisect_right(root.ys, yhi)

        def descend(node: _XNode, plo: int, phi: int) -> None:
            if node.max_x < xlo or node.min_x > xhi:
                return
            if xlo <= node.min_x and node.max_x <= xhi:
                if phi > plo:
                    report(node, plo, phi)
                return
            if node.left is None:
                return  # leaf outside the x-range edges
            if self.cascade:
                descend(node.left, node.bridge_left[plo], node.bridge_left[phi])
                descend(node.right, node.bridge_right[plo], node.bridge_right[phi])
            else:
                descend(node.left,
                        bisect_left(node.left.ys, ylo),
                        bisect_right(node.left.ys, yhi))
                descend(node.right,
                        bisect_left(node.right.ys, ylo),
                        bisect_right(node.right.ys, yhi))

        descend(root, plo, phi)
