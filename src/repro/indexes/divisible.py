"""Divisible aggregates (Definition 5.1) and moment accumulators.

An aggregate ``agg`` is *divisible* when ``agg(A \\ B)`` can be computed
from ``agg(A)`` and ``agg(B)`` for ``B ⊆ A`` -- sum, count, and all the
statistical moments qualify; min and max do not.  Divisible aggregates
are what make the prefix-aggregate range tree of Figure 8 possible: the
aggregate of any range ``[l, r]`` is ``f(prefix(r), prefix(l-1))``.

The battle simulation needs count, sum, avg (centroids), and stddev
(the knights' close-ranks density check), all of which derive from the
first two moments.  :class:`Moments` carries ``(count, Σv, Σv²)`` per
measure and supports the group operations (add element, merge, subtract)
required by Definition 5.1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

#: Aggregate names computable from :class:`Moments`.
MOMENT_AGGREGATES = frozenset({"count", "sum", "avg", "var", "stddev"})


@dataclass
class Moments:
    """Zeroth/first/second moments of a multiset of numbers.

    Forms a commutative group under :meth:`merge` / :meth:`subtract`
    (inverses exist because all three components are sums), which is
    exactly the divisibility property of Definition 5.1.
    """

    count: int = 0
    total: float = 0.0
    total_sq: float = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.total_sq += value * value

    def remove(self, value: float) -> None:
        """Inverse of :meth:`add` -- the element-wise divisibility op."""
        self.count -= 1
        self.total -= value
        self.total_sq -= value * value

    def merge(self, other: "Moments") -> "Moments":
        return Moments(
            self.count + other.count,
            self.total + other.total,
            self.total_sq + other.total_sq,
        )

    def subtract(self, other: "Moments") -> "Moments":
        """``self \\ other`` assuming *other* is a sub-multiset of self."""
        return Moments(
            self.count - other.count,
            self.total - other.total,
            self.total_sq - other.total_sq,
        )

    def copy(self) -> "Moments":
        return Moments(self.count, self.total, self.total_sq)

    # -- finalizers -----------------------------------------------------------

    def sum(self) -> float:
        return self.total

    def avg(self) -> float | None:
        return self.total / self.count if self.count else None

    def var(self) -> float | None:
        if not self.count:
            return None
        mean = self.total / self.count
        # numerical floor: catastrophic cancellation can dip just below 0
        return max(self.total_sq / self.count - mean * mean, 0.0)

    def stddev(self) -> float | None:
        variance = self.var()
        return math.sqrt(variance) if variance is not None else None

    def finalize(self, agg: str) -> float | int | None:
        if agg == "count":
            return self.count
        if agg == "sum":
            return self.total if self.count else 0
        if agg == "avg":
            return self.avg()
        if agg == "var":
            return self.var()
        if agg == "stddev":
            return self.stddev()
        raise ValueError(f"{agg!r} is not a moment aggregate")


class MomentVector:
    """Moments of several measures of the same row set, kept in lockstep.

    The paper (Section 5.3.1) notes that a tuple of divisible aggregates
    over the same selection -- e.g. a centroid's ``(avg x, avg y)`` --
    shares one index by storing aggregate *tuples* at the leaves.  A
    ``MomentVector`` is that tuple: one :class:`Moments` per measure plus
    a shared row count.
    """

    __slots__ = ("moments",)

    def __init__(self, width: int):
        self.moments = tuple(Moments() for _ in range(width))

    @property
    def width(self) -> int:
        return len(self.moments)

    def add(self, values: Sequence[float]) -> None:
        for moment, value in zip(self.moments, values):
            moment.add(value)

    def merge(self, other: "MomentVector") -> "MomentVector":
        out = MomentVector(self.width)
        out.moments = tuple(
            a.merge(b) for a, b in zip(self.moments, other.moments)
        )
        return out

    def subtract(self, other: "MomentVector") -> "MomentVector":
        out = MomentVector(self.width)
        out.moments = tuple(
            a.subtract(b) for a, b in zip(self.moments, other.moments)
        )
        return out

    def copy(self) -> "MomentVector":
        out = MomentVector(self.width)
        out.moments = tuple(m.copy() for m in self.moments)
        return out


def is_divisible(agg: str) -> bool:
    """Whether *agg* is divisible per Definition 5.1.

    ``argmin``/``argmax``/``min``/``max`` are the paper's examples of
    non-divisible aggregates (they need the sweep-line technique or a
    spatial index instead).
    """
    return agg in MOMENT_AGGREGATES


#: Type of a measure extractor: row -> numeric measure value.
MeasureFn = Callable[[dict], float]
