"""Index structures for aggregate queries (Section 5.3).

* :class:`RangeTree` / :class:`LayeredRangeTree2D` -- orthogonal range
  enumeration with optional fractional cascading;
* :class:`AggRangeTree2D` / :class:`PrefixAggregate1D` -- divisible
  aggregates at the leaves (Figure 8);
* :func:`sweep_minmax` / :func:`sweep_arg_minmax` -- sweep-line min/max
  for constant range extents (Figure 9);
* :class:`IntervalAggregateIndex` -- the segment tree backing the sweep;
* :class:`KDTree` -- nearest-neighbour spatial aggregates;
* :class:`PartitionedIndex` + composite builders -- categorical hash
  layers above the continuous structures.
"""

from .agg_range_tree import AggRangeTree2D, PrefixAggregate1D
from .composite import (
    GroupAggIndex,
    partitioned_agg_tree,
    partitioned_kdtree,
    partitioned_rows,
)
from .divisible import MOMENT_AGGREGATES, Moments, MomentVector, is_divisible
from .hash_layer import PartitionedIndex
from .interval_agg import IntervalAggregateIndex
from .kdtree import KDTree, build_kdtree_from_rows
from .range_tree import LayeredRangeTree2D, RangeTree
from .sweepline import sweep_arg_minmax, sweep_minmax

__all__ = [
    "AggRangeTree2D",
    "GroupAggIndex",
    "IntervalAggregateIndex",
    "KDTree",
    "LayeredRangeTree2D",
    "MOMENT_AGGREGATES",
    "Moments",
    "MomentVector",
    "PartitionedIndex",
    "PrefixAggregate1D",
    "RangeTree",
    "build_kdtree_from_rows",
    "is_divisible",
    "partitioned_agg_tree",
    "partitioned_kdtree",
    "partitioned_rows",
    "sweep_arg_minmax",
    "sweep_minmax",
]
