"""Layered index composition: hash layers above spatial/aggregate layers.

Section 5.3.2: "to process these type of queries, we place the spatial
indices as the lowest level of a layered range tree" -- and Section
5.3.1 replaces categorical levels with hashtables.  The composition
order follows index volatility (Section 5.3.1): attributes that change
rarely (player, unit type) sit above attributes that change every tick
(position), maximising structure reuse.

This module provides ready-made compositions used by the indexed
evaluator:

* :func:`partitioned_agg_tree` -- hash layer → divisible-aggregate
  range tree (Figure 8) for count/sum/avg/var/stddev range aggregates;
* :func:`partitioned_kdtree` -- hash layer → kD-tree for
  nearest-neighbour aggregates (Section 5.3.2);
* :func:`partitioned_rows` -- hash layer → plain row lists, the shared
  baseline for residual-predicate fallbacks.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from .agg_range_tree import AggRangeTree2D, PrefixAggregate1D
from .divisible import Moments
from .hash_layer import PartitionedIndex
from .kdtree import KDTree

Row = Mapping[str, object]


def partitioned_rows(
    rows: Iterable[Row], cat_attrs: tuple[str, ...]
) -> PartitionedIndex[list[Row]]:
    """Hash layer over plain row lists (fallback scans stay partitioned)."""
    return PartitionedIndex(rows, cat_attrs, factory=list)


def partitioned_kdtree(
    rows: Iterable[Row],
    cat_attrs: tuple[str, ...],
    x: str = "posx",
    y: str = "posy",
) -> PartitionedIndex[KDTree]:
    """Hash layer over kD-trees; tree items are the row dicts."""

    def factory(group: list[Row]) -> KDTree:
        return KDTree([(r[x], r[y]) for r in group], group)

    return PartitionedIndex(rows, cat_attrs, factory)


class GroupAggIndex:
    """Divisible-aggregate index over one category group.

    Adapts to the number of continuous range dimensions:

    * 0 dims -- precomputed total :class:`Moments` per measure;
    * 1 dim  -- :class:`PrefixAggregate1D`;
    * 2 dims -- :class:`AggRangeTree2D` (Figure 8).

    ``query(bounds)`` takes one closed interval per continuous dim and
    returns per-measure :class:`Moments`.
    """

    def __init__(
        self,
        rows: list[Row],
        range_attrs: tuple[str, ...],
        measures: Sequence[Callable[[Row], float]],
        *,
        cascade: bool = True,
    ):
        if len(range_attrs) > 2:
            raise ValueError(
                "GroupAggIndex supports at most 2 continuous dimensions; "
                "use the general RangeTree for more"
            )
        self.range_attrs = range_attrs
        self._measures = list(measures)
        self.width = len(measures)
        values = [tuple(m(row) for m in measures) for row in rows]
        if not range_attrs:
            totals = [Moments() for _ in measures] or [Moments()]
            for vals in values:
                if measures:
                    for moment, v in zip(totals, vals):
                        moment.add(v)
                else:
                    totals[0].count += 1
            self._total = tuple(totals)
            self._index: object = None
        elif len(range_attrs) == 1:
            attr = range_attrs[0]
            self._index = PrefixAggregate1D(
                [row[attr] for row in rows],
                values if measures else None,
                width=self.width,
            )
        else:
            ax, ay = range_attrs
            self._index = AggRangeTree2D(
                [(row[ax], row[ay]) for row in rows],
                values if measures else None,
                cascade=cascade,
                width=self.width,
            )

    # -- incremental maintenance --------------------------------------------------

    def values_of(self, row: Row) -> tuple[float, ...]:
        """The row's measure-value tuple (pass to insert/delete to avoid
        re-evaluating the compiled measure functions)."""
        return tuple(m(row) for m in self._measures)

    def insert(self, row: Row, values: tuple[float, ...] | None = None) -> None:
        """Fold one new row into the group's aggregate state."""
        if values is None:
            values = self.values_of(row)
        if not self.range_attrs:
            if self._measures:
                for moment, v in zip(self._total, values):
                    moment.add(v)
            else:
                self._total[0].count += 1
        elif len(self.range_attrs) == 1:
            self._index.insert(row[self.range_attrs[0]], values)
        else:
            ax, ay = self.range_attrs
            self._index.insert((row[ax], row[ay]), values)

    def delete(self, row: Row, values: tuple[float, ...] | None = None) -> None:
        """Remove one row's contribution (moments are invertible)."""
        if values is None:
            values = self.values_of(row)
        if not self.range_attrs:
            if self._measures:
                for moment, v in zip(self._total, values):
                    moment.remove(v)
            else:
                self._total[0].count -= 1
        elif len(self.range_attrs) == 1:
            self._index.delete(row[self.range_attrs[0]], values)
        else:
            ax, ay = self.range_attrs
            self._index.delete((row[ax], row[ay]), values)

    @property
    def overlay_size(self) -> int:
        """Live delta entries pending in the underlying structure.

        Zero-dimensional groups fold every change into their totals with
        no residue, so their overlay is always empty.  Cancelled
        insert/delete pairs (a unit oscillating between two cells) also
        leave no residue, which is why the maintenance policy gauges
        this instead of a cumulative mutation count.
        """
        if not self.range_attrs:
            return 0
        return self._index.overlay_size

    def query(self, bounds: Sequence[tuple[float, float]]) -> tuple[Moments, ...]:
        if len(bounds) != len(self.range_attrs):
            raise ValueError(
                f"expected {len(self.range_attrs)} bounds, got {len(bounds)}"
            )
        if not self.range_attrs:
            return self._total
        if len(self.range_attrs) == 1:
            lo, hi = bounds[0]
            return self._index.query(lo, hi)
        (xlo, xhi), (ylo, yhi) = bounds
        return self._index.query(xlo, xhi, ylo, yhi)


def partitioned_agg_tree(
    rows: Iterable[Row],
    cat_attrs: tuple[str, ...],
    range_attrs: tuple[str, ...],
    measures: Sequence[Callable[[Row], float]],
    *,
    cascade: bool = True,
) -> PartitionedIndex[GroupAggIndex]:
    """Hash layer → :class:`GroupAggIndex` per category group."""

    def factory(group: list[Row]) -> GroupAggIndex:
        return GroupAggIndex(group, range_attrs, measures, cascade=cascade)

    return PartitionedIndex(rows, cat_attrs, factory)
