"""Segment-tree interval aggregate index.

The sweep-line technique of Section 5.3.1 (Figure 9) needs "a binary
tree ordered on the remaining axis x" whose interior nodes carry the
aggregate of their leaf descendants, supporting point updates
(a unit entering/leaving the sweep window) and range queries (the
aggregate within a probing unit's x-range) in O(log n) each.

:class:`IntervalAggregateIndex` is that structure: a static, array-based
segment tree over a fixed number of slots, parameterised by an
associative operation with a neutral element.  Min/max trees initialise
leaves to +inf/-inf as in Figure 9; clearing a slot restores the neutral
value ("when a unit moves out of the range, replace the actual value
with the default").
"""

from __future__ import annotations

from typing import Callable

_OPS: dict[str, tuple[Callable[[float, float], float], float]] = {
    "min": (min, float("inf")),
    "max": (max, float("-inf")),
    "sum": (lambda a, b: a + b, 0.0),
}


class IntervalAggregateIndex:
    """Point-updatable aggregate over a fixed array of slots."""

    __slots__ = ("op", "neutral", "size", "_base", "_tree", "kind")

    def __init__(self, size: int, kind: str = "min", neutral: object = None):
        if kind not in _OPS:
            raise ValueError(f"unsupported aggregate kind {kind!r}")
        self.kind = kind
        self.op, self.neutral = _OPS[kind]
        if neutral is not None:
            # Custom neutral element, e.g. ``(inf, inf, None)`` tuples for
            # argmin sweeps that need the identity of the extreme unit.
            self.neutral = neutral
        self.size = max(size, 1)
        base = 1
        while base < self.size:
            base *= 2
        self._base = base
        self._tree = [self.neutral] * (2 * base)

    # -- updates --------------------------------------------------------------

    def set(self, slot: int, value: float) -> None:
        """Set *slot* to *value* and percolate the change to the root."""
        if not 0 <= slot < self.size:
            raise IndexError(f"slot {slot} out of range [0, {self.size})")
        i = self._base + slot
        tree = self._tree
        tree[i] = value
        op = self.op
        i //= 2
        while i:
            tree[i] = op(tree[2 * i], tree[2 * i + 1])
            i //= 2

    def clear(self, slot: int) -> None:
        """Restore *slot* to the neutral value (unit leaves the sweep)."""
        self.set(slot, self.neutral)

    def get(self, slot: int) -> float:
        if not 0 <= slot < self.size:
            raise IndexError(f"slot {slot} out of range [0, {self.size})")
        return self._tree[self._base + slot]

    # -- queries ---------------------------------------------------------------

    def query(self, lo: int, hi: int) -> float:
        """Aggregate of slots ``lo..hi`` inclusive; neutral if empty."""
        if lo > hi:
            return self.neutral
        lo = max(lo, 0)
        hi = min(hi, self.size - 1)
        if lo > hi:
            return self.neutral
        result = self.neutral
        op = self.op
        tree = self._tree
        left = self._base + lo
        right = self._base + hi + 1
        while left < right:
            if left & 1:
                result = op(result, tree[left])
                left += 1
            if right & 1:
                right -= 1
                result = op(result, tree[right])
            left //= 2
            right //= 2
        return result

    def total(self) -> float:
        """Aggregate of every slot."""
        return self._tree[1]
