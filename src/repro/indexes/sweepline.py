"""Sweep-line computation of min/max range aggregates (Figure 9).

Min and max are not divisible (Definition 5.1), so the prefix trick of
Figure 8 does not apply.  The paper's alternative exploits a common
game-design fact: all units of a type share the same query-range extent
("units of the same type all have the same weapon and visibility
range").  When the y-extent ``ry`` is constant across probes, one sweep
over y answers *every* probe:

* build a binary tree ordered on x over the source units, leaves
  initialised to the neutral value (±inf);
* sweep y; a source enters the window when the sweep reaches
  ``source.y - ry`` and leaves after ``source.y + ry``;
* when the sweep reaches a probe's own y ("the center of the range"),
  query the tree over the probe's x-interval in O(log n);
* percolate every leaf change up the tree.

Total O((n + m) log n) for n sources and m probes, with *no* dependence
on how many sources fall in each range -- the quantity that makes naive
min-in-range O(n²) on clustered armies.

:func:`sweep_minmax` returns, for every probe, the min (or max) source
value in the box ``[px ± rx, py ± ry]``; :func:`sweep_arg_minmax` also
returns *which* source attains it ("find the weakest unit in range").
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

from .interval_agg import IntervalAggregateIndex

_INF = float("inf")


def _run_sweep(
    source_xy: Sequence[tuple[float, float]],
    leaf_values: Sequence[object],
    probe_xy: Sequence[tuple[float, float]],
    rx: float,
    ry: float,
    kind: str,
    neutral: object,
) -> list[object]:
    """Shared sweep skeleton; *leaf_values* are what leaves hold while a
    source is inside the window (value floats, or (value, seq, id) tuples
    for arg variants)."""
    n = len(source_xy)
    m = len(probe_xy)
    results: list[object] = [neutral] * m
    if m == 0:
        return results

    # x-order tree: leaf slot = rank of the source in x order
    xs_sorted = sorted((x, i) for i, (x, _) in enumerate(source_xy))
    slot_of_source = [0] * n
    xs = [0.0] * n
    for slot, (x, i) in enumerate(xs_sorted):
        slot_of_source[i] = slot
        xs[slot] = x
    tree = IntervalAggregateIndex(max(n, 1), kind=kind, neutral=neutral)

    # event queues sorted by y
    enters = sorted(range(n), key=lambda i: source_xy[i][1] - ry)
    exits = sorted(range(n), key=lambda i: source_xy[i][1] + ry)
    probes = sorted(range(m), key=lambda j: probe_xy[j][1])

    ei = xi = 0
    for j in probes:
        py = probe_xy[j][1]
        # admit sources whose window [sy - ry, sy + ry] now contains py
        while ei < n and source_xy[enters[ei]][1] - ry <= py:
            i = enters[ei]
            tree.set(slot_of_source[i], leaf_values[i])
            ei += 1
        # retire sources whose window ended strictly before py
        while xi < n and source_xy[exits[xi]][1] + ry < py:
            tree.clear(slot_of_source[exits[xi]])
            xi += 1
        px = probe_xy[j][0]
        lo = bisect_left(xs, px - rx)
        hi = bisect_right(xs, px + rx) - 1
        results[j] = tree.query(lo, hi)
    return results


def sweep_minmax(
    source_xy: Sequence[tuple[float, float]],
    source_values: Sequence[float],
    probe_xy: Sequence[tuple[float, float]],
    rx: float,
    ry: float,
    kind: str = "min",
) -> list[float | None]:
    """Per probe, the min/max source value within ``[±rx, ±ry]``.

    Probes with no source in range yield ``None`` (matching the naive
    SQL semantics of min/max over an empty selection).
    """
    if kind not in ("min", "max"):
        raise ValueError("kind must be 'min' or 'max'")
    neutral = _INF if kind == "min" else -_INF
    raw = _run_sweep(source_xy, list(source_values), probe_xy, rx, ry, kind, neutral)
    return [None if v == neutral else v for v in raw]


def sweep_arg_minmax(
    source_xy: Sequence[tuple[float, float]],
    source_values: Sequence[float],
    source_ids: Sequence[object],
    probe_xy: Sequence[tuple[float, float]],
    rx: float,
    ry: float,
    kind: str = "min",
) -> list[tuple[float, object] | None]:
    """Per probe, ``(value, id)`` of the extreme source in range.

    *source_ids* must be mutually comparable: value ties break toward
    the smallest id, matching the argmin/argmax tie-break of the naive
    evaluator (see ``repro.sgl.sqlspec``).  Used for "find the weakest
    unit in range" where the acting unit needs the target's identity,
    not just its health value.
    """
    if kind not in ("min", "max"):
        raise ValueError("kind must be 'min' or 'max'")
    n = len(source_xy)
    # Run a MIN sweep in both directions (negating values for max) so the
    # tuple order (value', id) gives the smallest-id tie-break either way.
    sign = 1.0 if kind == "min" else -1.0
    leaves: list[object] = [
        (sign * float(source_values[i]), source_ids[i]) for i in range(n)
    ]
    neutral: object = (_INF, _MaxSentinel())
    raw = _run_sweep(source_xy, leaves, probe_xy, rx, ry, "min", neutral)
    out: list[tuple[float, object] | None] = []
    for v in raw:
        if v is None or isinstance(v[1], _MaxSentinel):
            out.append(None)
        else:
            out.append((sign * v[0], v[1]))
    return out


class _MaxSentinel:
    """Compares greater than every id; marks empty sweep results."""

    __slots__ = ()

    def __lt__(self, other: object) -> bool:
        return False

    def __gt__(self, other: object) -> bool:
        return not isinstance(other, _MaxSentinel)

    def __le__(self, other: object) -> bool:
        return isinstance(other, _MaxSentinel)

    def __ge__(self, other: object) -> bool:
        return True

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _MaxSentinel)

    def __hash__(self) -> int:
        return 0
