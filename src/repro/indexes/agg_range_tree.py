"""Divisible-aggregate layered range trees (Figure 8).

For a divisible aggregate (Definition 5.1) the last layer of the range
tree stores *prefix aggregates* instead of elements: leaf position i of
a canonical node's y-array holds ``agg(y_1 ... y_i)``.  The aggregate of
any orthogonal range is then recovered from a constant number of prefix
look-ups per canonical node -- O(log n) per query with fractional
cascading, independent of how many units fall inside the range.  This is
the index that defeats the ``+k`` enumeration cost when armies are
clustered ("if k is close to n, then the join will still be O(n²)").

We store prefix :class:`~repro.indexes.divisible.Moments` -- (count, Σv,
Σv²) -- per measure, so a single tree answers count, sum, avg, var and
stddev for every measure simultaneously ("we can combine these
aggregates into one index structure by replacing the list of aggregates
with a list of aggregate tuples").

:class:`PrefixAggregate1D` is the degenerate one-dimensional case used
when only one continuous attribute is constrained.

Both structures also support **incremental maintenance**: ``insert`` /
``delete`` record changed elements in a small delta overlay that every
query folds in (add inserted-in-range, subtract deleted-in-range --
exact because moments form a group under merge/subtract).  The static
tree is never restructured; once the overlay outgrows the per-structure
budget the maintenance policy in the indexed evaluator rebuilds from
scratch, which is the paper's default anyway.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Sequence

from .divisible import Moments


class _DeltaOverlay:
    """Pending insert/delete entries with exact cancellation.

    Shared by the 1-d and 2-d structures.  An entry is a tuple ending
    in its measure-value tuple, mapped to a signed multiplicity (inserts
    minus deletes) so cancellation is O(1) -- oscillating elements
    leave no residue and high-churn ticks stay linear in the delta.
    ``fold`` applies the in-range entries to running (count, sums,
    sumsqs) accumulators -- exact because moments form a group.
    """

    __slots__ = ("entries", "size")

    def __init__(self):
        self.entries: dict[tuple, int] = {}  # entry -> signed multiplicity
        self.size = 0  # Σ |multiplicity|: live entries queries must scan

    def __len__(self) -> int:
        return self.size

    def _shift(self, entry: tuple, sign: int) -> None:
        count = self.entries.get(entry, 0)
        updated = count + sign
        self.size += abs(updated) - abs(count)
        if updated:
            self.entries[entry] = updated
        else:
            del self.entries[entry]

    def insert(self, entry: tuple) -> None:
        self._shift(entry, 1)

    def delete(self, entry: tuple) -> None:
        self._shift(entry, -1)

    def fold(self, count, sums, sumsqs, width, contains) -> int:
        for entry, multiplicity in self.entries.items():
            if contains(entry):
                count += multiplicity
                vals = entry[-1]
                for m in range(width):
                    v = vals[m]
                    sums[m] += multiplicity * v
                    sumsqs[m] += multiplicity * v * v
        return count


class _ANode:
    __slots__ = (
        "min_x", "max_x", "left", "right", "ys",
        "pcount", "psum", "psumsq", "bridge_left", "bridge_right",
    )

    def __init__(self):
        self.min_x = 0.0
        self.max_x = 0.0
        self.left: "_ANode | None" = None
        self.right: "_ANode | None" = None
        self.ys: list[float] = []
        # prefix arrays: pcount[i] = #elements among first i; psum[m][i],
        # psumsq[m][i] = Σ / Σ² of measure m among first i elements.
        self.pcount: list[int] = []
        self.psum: list[list[float]] = []
        self.psumsq: list[list[float]] = []
        self.bridge_left: list[int] | None = None
        self.bridge_right: list[int] | None = None


class AggRangeTree2D:
    """2-d range tree answering divisible aggregates in O(log n).

    Parameters
    ----------
    points:
        ``(x, y)`` pairs.
    values:
        Per point, a sequence of measure values (all measures share the
        tree).  Pass ``[()] * n`` (or ``values=None``) for pure counting.
    cascade:
        Enable fractional cascading (bridge pointers); disable for the
        A-FC ablation benchmark.
    """

    def __init__(
        self,
        points: Sequence[tuple[float, float]],
        values: Sequence[Sequence[float]] | None = None,
        *,
        cascade: bool = True,
        width: int | None = None,
    ):
        n = len(points)
        if values is None:
            values = [()] * n
        if len(values) != n:
            raise ValueError("points and values must have equal length")
        self.cascade = cascade
        self.width = width if width is not None else (len(values[0]) if n else 0)
        self._size = n
        entries = sorted(
            (
                (float(x), float(y), tuple(float(v) for v in vals))
                for (x, y), vals in zip(points, values)
            ),
            key=lambda e: e[0],
        )
        self._root = self._build(entries) if entries else None
        # delta overlay of (x, y, values) triples since build
        self._overlay = _DeltaOverlay()

    def __len__(self) -> int:
        return self._size

    @property
    def overlay_size(self) -> int:
        """Number of pending delta entries (queries scan these linearly)."""
        return len(self._overlay)

    # -- incremental maintenance --------------------------------------------------

    def _entry(
        self, point: tuple[float, float], values: Sequence[float]
    ) -> tuple[float, float, tuple[float, ...]]:
        entry = (
            float(point[0]),
            float(point[1]),
            tuple(float(v) for v in values),
        )
        if len(entry[2]) != self.width:
            raise ValueError(f"expected {self.width} measures, got {len(entry[2])}")
        return entry

    def insert(self, point: tuple[float, float], values: Sequence[float] = ()) -> None:
        self._overlay.insert(self._entry(point, values))
        self._size += 1

    def delete(self, point: tuple[float, float], values: Sequence[float] = ()) -> None:
        """Remove one element previously built-in or inserted.

        The overlay cannot verify per-element membership against the
        static tree (it stores prefix aggregates, not elements), so a
        wrong (point, values) pair is the caller's bug; the size
        invariant at least fails loudly on gross over-deletion.
        """
        self._overlay.delete(self._entry(point, values))
        self._size -= 1
        if self._size < 0:
            raise ValueError("deleted more elements than the tree holds")

    # -- construction -----------------------------------------------------------

    def _build(self, entries: list) -> _ANode:
        node, _ = self._build_rec(entries)
        return node

    def _build_rec(self, entries: list) -> tuple[_ANode, list]:
        """Build a subtree; also return its y-sorted (y, values) entries
        so parents merge in O(len) instead of re-sorting."""
        node = _ANode()
        node.min_x = entries[0][0]
        node.max_x = entries[-1][0]
        if len(entries) == 1:
            merged = [(entries[0][1], entries[0][2])]
        else:
            mid = len(entries) // 2
            node.left, left_merged = self._build_rec(entries[:mid])
            node.right, right_merged = self._build_rec(entries[mid:])
            merged = self._merge(left_merged, right_merged)
        self._fill_prefixes(node, merged)
        if self.cascade and node.left is not None:
            node.bridge_left = self._bridges(node.ys, node.left.ys)
            node.bridge_right = self._bridges(node.ys, node.right.ys)
        return node, merged

    @staticmethod
    def _merge(left: list, right: list) -> list:
        out = []
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i][0] <= right[j][0]:
                out.append(left[i]); i += 1
            else:
                out.append(right[j]); j += 1
        out.extend(left[i:])
        out.extend(right[j:])
        return out

    def _fill_prefixes(self, node: _ANode, merged: list) -> None:
        width = self.width
        node.ys = [y for y, _ in merged]
        n = len(merged)
        node.pcount = [0] * (n + 1)
        node.psum = [[0.0] * (n + 1) for _ in range(width)]
        node.psumsq = [[0.0] * (n + 1) for _ in range(width)]
        for i, (_, vals) in enumerate(merged):
            node.pcount[i + 1] = node.pcount[i] + 1
            for m in range(width):
                v = vals[m]
                node.psum[m][i + 1] = node.psum[m][i] + v
                node.psumsq[m][i + 1] = node.psumsq[m][i] + v * v

    @staticmethod
    def _bridges(parent_ys: list[float], child_ys: list[float]) -> list[int]:
        bridges = [0] * (len(parent_ys) + 1)
        j = 0
        for i, y in enumerate(parent_ys):
            while j < len(child_ys) and child_ys[j] < y:
                j += 1
            bridges[i] = j
        bridges[len(parent_ys)] = len(child_ys)
        return bridges

    # -- queries ------------------------------------------------------------------

    def query(self, xlo, xhi, ylo, yhi) -> tuple[Moments, ...]:
        """Per-measure :class:`Moments` of the closed query rectangle.

        With zero measures the single returned :class:`Moments` carries
        the count only.
        """
        counts = 0
        sums = [0.0] * self.width
        sumsqs = [0.0] * self.width

        def report(node: _ANode, plo: int, phi: int) -> None:
            nonlocal counts
            counts += node.pcount[phi] - node.pcount[plo]
            for m in range(self.width):
                sums[m] += node.psum[m][phi] - node.psum[m][plo]
                sumsqs[m] += node.psumsq[m][phi] - node.psumsq[m][plo]

        self._visit(xlo, xhi, ylo, yhi, report)
        counts = self._overlay.fold(
            counts, sums, sumsqs, self.width,
            lambda e: xlo <= e[0] <= xhi and ylo <= e[1] <= yhi,
        )
        if self.width == 0:
            return (Moments(counts, 0.0, 0.0),)
        return tuple(
            Moments(counts, sums[m], sumsqs[m]) for m in range(self.width)
        )

    def count(self, xlo, xhi, ylo, yhi) -> int:
        return self.query(xlo, xhi, ylo, yhi)[0].count

    def _visit(self, xlo, xhi, ylo, yhi, report) -> None:
        root = self._root
        if root is None or xlo > xhi or ylo > yhi:
            return
        plo = bisect_left(root.ys, ylo)
        phi = bisect_right(root.ys, yhi)

        def descend(node: _ANode, plo: int, phi: int) -> None:
            if node.max_x < xlo or node.min_x > xhi or plo >= phi:
                return
            if xlo <= node.min_x and node.max_x <= xhi:
                report(node, plo, phi)
                return
            if node.left is None:
                return
            if self.cascade:
                descend(node.left, node.bridge_left[plo], node.bridge_left[phi])
                descend(node.right, node.bridge_right[plo], node.bridge_right[phi])
            else:
                descend(node.left,
                        bisect_left(node.left.ys, ylo),
                        bisect_right(node.left.ys, yhi))
                descend(node.right,
                        bisect_left(node.right.ys, ylo),
                        bisect_right(node.right.ys, yhi))

        descend(root, plo, phi)


class PrefixAggregate1D:
    """Sorted array + prefix moments: divisible aggregates over one axis.

    The degenerate layered range tree when only a single continuous
    attribute is constrained (e.g. "count units with health below h").
    Build O(n log n), query O(log n).
    """

    def __init__(
        self,
        keys: Sequence[float],
        values: Sequence[Sequence[float]] | None = None,
        *,
        width: int | None = None,
    ):
        n = len(keys)
        if values is None:
            values = [()] * n
        if len(values) != n:
            raise ValueError("keys and values must have equal length")
        order = sorted(range(n), key=lambda i: keys[i])
        self.keys = [float(keys[i]) for i in order]
        self.width = width if width is not None else (len(values[0]) if n else 0)
        self._psum = [[0.0] * (n + 1) for _ in range(self.width)]
        self._psumsq = [[0.0] * (n + 1) for _ in range(self.width)]
        for pos, i in enumerate(order):
            for m in range(self.width):
                v = float(values[i][m])
                self._psum[m][pos + 1] = self._psum[m][pos] + v
                self._psumsq[m][pos + 1] = self._psumsq[m][pos] + v * v
        self._size = n
        # delta overlay of (key, values) pairs since build
        self._overlay = _DeltaOverlay()

    def __len__(self) -> int:
        return self._size

    @property
    def overlay_size(self) -> int:
        return len(self._overlay)

    # -- incremental maintenance --------------------------------------------------

    def _entry(
        self, key: float, values: Sequence[float]
    ) -> tuple[float, tuple[float, ...]]:
        entry = (float(key), tuple(float(v) for v in values))
        if len(entry[1]) != self.width:
            raise ValueError(f"expected {self.width} measures, got {len(entry[1])}")
        return entry

    def insert(self, key: float, values: Sequence[float] = ()) -> None:
        self._overlay.insert(self._entry(key, values))
        self._size += 1

    def delete(self, key: float, values: Sequence[float] = ()) -> None:
        self._overlay.delete(self._entry(key, values))
        self._size -= 1
        if self._size < 0:
            raise ValueError("deleted more elements than the structure holds")

    # -- queries ------------------------------------------------------------------

    def query(self, lo: float, hi: float) -> tuple[Moments, ...]:
        start = bisect_left(self.keys, lo)
        stop = bisect_right(self.keys, hi)
        count = max(stop - start, 0)
        sums = [self._psum[m][stop] - self._psum[m][start] for m in range(self.width)]
        sumsqs = [
            self._psumsq[m][stop] - self._psumsq[m][start]
            for m in range(self.width)
        ]
        count = self._overlay.fold(
            count, sums, sumsqs, self.width, lambda e: lo <= e[0] <= hi
        )
        if self.width == 0:
            return (Moments(count, 0.0, 0.0),)
        return tuple(
            Moments(count, sums[m], sumsqs[m]) for m in range(self.width)
        )

    def count(self, lo: float, hi: float) -> int:
        return self.query(lo, hi)[0].count
