"""kD-tree for nearest-neighbour spatial aggregates (Section 5.3.2).

"An efficient way to find the nearest unit is to use a kD-tree [4]."
The tree is static (rebuilt each tick like every other index, per the
paper's observation that per-tick rebuild beats dynamic maintenance for
rapidly-moving data) and built by median splitting, alternating axes.

Queries:

* :meth:`nearest` -- the stored item minimising squared Euclidean
  distance to a probe point, with an optional exclusion key (a unit
  searching for its nearest *other* unit) and an optional predicate for
  residual filters the categorical layers above could not absorb;
* :meth:`within_radius` -- all items within a (circular) radius, used by
  area-of-effect combination (Section 5.4) when effects are circular.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence


class _Node:
    __slots__ = ("point", "item", "axis", "left", "right")

    def __init__(self, point, item, axis):
        self.point = point
        self.item = item
        self.axis = axis
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None


class KDTree:
    """A 2-d (or k-d) tree over ``(point, item)`` pairs."""

    def __init__(
        self,
        points: Sequence[Sequence[float]],
        items: Sequence[object] | None = None,
        dims: int = 2,
    ):
        if items is None:
            items = list(range(len(points)))
        if len(items) != len(points):
            raise ValueError("points and items must have equal length")
        self.dims = dims
        self._size = len(points)
        entries = [(tuple(p), item) for p, item in zip(points, items)]
        self._root = self._build(entries, depth=0)

    def __len__(self) -> int:
        return self._size

    def _build(self, entries: list, depth: int) -> _Node | None:
        if not entries:
            return None
        axis = depth % self.dims
        entries.sort(key=lambda pi: pi[0][axis])
        mid = len(entries) // 2
        point, item = entries[mid]
        node = _Node(point, item, axis)
        node.left = self._build(entries[:mid], depth + 1)
        node.right = self._build(entries[mid + 1 :], depth + 1)
        return node

    # -- nearest neighbour -------------------------------------------------------

    def nearest(
        self,
        probe: Sequence[float],
        *,
        exclude: Callable[[object], bool] | None = None,
        max_dist_sq: float = float("inf"),
        tie_key: Callable[[object], object] | None = None,
    ) -> tuple[object, float] | None:
        """``(item, squared-distance)`` of the closest accepted point.

        *exclude* rejects candidate items (e.g. the probing unit itself);
        *max_dist_sq* bounds the search (visibility range); *tie_key*
        breaks equal-distance ties toward the smallest key, matching the
        naive evaluator's argmin tie-break.  Returns ``None`` when no
        accepted point lies within the bound.
        """
        probe = tuple(probe)
        best: list = [None, max_dist_sq, None]  # item, dist², tie key
        self._nearest(self._root, probe, exclude, tie_key, best)
        if best[0] is None:
            return None
        return best[0], best[1]

    def _nearest(self, node: _Node | None, probe, exclude, tie_key, best) -> None:
        if node is None:
            return
        # explicit products: bit-identical to the scan evaluator's
        # (e.x - cx)*(e.x - cx) + (e.y - cy)*(e.y - cy)
        dist_sq = 0.0
        for a, b in zip(node.point, probe):
            d = a - b
            dist_sq += d * d
        if dist_sq <= best[1] and (exclude is None or not exclude(node.item)):
            better = dist_sq < best[1] or best[0] is None
            if not better and tie_key is not None and dist_sq == best[1]:
                better = tie_key(node.item) < best[2]
            if better:
                best[0], best[1] = node.item, dist_sq
                best[2] = tie_key(node.item) if tie_key is not None else None
        axis = node.axis
        delta = probe[axis] - node.point[axis]
        near, far = (node.left, node.right) if delta <= 0 else (node.right, node.left)
        self._nearest(near, probe, exclude, tie_key, best)
        if delta * delta <= best[1]:
            self._nearest(far, probe, exclude, tie_key, best)

    # -- radius search -------------------------------------------------------------

    def within_radius(
        self, probe: Sequence[float], radius: float
    ) -> list[tuple[object, float]]:
        """All ``(item, squared-distance)`` within *radius* of *probe*."""
        probe = tuple(probe)
        out: list[tuple[object, float]] = []
        self._within(self._root, probe, radius, radius * radius, out)
        return out

    def _within(self, node: _Node | None, probe, radius, radius_sq, out) -> None:
        if node is None:
            return
        dist_sq = 0.0
        for a, b in zip(node.point, probe):
            d = a - b
            dist_sq += d * d
        if dist_sq <= radius_sq:
            out.append((node.item, dist_sq))
        delta = probe[node.axis] - node.point[node.axis]
        if delta <= radius:
            self._within(node.left, probe, radius, radius_sq, out)
        if -delta <= radius:
            self._within(node.right, probe, radius, radius_sq, out)


def build_kdtree_from_rows(
    rows: Iterable[dict], x: str = "posx", y: str = "posy"
) -> KDTree:
    """Build a 2-d tree whose items are the row dicts themselves."""
    rows = list(rows)
    return KDTree([(r[x], r[y]) for r in rows], rows)
