"""kD-tree for nearest-neighbour spatial aggregates (Section 5.3.2).

"An efficient way to find the nearest unit is to use a kD-tree [4]."
The tree is built by median splitting, alternating axes.  The bulk
build is static (the paper's per-tick-rebuild default), but the tree
also supports incremental maintenance for the low-update-rate regime:
:meth:`insert` attaches standard dynamic leaves, :meth:`delete`
tombstones nodes in place (tombstoned points still partition space, so
search stays correct), and :meth:`replace_item` swaps a node's payload
when only non-spatial attributes changed.  Heavy churn degrades balance
and leaves dead weight, so the evaluator's maintenance policy rebuilds
once the mutation count outgrows its budget.

The tree additionally bounds its own depth: each insert tracks the
attach depth, and once a leaf would land deeper than ``4 * log2(n)``
the tree forces the full-rebuild fallback on itself -- the live points
(tombstones dropped) are re-bulk-built by median splitting.  Without
this, *adversarial* insert orders (sorted coordinates, the classic
sequential-churn pattern) chain leaves into an O(n)-deep path that the
mutation-count budget alone does not catch when the tree is mostly
inserts: every k-NN probe would then degrade to a linear walk.  A
rebuild relocates nodes but cannot change any answer -- the candidate
set is identical and ties break on the caller's ``tie_key``, never on
tree shape.

Queries:

* :meth:`nearest` -- the stored item minimising squared Euclidean
  distance to a probe point, with an optional exclusion key (a unit
  searching for its nearest *other* unit) and an optional predicate for
  residual filters the categorical layers above could not absorb;
* :meth:`within_radius` -- all items within a (circular) radius, used by
  area-of-effect combination (Section 5.4) when effects are circular.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

#: Leaf-attach depth budget, as a multiple of ``log2(live size)``.  A
#: balanced tree is ~1x; random insert orders hover near 2x; only
#: adversarial (sorted) insert sequences push past 4x.
_DEPTH_FACTOR = 4.0

#: Below this size a rebuild is never forced -- tiny trees are cheap to
#: search however degenerate, and log2-based budgets misbehave near 1.
_DEPTH_MIN_SIZE = 8


class _Node:
    __slots__ = ("point", "item", "axis", "left", "right", "deleted")

    def __init__(self, point, item, axis):
        self.point = point
        self.item = item
        self.axis = axis
        self.left: "_Node | None" = None
        self.right: "_Node | None" = None
        self.deleted = False


class KDTree:
    """A 2-d (or k-d) tree over ``(point, item)`` pairs."""

    def __init__(
        self,
        points: Sequence[Sequence[float]],
        items: Sequence[object] | None = None,
        dims: int = 2,
    ):
        if items is None:
            items = list(range(len(points)))
        if len(items) != len(points):
            raise ValueError("points and items must have equal length")
        self.dims = dims
        self._size = len(points)
        #: Forced full rebuilds triggered by the insert depth bound.
        self.depth_rebuilds = 0
        entries = [(tuple(p), item) for p, item in zip(points, items)]
        self._root = self._build(entries, depth=0)

    def __len__(self) -> int:
        return self._size

    def _build(self, entries: list, depth: int) -> _Node | None:
        if not entries:
            return None
        axis = depth % self.dims
        entries.sort(key=lambda pi: pi[0][axis])
        mid = len(entries) // 2
        point, item = entries[mid]
        node = _Node(point, item, axis)
        node.left = self._build(entries[:mid], depth + 1)
        node.right = self._build(entries[mid + 1 :], depth + 1)
        return node

    # -- incremental maintenance --------------------------------------------------

    def insert(self, point: Sequence[float], item: object) -> None:
        """Attach ``(point, item)`` as a new leaf (standard dynamic insert).

        No incremental rebalancing -- but the attach depth is tracked,
        and a leaf that would land beyond ``4 * log2(live size)`` forces
        a full rebuild instead, so adversarial insert orders (sorted
        coordinates) cannot chain the tree into an O(n)-deep path that
        degrades every k-NN probe to a linear walk.
        """
        point = tuple(point)
        self._size += 1
        if self._root is None:
            self._root = _Node(point, item, 0)
            return
        node = self._root
        depth = 0
        while True:
            depth += 1
            if point[node.axis] - node.point[node.axis] <= 0:
                if node.left is None:
                    node.left = _Node(point, item, depth % self.dims)
                    break
                node = node.left
            else:
                if node.right is None:
                    node.right = _Node(point, item, depth % self.dims)
                    break
                node = node.right
        if self._size >= _DEPTH_MIN_SIZE and depth > _DEPTH_FACTOR * math.log2(
            self._size
        ):
            self._rebuild()

    def _rebuild(self) -> None:
        """Bulk-rebuild from the live entries (tombstones dropped).

        The standard full-rebuild fallback the maintenance policies
        already rely on, applied by the tree to itself when the depth
        bound trips.  Every query answer is preserved: the live
        ``(point, item)`` set is unchanged, and no query result depends
        on node placement.
        """
        entries: list = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if not node.deleted:
                entries.append((node.point, node.item))
            stack.append(node.left)
            stack.append(node.right)
        self._size = len(entries)
        self._root = self._build(entries, depth=0)
        self.depth_rebuilds += 1

    def delete(
        self, point: Sequence[float], match: Callable[[object], bool]
    ) -> bool:
        """Tombstone the node at *point* whose item satisfies *match*.

        The node keeps partitioning space for descent but is skipped as
        a query candidate.  Returns whether a live matching node was
        found.  Both sides of a split must be searched on coordinate
        ties, since the bulk build puts equal coordinates on either
        side of the median.
        """
        found = self._find(self._root, tuple(point), match)
        if found is None:
            return False
        found.deleted = True
        found.item = None  # drop the payload reference eagerly
        self._size -= 1
        return True

    def replace_item(
        self, point: Sequence[float], match: Callable[[object], bool], item: object
    ) -> bool:
        """Swap the payload of the live node at *point* matching *match*.

        The O(log n) path for updates that leave coordinates unchanged
        (a unit that stood still but lost health): no tombstone, no new
        leaf, just the fresh row object in place of the stale one.
        """
        found = self._find(self._root, tuple(point), match)
        if found is None:
            return False
        found.item = item
        return True

    def _find(self, node: _Node | None, point, match) -> _Node | None:
        # iterative (see _nearest)
        stack = [node]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            if node.point == point and not node.deleted and match(node.item):
                return node
            delta = point[node.axis] - node.point[node.axis]
            if delta <= 0:
                if delta == 0:
                    stack.append(node.right)
                stack.append(node.left)
            else:
                stack.append(node.right)
        return None

    # -- nearest neighbour -------------------------------------------------------

    def nearest(
        self,
        probe: Sequence[float],
        *,
        exclude: Callable[[object], bool] | None = None,
        max_dist_sq: float = float("inf"),
        tie_key: Callable[[object], object] | None = None,
    ) -> tuple[object, float] | None:
        """``(item, squared-distance)`` of the closest accepted point.

        *exclude* rejects candidate items (e.g. the probing unit itself);
        *max_dist_sq* bounds the search (visibility range); *tie_key*
        breaks equal-distance ties toward the smallest key, matching the
        naive evaluator's argmin tie-break.  Returns ``None`` when no
        accepted point lies within the bound.
        """
        probe = tuple(probe)
        best: list = [None, max_dist_sq, None]  # item, dist², tie key
        self._nearest(self._root, probe, exclude, tie_key, best)
        if best[0] is None:
            return None
        return best[0], best[1]

    def _nearest(self, node: _Node | None, probe, exclude, tie_key, best) -> None:
        # iterative traversal with an explicit stack: dynamic inserts can
        # chain into deep unbalanced paths, which must degrade search
        # time only -- never blow the interpreter's recursion limit.
        # Each stack entry carries the split-distance bound under which
        # the subtree was deferred; re-checked at pop so pruning matches
        # the recursive near-first formulation.
        stack: list = [(node, 0.0)]
        while stack:
            node, bound = stack.pop()
            if node is None or bound > best[1]:
                continue
            # explicit products: bit-identical to the scan evaluator's
            # (e.x - cx)*(e.x - cx) + (e.y - cy)*(e.y - cy)
            dist_sq = 0.0
            for a, b in zip(node.point, probe):
                d = a - b
                dist_sq += d * d
            if (
                not node.deleted
                and dist_sq <= best[1]
                and (exclude is None or not exclude(node.item))
            ):
                better = dist_sq < best[1] or best[0] is None
                if not better and tie_key is not None and dist_sq == best[1]:
                    better = tie_key(node.item) < best[2]
                if better:
                    best[0], best[1] = node.item, dist_sq
                    best[2] = tie_key(node.item) if tie_key is not None else None
            axis = node.axis
            delta = probe[axis] - node.point[axis]
            near, far = (
                (node.left, node.right) if delta <= 0 else (node.right, node.left)
            )
            stack.append((far, delta * delta))
            stack.append((near, 0.0))  # popped first: near side explored fully

    # -- radius search -------------------------------------------------------------

    def within_radius(
        self, probe: Sequence[float], radius: float
    ) -> list[tuple[object, float]]:
        """All ``(item, squared-distance)`` within *radius* of *probe*."""
        probe = tuple(probe)
        out: list[tuple[object, float]] = []
        self._within(self._root, probe, radius, radius * radius, out)
        return out

    def _within(self, node: _Node | None, probe, radius, radius_sq, out) -> None:
        # iterative (see _nearest); pushes right-then-left so results
        # arrive in the same depth-first preorder as the old recursion
        stack = [node]
        while stack:
            node = stack.pop()
            if node is None:
                continue
            dist_sq = 0.0
            for a, b in zip(node.point, probe):
                d = a - b
                dist_sq += d * d
            if dist_sq <= radius_sq and not node.deleted:
                out.append((node.item, dist_sq))
            delta = probe[node.axis] - node.point[node.axis]
            if -delta <= radius:
                stack.append(node.right)
            if delta <= radius:
                stack.append(node.left)


def build_kdtree_from_rows(
    rows: Iterable[dict], x: str = "posx", y: str = "posy"
) -> KDTree:
    """Build a 2-d tree whose items are the row dicts themselves."""
    rows = list(rows)
    return KDTree([(r[x], r[y]) for r in rows], rows)
