"""Categorical hash layers for degenerate range components.

Section 5.3.1: "In determining the dimension d, we can ignore all
degenerate (i.e. categorical) range components, as those levels of the
tree can be replaced by a hashtable with O(1) look-up."  The paper's
engine does exactly this -- "since the game has only two players and
three unit types, we push selection on player and/or unit type to the
top, giving us a total of 6 range trees".

:class:`PartitionedIndex` groups rows by a tuple of categorical
attributes and builds one sub-index per group through a caller-supplied
factory.  Probing with a category tuple returns the sub-index (or
``None`` for an empty group).

The hash layer is also the routing point for incremental maintenance:
:meth:`insert` / :meth:`delete` / :meth:`update` dispatch a changed row
to its category group (creating the group on first insert, dropping it
when the last row leaves, re-routing updates whose categorical values
moved) and delegate the per-row work to ``row_insert`` / ``row_delete``
adapters, since only the caller knows how its sub-index ingests a row.
Plain ``list`` sub-indexes need no adapters.

With a *shard_of* function the layer additionally prefixes every group
key with the row's shard id, so each category group splits into one
sub-index per environment shard.  Probes that merge across matching
groups (the evaluator already does this for ``<>`` categories) then
merge across shards the same way, and maintenance stays shard-local: a
row that changes shard re-routes exactly like a row whose categorical
value changed.
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Mapping, TypeVar

SubIndex = TypeVar("SubIndex")
Row = Mapping[str, object]


class PartitionedIndex(Generic[SubIndex]):
    """Hash layer over categorical attributes with per-group sub-indexes.

    Sub-indexes are built eagerly (one pass over the rows, one factory
    call per distinct category) because the engine rebuilds indexes every
    tick and probes most groups anyway.
    """

    def __init__(
        self,
        rows: Iterable[Row],
        attrs: tuple[str, ...],
        factory: Callable[[list[Row]], SubIndex],
        *,
        row_insert: Callable[[SubIndex, Row], None] | None = None,
        row_delete: Callable[[SubIndex, Row], None] | None = None,
        shard_of: Callable[[Row], int] | None = None,
    ):
        self.attrs = attrs
        self.shard_of = shard_of
        self._factory = factory
        self._row_insert = row_insert
        self._row_delete = row_delete
        #: insert/delete operations since construction; the maintenance
        #: policy compares this against the index size to decide when
        #: accumulated overlay/tombstone weight warrants a full rebuild.
        self.mutations = 0
        groups: dict[tuple[Hashable, ...], list[Row]] = {}
        if shard_of is not None:
            for row in rows:
                key = (shard_of(row),) + tuple(row[a] for a in attrs)
                groups.setdefault(key, []).append(row)
        elif attrs:
            for row in rows:
                key = tuple(row[a] for a in attrs)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = list(rows)
        self._indexes: dict[tuple[Hashable, ...], SubIndex] = {
            key: factory(group_rows) for key, group_rows in groups.items()
        }
        self._sizes = {key: len(rows) for key, rows in groups.items()}

    def probe(self, key: tuple[Hashable, ...]) -> SubIndex | None:
        """The sub-index for *key*, or ``None`` when no rows matched."""
        return self._indexes.get(key)

    def group_size(self, key: tuple[Hashable, ...]) -> int:
        return self._sizes.get(key, 0)

    @property
    def groups(self) -> dict[tuple[Hashable, ...], SubIndex]:
        return self._indexes

    def __len__(self) -> int:
        return sum(self._sizes.values())

    # -- incremental maintenance --------------------------------------------------

    def _cat_key(self, row: Row) -> tuple[Hashable, ...]:
        if self.shard_of is not None:
            return (self.shard_of(row),) + tuple(row[a] for a in self.attrs)
        return tuple(row[a] for a in self.attrs)

    def _sub_insert(self, sub: SubIndex, row: Row) -> None:
        if self._row_insert is not None:
            self._row_insert(sub, row)
        elif isinstance(sub, list):
            sub.append(row)
        else:
            raise TypeError(
                f"no row_insert adapter for sub-index {type(sub).__name__}"
            )

    def _sub_delete(self, sub: SubIndex, row: Row) -> None:
        if self._row_delete is not None:
            self._row_delete(sub, row)
        elif isinstance(sub, list):
            sub.remove(row)  # value equality finds the stored row
        else:
            raise TypeError(
                f"no row_delete adapter for sub-index {type(sub).__name__}"
            )

    def insert(self, row: Row) -> None:
        """Route *row* into its category group, creating it if new."""
        key = self._cat_key(row)
        sub = self._indexes.get(key)
        if sub is None:
            sub = self._factory([])
            self._indexes[key] = sub
            self._sizes[key] = 0
        self._sub_insert(sub, row)
        self._sizes[key] += 1
        self.mutations += 1

    def delete(self, row: Row) -> None:
        """Remove *row* from its group; drop the group when it empties.

        Dropping empty groups keeps probe semantics identical to a fresh
        build, where a category with no rows has no group at all.
        """
        key = self._cat_key(row)
        sub = self._indexes.get(key)
        if sub is None:
            raise KeyError(f"no group {key!r} to delete from")
        self._sub_delete(sub, row)
        self._sizes[key] -= 1
        if self._sizes[key] <= 0:
            del self._indexes[key]
            del self._sizes[key]
        self.mutations += 1

    def update(self, old_row: Row, new_row: Row) -> None:
        """Re-index a changed row, re-routing it if its category moved."""
        self.delete(old_row)
        self.insert(new_row)
