"""Categorical hash layers for degenerate range components.

Section 5.3.1: "In determining the dimension d, we can ignore all
degenerate (i.e. categorical) range components, as those levels of the
tree can be replaced by a hashtable with O(1) look-up."  The paper's
engine does exactly this -- "since the game has only two players and
three unit types, we push selection on player and/or unit type to the
top, giving us a total of 6 range trees".

:class:`PartitionedIndex` groups rows by a tuple of categorical
attributes and builds one sub-index per group through a caller-supplied
factory.  Probing with a category tuple returns the sub-index (or
``None`` for an empty group).
"""

from __future__ import annotations

from typing import Callable, Generic, Hashable, Iterable, Mapping, TypeVar

SubIndex = TypeVar("SubIndex")


class PartitionedIndex(Generic[SubIndex]):
    """Hash layer over categorical attributes with per-group sub-indexes.

    Sub-indexes are built eagerly (one pass over the rows, one factory
    call per distinct category) because the engine rebuilds indexes every
    tick and probes most groups anyway.
    """

    def __init__(
        self,
        rows: Iterable[Mapping[str, object]],
        attrs: tuple[str, ...],
        factory: Callable[[list[Mapping[str, object]]], SubIndex],
    ):
        self.attrs = attrs
        groups: dict[tuple[Hashable, ...], list[Mapping[str, object]]] = {}
        if attrs:
            for row in rows:
                key = tuple(row[a] for a in attrs)
                groups.setdefault(key, []).append(row)
        else:
            groups[()] = list(rows)
        self._indexes: dict[tuple[Hashable, ...], SubIndex] = {
            key: factory(group_rows) for key, group_rows in groups.items()
        }
        self._sizes = {key: len(rows) for key, rows in groups.items()}

    def probe(self, key: tuple[Hashable, ...]) -> SubIndex | None:
        """The sub-index for *key*, or ``None`` when no rows matched."""
        return self._indexes.get(key)

    def group_size(self, key: tuple[Hashable, ...]) -> int:
        return self._sizes.get(key, 0)

    @property
    def groups(self) -> dict[tuple[Hashable, ...], SubIndex]:
        return self._indexes

    def __len__(self) -> int:
        return sum(self._sizes.values())
