"""Read-only queries over a (replicated) environment state.

The spectator protocol's correctness bar is *bit-exactness*: a replica
at epoch ``e`` must answer every query with exactly the value the
authoritative engine would produce for the same query at the same
epoch.  The way this module guarantees that is brutally simple -- there
is **one** evaluation code path, :class:`QueryEngine`, and both sides
run it:

* the :class:`~repro.serve.spectator.SpectatorReplica` keeps one
  long-lived instance whose :class:`~repro.engine.evaluator
  .IndexedEvaluator` and retained kD-tree are *incrementally
  maintained* from the subscription feed's
  :class:`~repro.env.sharding.ReplicaDelta` stream;
* :class:`AuthoritativeQueryService` wraps a live
  :class:`~repro.engine.clock.SimulationEngine` with a rebuild-mode
  instance over the engine's own environment.

Incrementally-maintained and freshly-built index structures answer
identically (the equivalence property the repo's maintenance tests
assert, exact whenever measure sums are exact in floating point), so
the two sides agree bit for bit.

Query kinds (the wire vocabulary of :class:`QueryRequest`):

``aggregate``
    A registered SGL aggregate function by name (e.g. the battle's
    ``CountFriendlyKnights``), evaluated through the index-backed
    evaluator.  Arguments may reference replica rows via
    :func:`unit_ref`.
``sgl``
    An aggregate *compiled from source* -- the client ships a
    ``function F(...) returns SELECT ...`` definition in the paper's
    restricted SQL fragment; the engine compiles it once (cached by
    source text), classifies its shape, and probes/retains exactly the
    index the shape calls for.
``team_counts`` / ``hp_histogram``
    Canned aggregates over a categorical attribute / bucketed numeric
    attribute.
``knn``
    The *k* nearest units to a point, served from a retained kD-tree
    by repeated ``(distance², key)``-ordered extraction -- the spatial
    query family of Section 5.3.2 generalised from the scripts'
    nearest-1 probes.

Answers are converted to plain Python data (:func:`plain_value`) so
they pickle safely across the wire and compare with ``==``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from ..engine.evaluator import IndexedEvaluator
from ..env.table import EnvironmentTable, TableDelta
from ..indexes.kdtree import KDTree
from ..obs import StatCounters
from ..sgl.builtins import AggregateFunction, FunctionRegistry
from ..sgl.errors import SglError
from ..sgl.evalterm import EvalContext
from ..sgl.sqlspec import SqlAggregateSpec, parse_sql_function
from ..sgl.values import Record, Vec

if TYPE_CHECKING:  # pragma: no cover
    from ..engine.clock import SimulationEngine
    from ..env.schema import Schema


class QueryError(ValueError):
    """A malformed or unanswerable read-only query."""


#: Names the short-form client API treats as canned query kinds.
CANNED_KINDS = frozenset({"team_counts", "hp_histogram", "knn"})

#: Marker tuple tag for arguments that reference a replica row by key.
_UNIT_REF = "$unit"


def unit_ref(key: object) -> tuple[str, object]:
    """An argument placeholder resolved to the replica's row for *key*.

    Lets a client call unit-parameterised aggregates (``NearestEnemy(u)``)
    without holding the row: the replica substitutes its own current row
    at the pinned epoch, so the probe sees exactly the state the epoch
    describes.
    """
    return (_UNIT_REF, key)


@dataclass(frozen=True)
class QueryRequest:
    """Wire form of one read-only query.

    *epoch* pins the answer: ``"latest"`` answers at whatever epoch the
    replica holds, an integer waits for (exactly) that epoch and fails
    if the replica has already moved past it.
    """

    kind: str  # "aggregate" | "sgl" | a canned kind
    name: str | None = None  # registered aggregate name (kind="aggregate")
    source: str | None = None  # SQL function text (kind="sgl")
    args: tuple = ()
    params: tuple = ()  # canned-kind options, as sorted (key, value) pairs
    epoch: object = "latest"

    def param(self, key: str, default: object = None) -> object:
        for k, v in self.params:
            if k == key:
                return v
        return default


@dataclass(frozen=True)
class QueryAnswer:
    """A query result pinned to the epoch it was answered at."""

    epoch: int
    value: object


def build_request(
    source_or_name: str,
    args: tuple = (),
    *,
    epoch: object = "latest",
    **params: object,
) -> QueryRequest:
    """The client-side sugar: classify *source_or_name* into a kind.

    A string starting with ``function`` is compiled SGL source; a canned
    kind's name selects it; anything else names a registered aggregate.
    """
    packed = tuple(sorted(params.items()))
    if source_or_name.lstrip().startswith("function"):
        return QueryRequest(
            kind="sgl",
            source=source_or_name,
            args=tuple(args),
            params=packed,
            epoch=epoch,
        )
    if source_or_name in CANNED_KINDS:
        return QueryRequest(
            kind=source_or_name, args=tuple(args), params=packed, epoch=epoch
        )
    return QueryRequest(
        kind="aggregate",
        name=source_or_name,
        args=tuple(args),
        params=packed,
        epoch=epoch,
    )


def plain_value(value: object) -> object:
    """Strip SGL runtime types down to picklable, ``==``-comparable data."""
    if isinstance(value, Record):
        return {k: plain_value(v) for k, v in value.as_dict().items()}
    if isinstance(value, Vec):
        return list(value.items)
    if isinstance(value, Mapping):
        return {k: plain_value(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [plain_value(v) for v in value]
    return value


def _no_query_random(row, i):  # pragma: no cover - guarded by analysis
    raise QueryError(
        "Random is not available in read-only spectator queries; "
        "query results must be pure functions of the pinned epoch"
    )


#: Retained-kD-tree rebuild policy: mirror the evaluator's overlay
#: budget (mutations beyond half the tree, floor 32, force a rebuild).
_TREE_MUTATION_FLOOR = 32
_TREE_MUTATION_BUDGET = 0.5


@dataclass
class _RetainedTree:
    tree: KDTree
    mutations: int = 0


class QueryEngine:
    """Evaluates :class:`QueryRequest`\\ s against one environment state.

    ``maintenance="incremental"`` (the replica side) retains the
    evaluator's index structures and the k-NN tree across
    :meth:`begin` calls and patches them with each delta;
    ``maintenance="rebuild"`` (the authoritative side) discards and
    lazily rebuilds per state -- both answer identically.
    """

    def __init__(
        self,
        schema: "Schema",
        registry: FunctionRegistry,
        *,
        maintenance: str = "incremental",
    ):
        self.schema = schema
        self.registry = registry
        self.evaluator = IndexedEvaluator(
            registry, key_attr=schema.key, maintenance=maintenance
        )
        self._env: EnvironmentTable | None = None
        self._by_key: dict[object, dict[str, object]] | None = None
        self._sgl: dict[str, AggregateFunction] = {}
        self._knn: _RetainedTree | None = None
        # a plain dict to callers; bindable to a metrics registry (the
        # spectator's REQ_METRICS pull populates one on demand)
        self.stats = StatCounters(prefix="queries")

    # -- state lifecycle ----------------------------------------------------------

    def begin(
        self, env: EnvironmentTable, delta: TableDelta | None = None
    ) -> None:
        """Adopt a new environment state.

        *delta* is the change set from the previously-begun state (the
        replica's :meth:`~repro.env.sharding.ReplicaTable.apply_delta`
        result); ``None`` means a discontinuity (snapshot), which drops
        every retained structure for lazy rebuild.
        """
        self.evaluator.begin_tick(env, (), delta=delta)
        self._env = env
        self._by_key = None  # rebuilt lazily; rows may be brand new dicts
        self._maintain_knn(delta)

    def _maintain_knn(self, delta: TableDelta | None) -> None:
        retained = self._knn
        if retained is None:
            return
        if delta is None:
            self._knn = None
            return
        tree = retained.tree
        key_attr = self.schema.key
        ok = True
        for row in delta.inserted:
            tree.insert((row["posx"], row["posy"]), row)
        for row in delta.deleted:
            row_key = row[key_attr]
            ok &= tree.delete(
                (row["posx"], row["posy"]),
                lambda item: item[key_attr] == row_key,
            )
        for old, new in delta.updated:
            row_key = old[key_attr]
            if old["posx"] == new["posx"] and old["posy"] == new["posy"]:
                ok &= tree.replace_item(
                    (old["posx"], old["posy"]),
                    lambda item: item[key_attr] == row_key,
                    new,
                )
            else:
                ok &= tree.delete(
                    (old["posx"], old["posy"]),
                    lambda item: item[key_attr] == row_key,
                )
                tree.insert((new["posx"], new["posy"]), new)
        retained.mutations += delta.changed
        budget = max(
            _TREE_MUTATION_FLOOR, int(_TREE_MUTATION_BUDGET * len(tree))
        )
        if not ok or retained.mutations > budget:
            # a row the tree does not hold means drift; over-budget means
            # tombstone weight -- either way rebuild lazily on next probe
            self._knn = None
            self._bump("knn_rebuilds")

    # -- answering ----------------------------------------------------------------

    def answer(self, request: QueryRequest) -> object:
        """Evaluate one request; returns a plain-data value.

        Raises :class:`QueryError` (or an SGL compile error wrapped in
        one) for malformed queries; never mutates the environment.
        """
        if self._env is None:
            raise QueryError("no environment state adopted yet")
        kind = request.kind
        self._bump("queries")
        if kind == "aggregate":
            fn = self.registry.aggregates.get(request.name or "")
            if fn is None:
                raise QueryError(
                    f"unknown aggregate function {request.name!r}"
                )
            return self._eval_aggregate(fn, request.args)
        if kind == "sgl":
            return self._eval_aggregate(
                self._compile_sgl(request.source or ""), request.args
            )
        if kind == "team_counts":
            return self._eval_group_counts(
                str(request.param("attr", "player"))
            )
        if kind == "hp_histogram":
            return self._eval_histogram(
                str(request.param("attr", "health")),
                request.param("bucket", 10),
            )
        if kind == "knn":
            return self._eval_knn(request)
        raise QueryError(f"unknown query kind {kind!r}")

    # -- SGL aggregates (registered and compiled-from-source) ---------------------

    def _compile_sgl(self, source: str) -> AggregateFunction:
        fn = self._sgl.get(source)
        if fn is None:
            try:
                parsed = parse_sql_function(source)
            except SglError as exc:
                raise QueryError(f"cannot compile query source: {exc}") from exc
            if not isinstance(parsed.spec, SqlAggregateSpec):
                raise QueryError(
                    f"{parsed.name!r} is an action function; spectator "
                    "queries are read-only aggregates"
                )
            # mangled name: compiled queries must never collide with each
            # other (or a registered function) in the evaluator's
            # per-name retained-index caches
            fn = AggregateFunction(
                name=f"{parsed.name}@sgl{len(self._sgl)}",
                params=parsed.params,
                spec=parsed.spec,
            )
            self._sgl[source] = fn
            self._bump("sgl_compiled")
        return fn

    def _resolve_args(self, args: tuple) -> list[object]:
        out = []
        for arg in args:
            if (
                isinstance(arg, tuple)
                and len(arg) == 2
                and arg[0] == _UNIT_REF
            ):
                if self._by_key is None:
                    try:
                        self._by_key = self._env.by_key()
                    except ValueError as exc:
                        raise QueryError(str(exc)) from exc
                row = self._by_key.get(arg[1])
                if row is None:
                    raise QueryError(
                        f"no unit with key {arg[1]!r} at this epoch"
                    )
                out.append(row)
            else:
                out.append(arg)
        return out

    def _eval_aggregate(self, fn: AggregateFunction, args: tuple) -> object:
        resolved = self._resolve_args(args)
        if len(resolved) != len(fn.params):
            raise QueryError(
                f"{fn.name} expects {len(fn.params)} args, "
                f"got {len(resolved)}"
            )
        ctx = EvalContext(
            env=self._env,
            registry=self.registry,
            agg_eval=self.evaluator,
            rng=_no_query_random,
            bindings={},
            unit=None,
        )
        try:
            value = self.evaluator.evaluate(fn, resolved, ctx)
        except SglError as exc:
            raise QueryError(f"query evaluation failed: {exc}") from exc
        return plain_value(value)

    # -- canned aggregates --------------------------------------------------------

    def _eval_group_counts(self, attr: str) -> list:
        if attr not in self.schema:
            raise QueryError(f"unknown attribute {attr!r}")
        counts: dict[object, int] = {}
        for row in self._env.rows:
            value = row[attr]
            counts[value] = counts.get(value, 0) + 1
        return [[value, counts[value]] for value in sorted(counts)]

    def _eval_histogram(self, attr: str, bucket: object) -> list:
        if attr not in self.schema:
            raise QueryError(f"unknown attribute {attr!r}")
        if not isinstance(bucket, (int, float)) or bucket <= 0:
            raise QueryError(f"bucket must be a positive number, got {bucket!r}")
        counts: dict[int, int] = {}
        for row in self._env.rows:
            index = int(row[attr] // bucket)
            counts[index] = counts.get(index, 0) + 1
        return [
            [index * bucket, counts[index]] for index in sorted(counts)
        ]

    # -- spatial k-NN -------------------------------------------------------------

    def _eval_knn(self, request: QueryRequest) -> list:
        args = request.args
        if len(args) != 3:
            raise QueryError("knn expects args (k, x, y)")
        k, x, y = args
        if not isinstance(k, int) or k < 1:
            raise QueryError(f"k must be a positive int, got {k!r}")
        retained = self._knn
        if retained is None:
            rows = self._env.rows
            retained = _RetainedTree(
                KDTree([(r["posx"], r["posy"]) for r in rows], rows)
            )
            self._knn = retained
            self._bump("knn_builds")
        key_attr = self.schema.key
        tree = retained.tree
        chosen: list[list] = []
        chosen_keys: set = set()

        def exclude(row) -> bool:
            return row[key_attr] in chosen_keys

        tie_key = lambda row: row[key_attr]  # noqa: E731
        # repeated (dist², key)-minimal extraction == the k smallest
        # (dist², key) pairs, the same order a full scan would sort by
        for _ in range(k):
            found = tree.nearest((x, y), exclude=exclude, tie_key=tie_key)
            if found is None:
                break
            row, dist_sq = found
            chosen_keys.add(row[key_attr])
            chosen.append([row[key_attr], dist_sq])
        self._bump("knn_probes")
        return chosen

    def _bump(self, counter: str) -> None:
        self.stats.bump(counter)


class AuthoritativeQueryService:
    """The authoritative twin: answers wire queries from a live engine.

    Used by benchmarks and tests to produce the ground truth a replica's
    answer must match bit for bit, and by applications that want the
    same query API without a replica.  The engine's current state is
    epoch ``tick_count + 1`` (the state the *next* tick's decisions
    would read -- exactly what the publisher streams after each tick).
    """

    def __init__(self, engine: "SimulationEngine"):
        self.engine = engine
        self._qe = QueryEngine(
            engine.env.schema, engine.registry, maintenance="rebuild"
        )
        self._epoch: int | None = None

    def answer(
        self,
        source_or_name: str,
        *args: object,
        **params: object,
    ) -> QueryAnswer:
        request = build_request(source_or_name, tuple(args), **params)
        epoch = self.engine.tick_count + 1
        if epoch != self._epoch:
            self._qe.begin(self.engine.env)
            self._epoch = epoch
        return QueryAnswer(epoch=epoch, value=self._qe.answer(request))
