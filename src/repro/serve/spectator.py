"""The spectator read replica: a query server fed by the replica stream.

:class:`SpectatorReplica` spawns a server *process* that

* subscribes to a :class:`~repro.serve.publisher.ReplicaPublisher` over
  :class:`~repro.serve.transport.SocketTransport` and maintains a
  :class:`~repro.env.sharding.ReplicaTable` copy of ``E`` from the
  epoch-versioned snapshot/delta stream (late join, stale epoch, and
  dropped-feed handling exactly as the shard workers do it);
* feeds every applied delta to a long-lived
  :class:`~repro.serve.queries.QueryEngine`, whose aggregate index
  structures and k-NN tree are *incrementally maintained* across epochs
  instead of rebuilt per query;
* listens on its own loopback/TCP port and answers
  :class:`~repro.serve.queries.QueryRequest`\\ s from any number of
  :class:`SpectatorClient`\\ s, each answer pinned to one consistent
  replica epoch -- queries interleave with feed updates in a single
  event loop, so an answer can never observe a half-applied tick.

Epoch pinning: ``epoch="latest"`` answers at whatever epoch the replica
holds; an integer epoch parks the request until the feed reaches that
epoch (bounded by the request's timeout).  An epoch the replica has
already advanced past is answered by **time travel**: the spectator
retains a bounded :class:`~repro.persist.history.EpochHistory` of
applied updates (checkpoints every ``history_checkpoint_every`` epochs,
the last ``history_retain`` epochs kept), reconstructs the rows at the
pinned epoch by replaying forward from the nearest checkpoint, and
answers through the same :class:`~repro.serve.queries.QueryEngine` path
as live queries -- so historical answers are bit-identical to what the
authoritative engine answered at that epoch.  Epochs older than the
retained span fail loudly.

The simulation never blocks on spectators: the publisher's send is the
only coupling, and a slow or dead spectator is dropped there.
"""

from __future__ import annotations

import selectors
import time
import traceback
from dataclasses import dataclass

from ..env.sharding import (
    NO_REPLICA,
    UPDATE_SNAPSHOT,
    ReplicaTable,
    StaleReplicaError,
)
from ..env.table import EnvironmentTable
from .publisher import SUB_STALE
from .queries import QueryAnswer, QueryError, build_request
from .transport import DEFAULT_MAX_FRAME, FrameError, SocketTransport

#: Client -> spectator request tags.
REQ_QUERY = "query"
REQ_STATUS = "status"
REQ_METRICS = "metrics"  # pull-model observability view
REQ_SET_EPOCH = "set_epoch"  # fault-injection hook (tests/chaos drills)
REQ_STOP = "stop"

#: Spectator -> client reply tags.
RESP_OK = "ok"
RESP_ERROR = "error"

#: How long a pinned-epoch query may park awaiting its epoch (seconds);
#: clients may override per request.
DEFAULT_QUERY_TIMEOUT = 30.0


class SpectatorError(RuntimeError):
    """A spectator request failed (server-side error string attached)."""


@dataclass
class _PendingQuery:
    """A pinned-epoch query parked until the feed catches up."""

    transport: SocketTransport
    request: object
    deadline: float


class _SpectatorServer:
    """The in-process event loop behind a spawned spectator replica."""

    def __init__(self, game, payload: dict, publisher_address):
        import socket

        from .queries import QueryEngine

        self.game = game
        max_frame = int(payload.get("max_frame", DEFAULT_MAX_FRAME))
        self.replica = ReplicaTable(game.schema.key)
        self.engine = QueryEngine(
            game.schema, game.registry, maintenance="incremental"
        )
        # bounded epoch history for time-travel queries; retain=0 turns
        # it off (superseded-epoch pins then fail as they always did)
        retain = int(payload.get("history_retain", 256))
        self.history = None
        if retain > 0:
            from ..persist.history import EpochHistory

            self.history = EpochHistory(
                game.schema.key,
                checkpoint_every=int(
                    payload.get("history_checkpoint_every", 32)
                ),
                retain=retain,
            )
        #: Lazily-built query engine over one reconstructed historical
        #: epoch; cached so repeated queries at the same epoch replay
        #: (and rebuild indexes) once.
        self._history_engine: tuple[int, QueryEngine] | None = None
        # a finite feed timeout keeps the single-threaded event loop
        # unwedgeable: a publisher that stalls mid-frame (half-open
        # connection, network partition) surfaces as a transport error
        # and the replica keeps serving its last epoch, mirroring the
        # publisher's own send-timeout guard on the other side
        self.feed = SocketTransport.connect(
            tuple(publisher_address),
            max_frame=max_frame,
            timeout=float(payload.get("feed_timeout", 60.0)),
        )
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind((payload.get("host", "127.0.0.1"), 0))
        listener.listen(16)
        listener.setblocking(False)
        self.listener = listener
        self.address = listener.getsockname()[:2]
        self.max_frame = max_frame
        self.feed_alive = True
        self.pending: list[_PendingQuery] = []
        self.updates_applied = 0
        self.snapshots_applied = 0
        self.stale_reports = 0

    # -- feed handling ------------------------------------------------------------

    def apply_update(self, update) -> None:
        """Apply one snapshot/delta blob to the replica and the indexes."""
        if update[0] == UPDATE_SNAPSHOT:
            _, epoch, rows, _shard_conf = update
            # shard_conf is ignored: the spectator's evaluator is flat,
            # and index answers are shard-layout independent anyway
            self.replica.apply_snapshot(epoch, rows)
            self.engine.begin(self._replica_env(), delta=None)
            self.snapshots_applied += 1
            if self.history is not None:
                self.history.record_snapshot(epoch, self.replica.rows)
        else:
            rd = update[1]
            try:
                table_delta = self.replica.apply_delta(rd)
            except StaleReplicaError:
                # can't absorb this delta; drop the replica (it may have
                # half-applied) and ask the publisher for a snapshot
                self.replica.invalidate()
                self.stale_reports += 1
                self.feed.send((SUB_STALE, NO_REPLICA))
                return
            self.engine.begin(self._replica_env(), delta=table_delta)
            if self.history is not None:
                # safe to retain by reference: delta application never
                # mutates a row in place, so epoch-k row objects stay
                # the epoch-k state forever
                self.history.record_delta(rd, self.replica.rows)
        self.updates_applied += 1

    def _replica_env(self) -> EnvironmentTable:
        env = EnvironmentTable(self.game.schema)
        env.rows.extend(self.replica.rows)
        return env

    def drain_feed(self) -> None:
        while self.feed_alive and self.feed.poll(0.0):
            try:
                self.apply_update(self.feed.recv())
            except (EOFError, OSError):
                # publisher gone: keep answering at the last held epoch
                self.feed_alive = False

    # -- request handling ---------------------------------------------------------

    def handle_request(self, transport: SocketTransport, message) -> bool:
        """Serve one client message; returns False when asked to stop."""
        tag = message[0] if isinstance(message, tuple) and message else None
        if tag == REQ_QUERY:
            request = message[1]
            deadline = time.monotonic() + float(
                message[2] if len(message) > 2 else DEFAULT_QUERY_TIMEOUT
            )
            if not self._try_answer(transport, request):
                self.pending.append(
                    _PendingQuery(transport, request, deadline)
                )
            return True
        if tag == REQ_STATUS:
            transport.send(
                (
                    RESP_OK,
                    {
                        "epoch": self.replica.epoch,
                        "rows": len(self.replica.rows),
                        "feed_alive": self.feed_alive,
                        "updates_applied": self.updates_applied,
                        "snapshots_applied": self.snapshots_applied,
                        "stale_reports": self.stale_reports,
                        "engine_stats": dict(self.engine.stats),
                        "evaluator_stats": dict(self.engine.evaluator.stats),
                        "history_span": (
                            None if self.history is None else self.history.span()
                        ),
                    },
                )
            )
            return True
        if tag == REQ_METRICS:
            registry = self._metrics_registry()
            transport.send(
                (
                    RESP_OK,
                    {
                        "snapshot": registry.snapshot(),
                        "prometheus": registry.render_prometheus(),
                    },
                )
            )
            return True
        if tag == REQ_SET_EPOCH:  # fault injection: pretend to drift
            self.replica.epoch = message[1]
            transport.send((RESP_OK, self.replica.epoch))
            return True
        if tag == REQ_STOP:
            transport.send((RESP_OK, None))
            return False
        transport.send((RESP_ERROR, f"unknown request {tag!r}"))
        return True

    def _metrics_registry(self):
        """Build the pull-model metrics view of this replica.

        The replica's hot path (feed application, query answering)
        records nothing extra; each ``REQ_METRICS`` populates a fresh
        registry from the counters the server already keeps -- zero
        steady-state cost, paid only by the scraper.
        """
        from ..obs import MetricsRegistry

        registry = MetricsRegistry()
        registry.gauge("spectator_epoch").set(self.replica.epoch)
        registry.gauge("spectator_rows").set(len(self.replica.rows))
        registry.gauge("spectator_feed_alive").set(int(self.feed_alive))
        registry.counter("spectator_updates_applied_total").inc(
            self.updates_applied
        )
        registry.counter("spectator_snapshots_applied_total").inc(
            self.snapshots_applied
        )
        registry.counter("spectator_stale_reports_total").inc(
            self.stale_reports
        )
        for key, value in self.engine.stats.items():
            registry.counter(f"queries_{key}").value = value
        for key, value in self.engine.evaluator.stats.items():
            registry.counter(f"evaluator_{key}").value = value
        return registry

    def _try_answer(self, transport: SocketTransport, request) -> bool:
        """Answer now if the pinned epoch allows it; True when replied."""
        held = self.replica.epoch
        wanted = getattr(request, "epoch", "latest")
        if wanted == "latest":
            if held == NO_REPLICA:
                return False  # no replica yet: park until the first feed
        elif not isinstance(wanted, int):
            self._send_reply(
                transport, (RESP_ERROR, f"bad epoch {wanted!r}")
            )
            return True
        elif held == NO_REPLICA or held < wanted:
            return False  # park until the feed reaches the epoch
        elif held > wanted:
            # time travel: the live replica moved past the pinned epoch,
            # but the retained history may still reconstruct it
            self._answer_historical(transport, request, wanted, held)
            return True
        try:
            value = self.engine.answer(request)
            reply = (RESP_OK, QueryAnswer(epoch=self.replica.epoch, value=value))
        except QueryError as exc:
            reply = (RESP_ERROR, str(exc))
        except Exception:  # noqa: BLE001 - surface, never kill the loop
            reply = (RESP_ERROR, traceback.format_exc())
        self._send_reply(transport, reply)
        return True

    def _answer_historical(
        self, transport: SocketTransport, request, wanted: int, held: int
    ) -> None:
        """Answer a query pinned to an epoch the replica moved past.

        Reconstructs the rows at *wanted* from the retained history
        (nearest checkpoint + deltas forward -- the same replica
        machinery the live feed uses) and evaluates through a
        rebuild-mode :class:`~repro.serve.queries.QueryEngine` over
        them: the identical evaluation path as a live answer, hence
        bit-identical to what the authoritative engine answered at that
        epoch.
        """
        history = self.history
        if history is None or not history.covers(wanted):
            span = None if history is None else history.span()
            retained = (
                "history disabled (history_retain=0)"
                if history is None
                else f"history retains epochs {span[0]}..{span[1]}"
                if span
                else "history is empty"
            )
            self._send_reply(
                transport,
                (
                    RESP_ERROR,
                    f"epoch {wanted} already superseded (replica at "
                    f"{held}) and not reconstructible: {retained}",
                ),
            )
            return
        try:
            engine = self._engine_at(wanted)
            value = engine.answer(request)
            reply = (RESP_OK, QueryAnswer(epoch=wanted, value=value))
        except QueryError as exc:
            reply = (RESP_ERROR, str(exc))
        except Exception:  # noqa: BLE001 - surface, never kill the loop
            reply = (RESP_ERROR, traceback.format_exc())
        self._send_reply(transport, reply)

    def _engine_at(self, epoch: int):
        """A query engine over the reconstructed rows at *epoch* (cached)."""
        from .queries import QueryEngine

        cached = self._history_engine
        if cached is not None and cached[0] == epoch:
            return cached[1]
        rows = self.history.reconstruct(epoch)
        env = EnvironmentTable(self.game.schema)
        env.rows.extend(rows)
        engine = QueryEngine(
            self.game.schema, self.game.registry, maintenance="rebuild"
        )
        engine.begin(env, delta=None)
        self._history_engine = (epoch, engine)
        return engine

    def _send_reply(self, transport: SocketTransport, reply) -> None:
        try:
            transport.send(reply)
        except (EOFError, OSError):
            pass  # client went away; its selector entry cleans up on read

    def retry_pending(self) -> None:
        now = time.monotonic()
        still: list[_PendingQuery] = []
        for item in self.pending:
            if self._try_answer(item.transport, item.request):
                continue
            if now >= item.deadline:
                self._send_reply(
                    item.transport,
                    (
                        RESP_ERROR,
                        f"timed out waiting for epoch "
                        f"{getattr(item.request, 'epoch', 'latest')!r} "
                        f"(replica at {self.replica.epoch}, feed "
                        f"{'alive' if self.feed_alive else 'closed'})",
                    ),
                )
                continue
            still.append(item)
        self.pending = still

    # -- the event loop -----------------------------------------------------------

    def run(self) -> None:
        sel = selectors.DefaultSelector()
        sel.register(self.feed, selectors.EVENT_READ, "feed")
        sel.register(self.listener, selectors.EVENT_READ, "accept")
        running = True
        while running:
            timeout = 0.05 if self.pending else 0.5
            for key, _ in sel.select(timeout):
                what = key.data
                if what == "feed":
                    self.drain_feed()
                    if not self.feed_alive:
                        sel.unregister(self.feed)
                        self.feed.close()
                elif what == "accept":
                    try:
                        sock, _addr = self.listener.accept()
                    except (BlockingIOError, InterruptedError):
                        continue
                    client = SocketTransport(
                        sock, max_frame=self.max_frame, timeout=30.0
                    )
                    sel.register(client, selectors.EVENT_READ, ("client", client))
                else:
                    _, client = what
                    try:
                        message = client.recv()
                    except (FrameError, EOFError, OSError):
                        sel.unregister(client)
                        client.close()
                        self.pending = [
                            p for p in self.pending if p.transport is not client
                        ]
                        continue
                    if not self.handle_request(client, message):
                        running = False
            self.retry_pending()
        sel.close()
        if self.feed_alive:
            self.feed.close()
        self.listener.close()


def _spectator_main(factory, payload: dict, publisher_address, ready_conn):
    """Entry point of the spawned spectator process."""
    try:
        server = _SpectatorServer(factory(), payload, publisher_address)
    except BaseException:
        try:
            ready_conn.send(("error", traceback.format_exc()))
        finally:
            ready_conn.close()
        return
    ready_conn.send(("ready", server.address))
    ready_conn.close()
    try:
        server.run()
    except KeyboardInterrupt:  # pragma: no cover - parent teardown
        pass


class SpectatorReplica:
    """Parent-side handle of a spawned spectator replica process."""

    def __init__(self, process, address: tuple[str, int]):
        self.process = process
        self.address = address

    @classmethod
    def spawn(
        cls,
        publisher_address: tuple[str, int],
        factory,
        *,
        payload: dict | None = None,
        mp_context=None,
        startup_timeout: float = 30.0,
    ) -> "SpectatorReplica":
        """Start a spectator subscribed to *publisher_address*.

        *factory* is the same picklable game factory the worker pool
        uses (a module-level callable returning a
        :class:`~repro.engine.shardexec.WorkerGame`); the spectator
        builds its registry and schema from it inside the process.
        """
        import multiprocessing

        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn"
            )
        parent_conn, child_conn = mp_context.Pipe()
        process = mp_context.Process(
            target=_spectator_main,
            args=(factory, payload or {}, publisher_address, child_conn),
            daemon=True,
        )
        process.start()
        child_conn.close()
        if not parent_conn.poll(startup_timeout):
            process.terminate()
            raise SpectatorError("spectator replica did not start in time")
        tag, value = parent_conn.recv()
        parent_conn.close()
        if tag != "ready":
            process.join(timeout=5)
            raise SpectatorError(f"spectator replica failed to start:\n{value}")
        return cls(process, tuple(value))

    def client(self, **kwargs) -> "SpectatorClient":
        return SpectatorClient(self.address, **kwargs)

    def kill(self) -> None:
        """Hard-kill the process (fault-injection drills)."""
        self.process.kill()
        self.process.join(timeout=5)

    def close(self) -> None:
        """Stop the server (graceful request, then terminate fallback)."""
        if not self.process.is_alive():
            return
        try:
            with SpectatorClient(self.address, timeout=5.0) as client:
                client.stop_server()
        except (SpectatorError, OSError, EOFError):
            pass
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - stuck server
            self.process.terminate()
            self.process.join(timeout=5)

    def __enter__(self) -> "SpectatorReplica":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SpectatorClient:
    """Request/response client for one spectator replica.

    ``query`` accepts a registered aggregate name, a canned kind
    (``team_counts`` / ``hp_histogram`` / ``knn``), or SGL source text
    (``function F(...) returns SELECT ...``), plus positional arguments
    (use :func:`~repro.serve.queries.unit_ref` for row-valued ones) and
    an *epoch* pin.  Returns a
    :class:`~repro.serve.queries.QueryAnswer` carrying the value and
    the epoch it was answered at.
    """

    def __init__(
        self,
        address: tuple[str, int],
        *,
        timeout: float = DEFAULT_QUERY_TIMEOUT,
        max_frame: int = DEFAULT_MAX_FRAME,
    ):
        self.timeout = timeout
        self._transport = SocketTransport.connect(
            tuple(address), max_frame=max_frame, timeout=timeout + 5.0
        )

    def _round_trip(self, message, wait: float | None = None):
        """One request/reply exchange.

        The socket timeout always out-waits the server's own deadline
        (*wait* + grace), so the server's timed-out-reply error arrives
        instead of a client-side timeout.  If the socket does time out
        anyway (dead server, stalled link), the connection is closed:
        a late reply landing on a reused stream would desynchronize
        request/reply pairing and hand back an answer for the wrong
        query.
        """
        if wait is not None:
            self._transport.settimeout(wait + 5.0)
        try:
            self._transport.send(message)
            reply = self._transport.recv()
        except TimeoutError:
            self._transport.close()
            raise SpectatorError(
                "spectator did not reply in time; connection closed "
                "(a reply may still be in flight and cannot be re-paired)"
            ) from None
        except FrameError as exc:
            # a torn or desynced frame poisons request/reply pairing the
            # same way a late reply does: close rather than resync
            self._transport.close()
            raise SpectatorError(
                f"spectator stream desynchronized ({exc}); connection closed"
            ) from None
        tag = reply[0]
        if tag == RESP_ERROR:
            raise SpectatorError(reply[1])
        if tag != RESP_OK:  # pragma: no cover - protocol bug
            raise SpectatorError(f"unexpected reply tag {tag!r}")
        return reply[1]

    def query(
        self,
        source_or_name: str,
        *args: object,
        epoch: object = "latest",
        timeout: float | None = None,
        **params: object,
    ) -> QueryAnswer:
        request = build_request(
            source_or_name, tuple(args), epoch=epoch, **params
        )
        wait = timeout if timeout is not None else self.timeout
        return self._round_trip((REQ_QUERY, request, wait), wait=wait)

    def status(self) -> dict:
        return self._round_trip((REQ_STATUS,))

    def metrics(self) -> dict:
        """The replica's live metrics view: ``{"snapshot": {series ->
        value}, "prometheus": <text exposition>}`` -- populated on
        demand server-side, so scraping costs the replica nothing
        between requests."""
        return self._round_trip((REQ_METRICS,))

    def debug_set_epoch(self, epoch: int) -> int:
        """Fault injection: drift the replica's believed epoch."""
        return self._round_trip((REQ_SET_EPOCH, epoch))

    def stop_server(self) -> None:
        self._round_trip((REQ_STOP,))

    def close(self) -> None:
        self._transport.close()

    def __enter__(self) -> "SpectatorClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
