"""``repro.serve`` -- the spectator read-replica serving layer.

PR 3 turned the process-worker protocol into an epoch-versioned
replication layer (:class:`~repro.env.sharding.ReplicaDelta` broadcasts,
snapshot catch-up, epoch acks) over local pipes.  This package lifts
that protocol onto a pluggable transport and serves *read-only queries*
from replicas, so heavy read traffic never touches the simulation
process:

* :mod:`repro.serve.transport` -- the :class:`Transport` abstraction:
  :class:`PipeTransport` (the worker pool's multiprocessing pipes) and
  :class:`SocketTransport` (length-prefix-framed TCP with a protocol
  version byte and a max-frame-size guard);
* :mod:`repro.serve.publisher` -- :class:`ReplicaPublisher`, the
  coordinator-side subscription feed the engine's publish stage drives:
  late joiners get a snapshot, live subscribers get the per-tick delta,
  and every fault path (stale epoch, dropped socket, bad peer) degrades
  to a snapshot or a dropped subscriber -- never a wedged publisher;
* :mod:`repro.serve.queries` -- :class:`QueryEngine`, the read-only
  query surface (compiled SGL aggregates, canned team counts / HP
  histograms, spatial k-NN) shared verbatim by the replica and the
  authoritative engine, which is what makes replica answers bit-exact;
* :mod:`repro.serve.spectator` -- the :class:`SpectatorReplica` server
  process (a replica of ``E`` plus retained incrementally-maintained
  indexes, answering queries pinned to a consistent tick epoch) and the
  :class:`SpectatorClient` request/response API.

Trust model: frames carry pickles, so the serving layer is for loopback
and trusted networks only (same as multiprocessing pipes).  The frame
guard protects the *publisher process* from malformed or oversized
frames wedging it, not the unpickling endpoint from hostile payloads.

Submodules load lazily (PEP 562): the worker pool imports
``repro.serve.transport`` while this package's heavier modules import
the engine, and eager re-exports would tie that knot into a cycle.
"""

from importlib import import_module

#: Public name -> defining submodule.
_EXPORTS = {
    "AuthoritativeQueryService": "queries",
    "FrameError": "transport",
    "PipeTransport": "transport",
    "PublisherStats": "publisher",
    "QueryAnswer": "queries",
    "QueryEngine": "queries",
    "QueryError": "queries",
    "QueryRequest": "queries",
    "ReplicaPublisher": "publisher",
    "SocketTransport": "transport",
    "SpectatorClient": "spectator",
    "SpectatorError": "spectator",
    "SpectatorReplica": "spectator",
    "Transport": "transport",
    "TransportError": "transport",
    "unit_ref": "queries",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(import_module(f".{module}", __name__), name)
    globals()[name] = value  # cache: resolve each name at most once
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
