"""The pluggable message transport under the replica protocols.

PR 3's replica protocol (epoch-versioned
:class:`~repro.env.sharding.ReplicaDelta` broadcasts with snapshot
catch-up) was built directly on multiprocessing pipes.  This module
extracts the one thing the protocol actually needs from its medium --
*send a message, receive a message, fail loudly when the peer is gone*
-- behind :class:`Transport`, with two implementations:

* :class:`PipeTransport` wraps a ``multiprocessing.connection``
  Connection: the worker pool's original medium, kept for same-host
  worker processes;
* :class:`SocketTransport` frames messages over any ``SOCK_STREAM``
  socket (TCP/loopback or a socketpair) so the same blobs can leave the
  machine.  Pipes are a trusted, kernel-framed channel; a socket is
  neither, so every frame is prefixed with a **protocol version byte**
  (a peer speaking a different wire format is detected on the first
  frame, not by an unpickling crash halfway through a delta) and a
  4-byte length that is validated against a **maximum frame size**
  before a single payload byte is read -- a bad or byzantine peer can
  neither wedge the publisher behind a never-completing frame nor make
  it allocate an absurd buffer.

Error taxonomy (shared by both transports so protocol code can be
medium-blind):

* ``EOFError`` -- the peer closed cleanly between frames;
* ``OSError`` (``BrokenPipeError``, ``ConnectionResetError``,
  ``TimeoutError``, ...) -- the medium failed;
* :class:`FrameError` -- the peer violated the framing contract
  (version mismatch, oversized or malformed frame), or the stream lost
  frame alignment (a timeout fired after part of a frame was consumed;
  the transport marks itself dead, because the next read would parse
  leftover payload bytes as a header).  ``FrameError`` subclasses
  ``OSError`` so generic fault paths that respawn/drop on transport
  failure handle protocol violations the same way.

Messages are pickles, exactly like multiprocessing pipes -- which means
the transport is for loopback and trusted networks only.  The framing
guard protects liveness, not confidentiality or unpickle safety.
"""

from __future__ import annotations

import pickle
import select
import socket
import struct

#: Bump when the frame layout or blob vocabulary changes incompatibly.
#: 2: ReplicaDelta gained the positional wire encoding + the
#: ``insert_at`` order patch; scoped-snapshot blobs joined the
#: vocabulary (distributed decision workers).
PROTOCOL_VERSION = 2

#: Default ceiling on one frame's payload.  Sized for full snapshots of
#: very large environments (a 1M-unit battle snapshot pickles to well
#: under this) while still rejecting nonsense lengths immediately.
DEFAULT_MAX_FRAME = 256 * 1024 * 1024

#: version byte + big-endian payload length.
_HEADER = struct.Struct(">BI")

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL


class TransportError(OSError):
    """Base class for transport-layer failures."""


class FrameError(TransportError):
    """The peer violated the socket framing contract.

    Raised for a version-byte mismatch or a declared payload length
    beyond the frame-size guard -- before any payload is read, so a
    malicious length can never trigger the allocation it advertises.
    """


class Transport:
    """One bidirectional, message-oriented channel to a single peer.

    Implementations must deliver whole messages (no partial reads leak
    to callers) and surface peer loss as ``EOFError``/``OSError``.
    """

    def send(self, obj: object) -> int:
        """Pickle and send one message; returns bytes put on the wire."""
        return self.send_bytes(pickle.dumps(obj, protocol=_PICKLE_PROTOCOL))

    def send_bytes(self, blob: bytes) -> int:
        """Send an already-pickled message (pickled once, fanned out to
        many peers -- the broadcast pattern of the replica protocol)."""
        raise NotImplementedError

    def recv(self) -> object:
        """Receive and unpickle one whole message (blocking)."""
        raise NotImplementedError

    def poll(self, timeout: float = 0.0) -> bool:
        """True when a message (or at least its first byte) is ready."""
        raise NotImplementedError

    def fileno(self) -> int:
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class PipeTransport(Transport):
    """A :class:`Transport` over a ``multiprocessing`` pipe connection.

    The kernel frames pipe messages already, so this is a thin adapter;
    it exists so the worker pool and the serving layer speak through
    one interface.  ``send`` pickles explicitly (rather than deferring
    to ``Connection.send``) so the byte count is observable -- the
    pool's broadcast accounting depends on it.
    """

    def __init__(self, conn):
        self._conn = conn

    def send_bytes(self, blob: bytes) -> int:
        self._conn.send_bytes(blob)
        return len(blob)

    def recv(self) -> object:
        return self._conn.recv()

    def poll(self, timeout: float = 0.0) -> bool:
        return self._conn.poll(timeout)

    def fileno(self) -> int:
        return self._conn.fileno()

    def close(self) -> None:
        self._conn.close()


class SocketTransport(Transport):
    """Length-prefix-framed messages over a stream socket.

    Frame layout: ``version:1 | length:4 (big-endian) | payload``.
    *max_frame* bounds accepted *and* sent payloads; *timeout* applies
    to every blocking send/recv (``None`` blocks forever), turning a
    stalled peer into a ``TimeoutError`` the caller can treat as any
    other transport failure.
    """

    def __init__(
        self,
        sock: socket.socket,
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        timeout: float | None = None,
    ):
        self._sock = sock
        self.max_frame = max_frame
        #: Set once the byte stream can no longer be trusted to sit on a
        #: frame boundary (timeout mid-frame, version mismatch, refused
        #: length): the remaining bytes of the broken frame would be
        #: parsed as a header, so every further send/recv must refuse.
        self._desynced = False
        sock.settimeout(timeout)
        if sock.family in (socket.AF_INET, getattr(socket, "AF_INET6", -1)):
            # frames are latency-sensitive (request/response queries);
            # never let Nagle hold a half-frame back
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            # a silently partitioned peer sends no RST; keepalive makes
            # the OS probe an idle connection and reset it, so blocked
            # readers (the worker-pool gather loop) eventually observe
            # the death instead of waiting forever
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_KEEPALIVE, 1)

    @classmethod
    def connect(
        cls,
        address: tuple[str, int],
        *,
        max_frame: int = DEFAULT_MAX_FRAME,
        timeout: float | None = None,
        connect_timeout: float = 10.0,
    ) -> "SocketTransport":
        sock = socket.create_connection(address, timeout=connect_timeout)
        return cls(sock, max_frame=max_frame, timeout=timeout)

    def settimeout(self, timeout: float | None) -> None:
        """Adjust the blocking send/recv timeout for subsequent calls."""
        self._sock.settimeout(timeout)

    # -- sending ------------------------------------------------------------------

    def send_bytes(self, blob: bytes) -> int:
        if self._desynced:
            raise FrameError(
                "transport is desynchronized (earlier timeout or framing "
                "violation mid-frame); reconnect instead of reusing it"
            )
        if len(blob) > self.max_frame:
            raise FrameError(
                f"refusing to send a {len(blob)}-byte frame "
                f"(max_frame={self.max_frame})"
            )
        try:
            self._sock.sendall(_HEADER.pack(PROTOCOL_VERSION, len(blob)))
            self._sock.sendall(blob)
        except OSError:
            # sendall may have written part of the frame before failing
            # (Python documents partial transmission on error); the
            # outgoing stream is mid-frame, so a retry would hand the
            # peer a header spliced into payload bytes.  Refuse reuse.
            self._desynced = True
            raise
        return _HEADER.size + len(blob)

    # -- receiving ----------------------------------------------------------------

    def _read_exact(self, n: int, *, mid_frame: bool) -> bytes:
        """Read exactly *n* bytes, or fail without lying about position.

        A timeout between frames (*mid_frame* false, nothing read yet)
        leaves the stream on a boundary and surfaces as the plain
        ``TimeoutError`` callers already treat as a transport fault; the
        transport stays usable.  A timeout after *any* byte of a frame
        was consumed leaves the stream pointing into the middle of that
        frame -- a later ``recv`` would parse payload bytes as a header
        -- so the transport is marked dead and the failure is promoted
        to :class:`FrameError`.
        """
        chunks: list[bytes] = []
        remaining = n
        while remaining:
            try:
                chunk = self._sock.recv(min(remaining, 1 << 20))
            except TimeoutError:
                if not mid_frame and remaining == n:
                    raise  # clean inter-frame stall; stream still synced
                self._desynced = True
                raise FrameError(
                    f"timed out mid-frame ({n - remaining} of {n} bytes "
                    "read); the stream is desynchronized and the "
                    "transport is now dead"
                ) from None
            if not chunk:
                if remaining == n and not chunks:
                    raise EOFError("peer closed the connection")
                raise EOFError("peer closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def recv(self) -> object:
        if self._desynced:
            raise FrameError(
                "transport is desynchronized (earlier timeout or framing "
                "violation mid-frame); reconnect instead of reusing it"
            )
        header = self._read_exact(_HEADER.size, mid_frame=False)
        version, length = _HEADER.unpack(header)
        if version != PROTOCOL_VERSION:
            # the declared payload was never read: the stream no longer
            # sits on a frame boundary
            self._desynced = True
            raise FrameError(
                f"protocol version mismatch: peer sent {version}, "
                f"this side speaks {PROTOCOL_VERSION}"
            )
        if length > self.max_frame:
            self._desynced = True
            raise FrameError(
                f"peer declared a {length}-byte frame "
                f"(max_frame={self.max_frame}); refusing to read it"
            )
        payload = self._read_exact(length, mid_frame=True)
        # the frame was fully consumed: a bad payload is an error for
        # *this* message only, the stream itself is still on a boundary
        try:
            return pickle.loads(payload)
        except Exception as exc:
            raise FrameError(f"undecodable frame payload: {exc}") from exc

    def poll(self, timeout: float = 0.0) -> bool:
        try:
            ready, _, _ = select.select([self._sock], [], [], timeout)
        except (OSError, ValueError):  # closed under us
            return False
        return bool(ready)

    def fileno(self) -> int:
        return self._sock.fileno()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - already closed
            pass
