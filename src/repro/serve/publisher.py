"""Coordinator-side subscription feed for spectator read replicas.

:class:`ReplicaPublisher` is the serving half of the engine's publish
stage: it listens on a loopback/TCP socket, accepts any number of
subscribers, and streams the *same* epoch-versioned update blobs the
shard worker pool ships over pipes --
:func:`~repro.env.sharding.snapshot_blob` and
:func:`~repro.env.sharding.delta_blob`, pickled at most once per tick
no matter how many subscribers are attached.

The protocol reuses PR 3's fault model wholesale, adapted from
addressed request/reply (workers must ack every tick -- the coordinator
needs their results) to fire-and-forget publication (spectators are
read-only, so the tick loop must never block on them):

* a **late joiner** is accepted with no replica epoch and receives the
  full snapshot at the next publish;
* a **delta subscriber** receives the per-tick
  :class:`~repro.env.sharding.ReplicaDelta` while its believed epoch
  chains; any discontinuity (a tick with no usable delta, a publisher
  restart) degrades that subscriber to a snapshot;
* a **stale subscriber** -- one whose replica could not apply a delta
  -- reports ``STALE`` upstream; the publisher marks it replica-less
  and re-sends the snapshot at the next publish (the async analogue of
  the worker pool's same-tick STALE/snapshot round trip);
* a **dead or byzantine peer** (dropped socket mid-delta, stalled
  reader, version-byte mismatch, oversized frame) is dropped; the
  frame guard in :class:`~repro.serve.transport.SocketTransport` plus
  per-peer timeouts mean no peer can wedge the publish stage.

Subscriber messages are polled non-blocking at each publish, so the
whole publisher is single-threaded and runs inline in the engine's
tick loop.
"""

from __future__ import annotations

import logging
import socket
import time
from dataclasses import dataclass

from ..env.sharding import (
    NO_REPLICA,
    ReplicaDelta,
    delta_blob,
    snapshot_blob,
)
from ..obs import NULL_REGISTRY, TID_PUBLISHER, RegistryStats
from .transport import DEFAULT_MAX_FRAME, FrameError, SocketTransport

logger = logging.getLogger("repro.serve.publisher")

#: Subscriber -> publisher message tags.
SUB_STALE = "sub_stale"


class PublisherStats(RegistryStats):
    """Publish/fault counters a :class:`ReplicaPublisher` accumulates.

    Attribute reads and writes behave exactly like the dataclass this
    replaces; with a metrics registry bound at construction each field
    is a registry cell (the ``publisher_*`` series).  ``stale_snapshots``
    counts STALE reports that downgraded a subscriber to the snapshot
    path; ``drops`` counts subscribers removed for transport failure or
    protocol violation (also exposed per-reason as
    ``publisher_drops_total{reason=...}`` and logged at WARNING -- a
    dead or byzantine peer is never dropped silently).
    """

    _PREFIX = "publisher"
    _COUNTER_FIELDS = (
        "ticks",
        "delta_sends",
        "snapshot_sends",
        "stale_snapshots",
        "subscribers_accepted",
        "drops",
        "frame_errors",
        "bytes_sent",
    )
    _GAUGE_FIELDS = {"last_tick_bytes": 0}


@dataclass
class _Subscriber:
    transport: SocketTransport
    address: tuple
    #: Publisher's belief of the subscriber's replica epoch.
    epoch: int = NO_REPLICA


class ReplicaPublisher:
    """Streams epoch-versioned replica updates to socket subscribers.

    *broadcast* selects the steady-state protocol: ``"delta"`` ships the
    per-tick change set to every subscriber whose epoch chains (snapshot
    otherwise), ``"snapshot"`` re-broadcasts the full row set every tick
    (the measurement baseline, and a safety valve).  *send_timeout*
    bounds how long one stalled subscriber can hold the publish stage
    before being dropped; *max_frame* is the socket frame guard.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        broadcast: str = "delta",
        max_frame: int = DEFAULT_MAX_FRAME,
        send_timeout: float = 5.0,
        backlog: int = 16,
        metrics=None,
        trace=None,
    ):
        if broadcast not in ("delta", "snapshot"):
            raise ValueError(f"unknown broadcast mode {broadcast!r}")
        self.broadcast = broadcast
        self.max_frame = max_frame
        self.send_timeout = send_timeout
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._trace = trace
        if trace is not None:
            trace.thread_name(TID_PUBLISHER, "spectator publisher")
        self._m_drop_reasons: dict[str, object] = {}
        self._m_peer_bytes: dict[tuple, object] = {}
        self.stats = PublisherStats(metrics)
        self._subscribers: list[_Subscriber] = []
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((host, port))
        listener.listen(backlog)
        listener.setblocking(False)
        self._listener = listener
        self.address: tuple[str, int] = listener.getsockname()[:2]

    @property
    def num_subscribers(self) -> int:
        return len(self._subscribers)

    # -- per-peer observability ---------------------------------------------------

    def _drop_counter(self, reason: str):
        inst = self._m_drop_reasons.get(reason)
        if inst is None:
            inst = self._metrics.counter("publisher_drops_total",
                                         reason=reason)
            self._m_drop_reasons[reason] = inst
        return inst

    def _peer_bytes(self, address: tuple):
        inst = self._m_peer_bytes.get(address)
        if inst is None:
            inst = self._metrics.counter(
                "publisher_subscriber_bytes_total",
                peer=f"{address[0]}:{address[1]}",
            )
            self._m_peer_bytes[address] = inst
        return inst

    # -- subscriber lifecycle -----------------------------------------------------

    def poll(self) -> None:
        """Accept pending subscribers and drain their control messages.

        Called automatically at every :meth:`publish`; callers may also
        invoke it directly to pick up joiners between publishes.
        """
        if self._listener is None:
            return
        while True:
            try:
                sock, address = self._listener.accept()
            except (BlockingIOError, InterruptedError):
                break
            except OSError:  # pragma: no cover - listener closed under us
                break
            transport = SocketTransport(
                sock, max_frame=self.max_frame, timeout=self.send_timeout
            )
            self._subscribers.append(
                _Subscriber(transport=transport, address=address)
            )
            self.stats.subscribers_accepted += 1
        for subscriber in list(self._subscribers):
            self._drain_control(subscriber)

    def _drain_control(self, subscriber: _Subscriber) -> None:
        while True:
            try:
                if not subscriber.transport.poll(0.0):
                    return
                message = subscriber.transport.recv()
            except FrameError:
                self.stats.frame_errors += 1
                self._drop(subscriber, reason="frame_error")
                return
            except (EOFError, OSError):
                self._drop(subscriber, reason="transport_error")
                return
            if (
                isinstance(message, tuple)
                and message
                and message[0] == SUB_STALE
            ):
                # reuse PR 3's fault path: a stale replica is re-fed the
                # snapshot at the next publish
                subscriber.epoch = NO_REPLICA
                self.stats.stale_snapshots += 1
            else:
                # a subscriber speaking an unknown control vocabulary is
                # a protocol violation, same as a bad frame
                self.stats.frame_errors += 1
                self._drop(subscriber, reason="protocol_violation")
                return

    def _drop(
        self, subscriber: _Subscriber, *, reason: str = "transport_error"
    ) -> None:
        try:
            subscriber.transport.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if subscriber in self._subscribers:
            self._subscribers.remove(subscriber)
            self.stats.drops += 1
            self._drop_counter(reason).inc()
            logger.warning(
                "dropped spectator subscriber %s:%s (%s); a respawned "
                "replica re-joins as a late joiner and snapshot-catches-up",
                subscriber.address[0], subscriber.address[1], reason,
            )
            if self._trace is not None:
                self._trace.instant(
                    "subscriber_drop", "fault", tid=TID_PUBLISHER,
                    peer=f"{subscriber.address[0]}:{subscriber.address[1]}",
                    reason=reason,
                )

    # -- the publish stage --------------------------------------------------------

    def publish(
        self,
        *,
        epoch: int,
        rows: list[dict[str, object]],
        shard_conf: tuple,
        delta: ReplicaDelta | None = None,
    ) -> int:
        """Bring every subscriber to *epoch*; returns bytes put on the wire.

        *delta* (when given) must chain ``delta.epoch == epoch``; it is
        shipped to subscribers whose believed epoch matches
        ``delta.base_epoch`` under ``broadcast="delta"``.  Everyone else
        gets the snapshot -- except subscribers already *at* ``epoch``
        when there is no delta, which lets an engine re-run the publish
        stage between ticks (late-joiner catch-up) without re-feeding
        current subscribers.
        """
        self.poll()
        stats = self.stats
        stats.ticks += 1
        stats.last_tick_bytes = 0
        if not self._subscribers:
            return 0
        if delta is not None and delta.epoch != epoch:
            delta = None  # defensive: a delta to some other epoch
        blobs: dict[str, bytes] = {}

        def delta_bytes() -> bytes:
            if "delta" not in blobs:
                blobs["delta"] = delta_blob(delta)
            return blobs["delta"]

        def snapshot_bytes() -> bytes:
            if "snapshot" not in blobs:
                blobs["snapshot"] = snapshot_blob(epoch, rows, shard_conf)
            return blobs["snapshot"]

        tick_bytes = 0
        for subscriber in list(self._subscribers):
            use_delta = (
                self.broadcast == "delta"
                and delta is not None
                and subscriber.epoch == delta.base_epoch
            )
            if (
                not use_delta
                and delta is None
                and subscriber.epoch == epoch
            ):
                continue  # already current; nothing new to ship
            blob = delta_bytes() if use_delta else snapshot_bytes()
            trace = self._trace
            t0 = time.perf_counter() if trace is not None else 0.0
            try:
                sent = subscriber.transport.send_bytes(blob)
            except (EOFError, OSError):
                # dropped socket (possibly mid-delta on the peer side):
                # remove the subscriber; a respawned replica re-joins as
                # a late joiner and snapshot-catches-up
                self._drop(subscriber, reason="send_failed")
                continue
            if trace is not None:
                trace.complete_perf(
                    "publish_send", "publisher", t0, time.perf_counter(),
                    tid=TID_PUBLISHER, epoch=epoch,
                    peer=f"{subscriber.address[0]}:{subscriber.address[1]}",
                    bytes=sent, mode="delta" if use_delta else "snapshot",
                )
            subscriber.epoch = epoch
            tick_bytes += sent
            self._peer_bytes(subscriber.address).inc(sent)
            if use_delta:
                stats.delta_sends += 1
            else:
                stats.snapshot_sends += 1
        stats.bytes_sent += tick_bytes
        stats.last_tick_bytes = tick_bytes
        return tick_bytes

    def close(self) -> None:
        for subscriber in list(self._subscribers):
            try:
                subscriber.transport.close()
            except OSError:  # pragma: no cover
                pass
        self._subscribers.clear()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None

    def __enter__(self) -> "ReplicaPublisher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
