"""Convenience facade over the full system.

Most downstream users want one of three things:

* **run the battle**: :func:`run_battle` / :class:`BattleSimulation`;
* **script their own game**: :func:`compile_script` +
  :class:`GameDefinition` -- bring a schema, SQL built-ins, and SGL
  scripts; get a naive/indexed engine;
* **explain a script**: :func:`explain_script` -- the optimized algebra
  plan and the index chosen for each aggregate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from .algebra.rewrite import optimize, sharing_report
from .algebra.shapes import classify_aggregate
from .algebra.translate import translate_script
from .engine.clock import EngineConfig, SimulationEngine, TickStats
from .env.schema import Schema
from .env.table import EnvironmentTable
from .game.battle import BattleSimulation, BattleSummary
from .sgl.analysis import analyze_script
from .sgl.ast import Script
from .sgl.builtins import FunctionRegistry
from .sgl.normalize import normalize_script
from .sgl.parser import parse_script


def compile_script(
    source: str,
    registry: FunctionRegistry,
    schema: Schema | None = None,
    *,
    normalize: bool = False,
) -> Script:
    """Parse and validate an SGL script against *registry* (and *schema*).

    With *normalize* the script is returned in aggregate normal form
    (Section 5.1) -- semantically identical, required only when feeding
    the algebra translator manually (it normalizes by itself).
    """
    script = parse_script(source)
    analyze_script(script, registry, schema)
    if normalize:
        script = normalize_script(script, registry)
    return script


@dataclass
class ExplainResult:
    """What ``explain_script`` reports."""

    plan: str
    sharing: dict[str, int]
    aggregate_kinds: dict[str, str]

    def __str__(self) -> str:
        lines = [self.plan, ""]
        lines.append("aggregate index selection:")
        for name, kind in sorted(self.aggregate_kinds.items()):
            lines.append(f"  {name}: {kind}")
        lines.append(f"sharing: {self.sharing}")
        return "\n".join(lines)


def explain_script(source: str, registry: FunctionRegistry) -> ExplainResult:
    """EXPLAIN for SGL: the optimized plan + per-aggregate index choice."""
    script = parse_script(source)
    analysis = analyze_script(script, registry)
    plan = optimize(translate_script(script, registry), registry)
    kinds = {
        name: classify_aggregate(registry.aggregates[name].spec).kind
        for name in analysis.aggregate_functions
        if registry.aggregates[name].spec is not None
    }
    return ExplainResult(
        plan=plan.describe(),
        sharing=sharing_report(plan),
        aggregate_kinds=kinds,
    )


@dataclass
class GameDefinition:
    """Everything needed to run a custom data-driven game."""

    schema: Schema
    registry: FunctionRegistry
    scripts: dict[str, Script]
    script_selector: str = "unittype"  # row attribute choosing the script

    def engine(
        self,
        env: EnvironmentTable,
        mechanics: Callable,
        *,
        mode: str = "indexed",
        seed: int = 0,
        optimize_aoe: bool = True,
        cascade: bool = True,
        index_maintenance: str = "rebuild",
        incremental_threshold: float = 0.25,
        auto_policy: str = "ewma",
        num_shards: int = 1,
        shard_by: str | None = None,
        spatial_extent: float | None = None,
        parallelism: str = "serial",
        max_workers: int | None = None,
        worker_broadcast: str = "delta",
        worker_factory: Callable | None = None,
        workers: object = "local",
        worker_scope: str = "full",
        worker_timeout: float | None = 60.0,
        worker_max_frame: int | None = None,
        spectators: bool = False,
        spectator_broadcast: str = "delta",
        epoch_log: str | None = None,
        epoch_log_checkpoint_every: int = 64,
        epoch_log_fsync: str = "checkpoint",
        metrics: bool = False,
        trace_path: str | None = None,
        slow_tick_factor: float | None = None,
    ) -> SimulationEngine:
        """Build a :class:`SimulationEngine` for this game definition.

        *index_maintenance* selects the per-tick index strategy of the
        indexed engine: ``"rebuild"`` discards and rebuilds every tick
        (the paper's default), ``"incremental"`` patches retained
        indexes with the captured row delta, and ``"auto"`` picks per
        tick from the evaluator's learned cost crossover
        (*auto_policy*\\ ``="ewma"``) or the changed-row fraction
        (``"threshold"``, also the EWMA bootstrap; threshold
        *incremental_threshold*).

        *num_shards* / *shard_by* / *parallelism* configure the sharded
        tick pipeline: ``E`` is partitioned by the shard key (default:
        the schema key, hashed process-stably; ``"spatial"`` needs
        *spatial_extent*) and the per-shard decision/effect stages run
        serially or on a thread pool; ``parallelism="processes"``
        additionally needs a picklable *worker_factory* returning a
        :class:`~repro.engine.shardexec.WorkerGame`, and keeps the
        long-lived workers' replicas of ``E`` current per
        *worker_broadcast* -- ``"delta"`` (default) ships epoch-versioned
        change sets, ``"snapshot"`` re-broadcasts all rows every tick.
        *workers* selects where those processes run: ``"local"``
        (default) spawns them on this host; a list of ``"host:port"``
        endpoints connects to remote decision workers started with
        ``python -m repro.engine.shardexec --listen`` over the socket
        transport, with reconnect-and-resnapshot fault recovery.
        *worker_scope* -- ``"full"`` replicates all of ``E`` to every
        worker; ``"shards"`` is the per-shard probe split (each worker
        holds and indexes only its own shards, forwarding non-local
        probes to the coordinator; needs ``mode="indexed"`` and
        ``optimize_aoe=True``).

        *spectators* opens the engine's read-replica feed
        (``engine.spectator_address``): each tick's post-state streams
        to subscribed :class:`~repro.serve.spectator.SpectatorReplica`
        processes -- per *spectator_broadcast*, as epoch-versioned
        deltas with snapshot catch-up (``"delta"``) or full snapshots
        (``"snapshot"``).  Spawn replicas against the same
        *worker_factory* used for process workers; they answer
        read-only SGL/aggregate/k-NN queries pinned to a consistent
        epoch, bit-identical to querying this engine directly.

        *epoch_log* names a file the engine appends every post-tick
        state to (:mod:`repro.persist`): the captured delta when it
        chains, a full-snapshot checkpoint every
        *epoch_log_checkpoint_every* epochs, with *epoch_log_fsync*
        picking durability (``"never"`` | ``"checkpoint"`` |
        ``"always"``).  Any retained epoch can then be replayed
        bit-exactly (:class:`~repro.persist.log.EpochLogReader`), and a
        crashed coordinator recovers by replay +
        :meth:`~repro.engine.clock.SimulationEngine.restore_state`.

        *metrics* / *trace_path* / *slow_tick_factor* are the
        observability knobs (:mod:`repro.obs`): a process-local metrics
        registry (``engine.metrics``, servable over HTTP with
        ``engine.serve_metrics()``), an epoch-correlated Chrome
        trace-event recording of every tick stage / worker round trip /
        publish / log write, and the slow-tick watchdog (flag ticks
        slower than ``factor`` x the EWMA).  All are read-only
        diagnostics -- trajectories are bit-identical with them on.

        All strategies, shard counts, and parallelism modes are
        bit-identical in trajectory when aggregate measure and effect
        sums are floating-point exact (e.g. integer-valued measures);
        per-shard evaluation sums in a different order than a flat scan,
        so inexact float sums may drift in final ulps.  Only wall-clock
        differs otherwise.
        """
        scripts = self.scripts
        selector = self.script_selector

        def script_for(row: Mapping[str, object]) -> Script:
            return scripts[row[selector]]

        return SimulationEngine(
            env,
            self.registry,
            script_for,
            mechanics,
            EngineConfig(
                mode=mode,
                optimize_aoe=optimize_aoe,
                cascade=cascade,
                seed=seed,
                index_maintenance=index_maintenance,
                incremental_threshold=incremental_threshold,
                auto_policy=auto_policy,
                num_shards=num_shards,
                shard_by=shard_by if shard_by is not None else self.schema.key,
                spatial_extent=spatial_extent,
                parallelism=parallelism,
                max_workers=max_workers,
                worker_broadcast=worker_broadcast,
                worker_factory=worker_factory,
                workers=workers,
                worker_scope=worker_scope,
                worker_timeout=worker_timeout,
                worker_max_frame=worker_max_frame,
                spectators=spectators,
                spectator_broadcast=spectator_broadcast,
                epoch_log=epoch_log,
                epoch_log_checkpoint_every=epoch_log_checkpoint_every,
                epoch_log_fsync=epoch_log_fsync,
                metrics=metrics,
                trace_path=trace_path,
                slow_tick_factor=slow_tick_factor,
            ),
        )


def run_battle(
    n_units: int | None,
    ticks: int,
    *,
    mode: str = "indexed",
    density: float = 0.01,
    seed: int = 0,
    formation: str = "uniform",
    resurrection: bool = True,
    index_maintenance: str = "rebuild",
    incremental_threshold: float = 0.25,
    auto_policy: str = "ewma",
    num_shards: int = 1,
    shard_by: str = "key",
    parallelism: str = "serial",
    max_workers: int | None = None,
    worker_broadcast: str = "delta",
    workers: object = "local",
    worker_scope: str = "full",
    epoch_log: str | None = None,
    resume_from: str | None = None,
    metrics: bool = False,
    trace_path: str | None = None,
    slow_tick_factor: float | None = None,
) -> BattleSummary:
    """One-call battle run; returns the summary with per-tick stats.

    *index_maintenance* (indexed mode only) chooses between per-tick
    index rebuild (``"rebuild"``), delta-driven incremental maintenance
    (``"incremental"``), and the per-tick cost-based choice (``"auto"``,
    tuned by *auto_policy* / *incremental_threshold*).

    *num_shards* partitions the environment by *shard_by* (``"spatial"``
    = vertical map strips; otherwise a hashed const attribute like
    ``"key"`` or ``"player"``) and *parallelism* selects how the
    per-shard pipeline stages run (``"serial"`` | ``"threads"`` |
    ``"processes"``).  The battle's measures are integer-valued, so
    trajectories are bit-identical across every combination of these
    knobs; only wall-clock differs.

    *epoch_log* appends every post-tick state to a durable log file
    (:mod:`repro.persist`).  *resume_from* resumes a
    :meth:`~repro.game.battle.BattleSimulation.save` file instead of
    starting fresh: the saved configuration wins (*n_units* may be
    ``None``), the battle runs *ticks* further ticks, and the combined
    trajectory is bit-identical to an uninterrupted run.

    *metrics* / *trace_path* / *slow_tick_factor* attach the
    observability layer (:mod:`repro.obs`): the metrics registry, the
    Chrome trace-event recording, and the slow-tick watchdog.  They are
    read-only diagnostics and never perturb the trajectory.
    """
    obs = {}
    if metrics:
        obs["metrics"] = metrics
    if trace_path is not None:
        obs["trace_path"] = trace_path
    if slow_tick_factor is not None:
        obs["slow_tick_factor"] = slow_tick_factor
    if resume_from is not None:
        extra = {"epoch_log": epoch_log} if epoch_log else {}
        with BattleSimulation.load(resume_from, **extra, **obs) as sim:
            return sim.run(ticks)
    if n_units is None:
        raise ValueError("n_units is required unless resume_from is given")
    with BattleSimulation(
        n_units,
        density=density,
        mode=mode,
        seed=seed,
        formation=formation,
        resurrection=resurrection,
        index_maintenance=index_maintenance,
        incremental_threshold=incremental_threshold,
        auto_policy=auto_policy,
        num_shards=num_shards,
        shard_by=shard_by,
        parallelism=parallelism,
        max_workers=max_workers,
        worker_broadcast=worker_broadcast,
        workers=workers,
        worker_scope=worker_scope,
        epoch_log=epoch_log,
        **obs,
    ) as sim:
        return sim.run(ticks)
