"""repro -- reproduction of "Scaling Games to Epic Proportions" (SIGMOD'07).

The package implements the paper's full stack:

* :mod:`repro.env`     -- the tagged environment relation and ``⊕``;
* :mod:`repro.sgl`     -- the SGL scripting language (parser, restricted
  SQL built-ins, reference semantics, normal form, static analysis);
* :mod:`repro.algebra` -- the bag algebra, SGL→algebra translation,
  rewrite rules, shape classification, and the set-at-a-time executor;
* :mod:`repro.indexes` -- layered range trees with fractional cascading,
  divisible-aggregate trees (Figure 8), sweep-line min/max (Figure 9),
  kD-trees, and categorical hash layers;
* :mod:`repro.engine`  -- the discrete simulation engine with the two
  pluggable aggregate evaluators of Section 6;
* :mod:`repro.game`    -- the knights/archers/healers battle simulation
  with d20 mechanics (Section 3.2).

Beyond the paper, the indexed engine supports delta-driven incremental
index maintenance: pass ``index_maintenance="incremental"`` (always
patch retained indexes with the tick's row delta) or ``"auto"``
(cost-based per-tick choice, by default an EWMA-learned crossover) to
:class:`EngineConfig`, :func:`run_battle`, or :class:`BattleSimulation`
instead of the paper's per-tick ``"rebuild"`` default.  The engine also
runs **sharded**: ``num_shards=``/``shard_by=`` partition ``E`` (by
spatial strip or hashed attribute) and ``parallelism=`` fans the
per-shard decision/effect stages out over thread or process workers,
merging shard-local effect tables under ⊕ (associative/commutative,
Eq. 3).  Trajectories are bit-identical across every maintenance mode,
shard count, and parallelism mode for games whose aggregate measures
sum exactly in floating point (integer-valued measures, as in the
battle simulation); ``benchmarks/bench_incremental.py`` and
``benchmarks/bench_shards.py`` map out where each wins.

Heavy read traffic is served off-process: ``spectators=True`` opens the
:mod:`repro.serve` read-replica feed, and
:class:`~repro.serve.spectator.SpectatorReplica` processes (see
``BattleSimulation.spawn_spectator``) answer read-only SGL/aggregate/
k-NN queries over loopback sockets, pinned to a consistent tick epoch
and bit-identical to querying the engine directly
(``benchmarks/bench_spectators.py`` asserts it live).

Everything above is observable: ``metrics=True`` attaches the
:mod:`repro.obs` metrics registry (Prometheus text endpoint via
``engine.serve_metrics()``), ``trace_path=`` records an
epoch-correlated Chrome trace of every tick stage, worker round trip,
spectator publish, and epoch-log write, and ``slow_tick_factor=`` arms
the slow-tick watchdog -- all read-only diagnostics that leave
trajectories bit-identical (``benchmarks/bench_obs.py`` asserts both
that and the overhead bound; see ``docs/observability.md``).

Quickstart::

    from repro import run_battle
    summary = run_battle(500, ticks=20, mode="indexed")
    print(summary.total_time)
"""

from .api import (
    ExplainResult,
    GameDefinition,
    compile_script,
    explain_script,
    run_battle,
)
from .engine.clock import EngineConfig, SimulationEngine
from .env.schema import Attribute, AttributeType, Schema, battle_schema
from .env.sharding import ShardedEnvironment, make_sharder
from .env.table import EnvironmentTable
from .game.battle import BattleSimulation, BattleSummary
from .obs import MetricsRegistry, SlowTickWatchdog, TraceRecorder
from .serve import (
    AuthoritativeQueryService,
    ReplicaPublisher,
    SpectatorClient,
    SpectatorReplica,
    unit_ref,
)
from .sgl.builtins import FunctionRegistry
from .sgl.parser import parse_script

__version__ = "1.0.0"

__all__ = [
    "Attribute",
    "AttributeType",
    "AuthoritativeQueryService",
    "BattleSimulation",
    "BattleSummary",
    "EngineConfig",
    "EnvironmentTable",
    "ExplainResult",
    "FunctionRegistry",
    "GameDefinition",
    "MetricsRegistry",
    "ReplicaPublisher",
    "Schema",
    "ShardedEnvironment",
    "SimulationEngine",
    "SlowTickWatchdog",
    "SpectatorClient",
    "SpectatorReplica",
    "TraceRecorder",
    "battle_schema",
    "compile_script",
    "explain_script",
    "make_sharder",
    "parse_script",
    "run_battle",
    "unit_ref",
    "__version__",
]
