"""Process-local observability: metrics registry, tracing, watchdog.

The package is deliberately stdlib-only and engine-agnostic: the engine
layers (`clock`, `shardexec`, `publisher`, `persist.log`, `evaluator`)
hold pre-resolved instrument handles and call ``inc``/``observe`` on
them, so the cost of *disabled* observability is one attribute access
and a no-op method call -- no allocation, no branching beyond the call.

* :mod:`repro.obs.registry` -- counters, gauges, histograms with stable
  names and labels; Prometheus text exposition; a shared null registry
  whose instruments discard every write.
* :mod:`repro.obs.trace` -- epoch-correlated Chrome trace-event
  recorder (JSON array of ``X``/``i``/``M`` events, Perfetto-loadable).
* :mod:`repro.obs.watchdog` -- slow-tick watchdog flagging ticks beyond
  ``k x EWMA`` of recent totals with the offending stage breakdown.
"""

from repro.obs.registry import (  # noqa: F401
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    RegistryStats,
    StatCounters,
    serve_prometheus,
)
from repro.obs.trace import (  # noqa: F401
    TID_LOG,
    TID_MAIN,
    TID_PUBLISHER,
    TID_WORKER_BASE,
    TraceRecorder,
    load_trace,
)
from repro.obs.watchdog import SlowTickWatchdog  # noqa: F401
