"""Process-local metrics registry: counters, gauges, histograms.

Instruments are plain value cells resolved **once** (at engine/pool/
writer construction) and mutated on the hot path with ``inc``/``set``/
``observe`` -- a dict lookup never happens per tick.  When metrics are
disabled the same call sites hold instruments from :data:`NULL_REGISTRY`
whose mutators are empty methods: the per-tick cost of disabled
observability is a no-op method call, with no allocation.

Names follow Prometheus conventions (``repro_tick_total``,
``repro_stage_seconds``); labels are keyword arguments frozen into the
instrument identity, so ``registry.counter("x", stage="aoe")`` returns
the same cell every time.  :meth:`MetricsRegistry.render_prometheus`
emits the text exposition format, and :func:`serve_prometheus` mounts it
on a stdlib HTTP endpoint for scraping.
"""

from __future__ import annotations

import http.server
import threading
from typing import Iterator, Mapping, TypeVar

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "RegistryStats",
    "StatCounters",
    "serve_prometheus",
]


class Counter:
    """A monotonically-increasing value cell (resettable only via
    :meth:`MetricsRegistry.reset` for tests)."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A value cell that goes up and down (queue depths, last-epoch)."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


class Histogram:
    """Streaming count/sum/min/max -- O(1) per observation, no buckets.

    Prometheus exposition renders the ``_count``/``_sum`` pair (enough
    for rate/mean panels); ``min``/``max`` ride along as gauges because
    the slow-tick watchdog and bench reports want extremes, not
    quantiles.
    """

    __slots__ = ("count", "total", "min", "max")
    kind = "histogram"

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, total={self.total})"


class _NullCounter(Counter):
    __slots__ = ()

    def inc(self, amount: int = 1) -> None:
        pass


class _NullGauge(Gauge):
    __slots__ = ()

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class _NullHistogram(Histogram):
    __slots__ = ()

    def observe(self, value: float) -> None:
        pass


_Key = tuple[str, tuple[tuple[str, object], ...]]
_Instrument = TypeVar("_Instrument", "Counter", "Gauge", "Histogram")


def _key(name: str, labels: Mapping[str, object]) -> _Key:
    return (name, tuple(sorted(labels.items())))


class MetricsRegistry:
    """Get-or-create store of named instruments.

    Thread-safe for instrument *creation* (publisher and epoch-log
    writer threads register instruments); mutation of an individual
    instrument is a plain attribute write, safe under the GIL for the
    int/float cells used here.
    """

    enabled = True

    def __init__(self, namespace: str = "repro") -> None:
        self.namespace = namespace
        self._instruments: dict[_Key, Counter | Gauge | Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument factories ------------------------------------------

    def _get(
        self,
        cls: type[_Instrument],
        name: str,
        labels: Mapping[str, object],
    ) -> _Instrument:
        key = _key(name, labels)
        found = self._instruments.get(key)
        if found is None:
            with self._lock:
                found = self._instruments.setdefault(key, cls())
        if not isinstance(found, cls):
            raise TypeError(
                f"metric {name!r}{dict(labels)} already registered as "
                f"{type(found).__name__}, requested {cls.__name__}"
            )
        return found

    def counter(self, name: str, **labels: object) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._get(Histogram, name, labels)

    # -- introspection -------------------------------------------------

    def __iter__(
        self,
    ) -> Iterator[tuple[str, dict[str, object], Counter | Gauge | Histogram]]:
        for (name, labels), inst in sorted(self._instruments.items()):
            yield name, dict(labels), inst

    def snapshot(self) -> dict[str, object]:
        """Flat ``name{label="v"} -> value`` dict (histograms expand to
        ``_count``/``_sum``/``_min``/``_max``)."""
        out: dict[str, object] = {}
        for name, labels, inst in self:
            series = _series_name(name, labels)
            if isinstance(inst, Histogram):
                out[f"{series}:count"] = inst.count
                out[f"{series}:sum"] = inst.total
                if inst.count:
                    out[f"{series}:min"] = inst.min
                    out[f"{series}:max"] = inst.max
            else:
                out[series] = inst.value
        return out

    def reset(self) -> None:
        with self._lock:
            self._instruments.clear()

    # -- exposition ----------------------------------------------------

    def render_prometheus(self) -> str:
        """The Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        seen_types: set[str] = set()
        for name, labels, inst in self:
            full = f"{self.namespace}_{name}"
            if isinstance(inst, Histogram):
                if full not in seen_types:
                    seen_types.add(full)
                    lines.append(f"# TYPE {full} summary")
                label_txt = _labels_txt(labels)
                lines.append(f"{full}_count{label_txt} {inst.count}")
                lines.append(f"{full}_sum{label_txt} {_fmt(inst.total)}")
            else:
                if full not in seen_types:
                    seen_types.add(full)
                    lines.append(f"# TYPE {full} {inst.kind}")
                lines.append(
                    f"{full}{_labels_txt(labels)} {_fmt(inst.value)}"
                )
        return "\n".join(lines) + "\n"


class NullRegistry(MetricsRegistry):
    """The disabled registry: every factory returns a shared null
    instrument whose mutators do nothing.  One instance
    (:data:`NULL_REGISTRY`) is shared process-wide so holding handles
    from it costs no memory per engine."""

    enabled = False

    def __init__(self) -> None:
        super().__init__()
        self._counter = _NullCounter()
        self._gauge = _NullGauge()
        self._histogram = _NullHistogram()

    def counter(self, name: str, **labels: object) -> Counter:
        return self._counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        return self._gauge

    def histogram(self, name: str, **labels: object) -> Histogram:
        return self._histogram

    def __iter__(
        self,
    ) -> Iterator[tuple[str, dict[str, object], Counter | Gauge | Histogram]]:
        return iter(())


NULL_REGISTRY = NullRegistry()


def _fmt(value: object) -> str:
    if value is None:
        return "0"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _labels_txt(labels: Mapping[str, object]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


def _escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace(
        "\n", r"\n"
    )


def _series_name(name: str, labels: Mapping[str, object]) -> str:
    return name + _labels_txt(labels)


class StatCounters(dict[str, int]):
    """A ``dict[str, int]`` of counters that write through to a registry.

    Drop-in replacement for the ad-hoc ``self.stats`` dicts
    (:class:`~repro.engine.evaluator.IndexedEvaluator`,
    :class:`~repro.serve.queries.QueryEngine`): reads, ``.get``,
    ``dict(...)``, iteration, and equality all behave exactly like the
    plain dict they replace, while every mutation also lands in the
    bound registry under ``<prefix>_<key>`` -- the compatibility bridge
    that makes the old accessors registry-backed views.
    """

    __slots__ = ("_registry", "_prefix", "_cells")

    def __init__(self, registry: MetricsRegistry | None = None,
                 prefix: str = "stat") -> None:
        super().__init__()
        self._registry = registry if registry is not None else NULL_REGISTRY
        self._prefix = prefix
        self._cells: dict[str, Counter] = {}

    def bind(
        self, registry: MetricsRegistry, prefix: str | None = None
    ) -> "StatCounters":
        """Re-bind to *registry*, exporting already-accumulated values."""
        self._registry = registry
        if prefix is not None:
            self._prefix = prefix
        self._cells = {}
        for key, value in self.items():
            cell = registry.counter(f"{self._prefix}_{key}")
            cell.value = value
            self._cells[key] = cell
        return self

    def _cell(self, key: str) -> Counter:
        cell = self._cells.get(key)
        if cell is None:
            cell = self._registry.counter(f"{self._prefix}_{key}")
            self._cells[key] = cell
        return cell

    def bump(self, key: str, amount: int = 1) -> None:
        value = dict.get(self, key, 0) + amount
        dict.__setitem__(self, key, value)
        cell = self._cells.get(key)
        if cell is None:
            cell = self._cell(key)
        cell.value = value

    def __setitem__(self, key: str, value: int) -> None:
        dict.__setitem__(self, key, value)
        self._cell(key).value = value

    def __reduce__(self) -> str | tuple[object, ...]:
        # registries hold locks: pickle as the plain numbers
        return (dict, (), None, None, iter(self.items()))


class RegistryStats:
    """Attribute-style stats object whose fields live in a registry.

    Base for the ad-hoc counter dataclasses (``PoolStats``,
    ``PublisherStats``, ``EpochLogStats``): attribute reads and writes
    (including ``stats.respawns += 1``) keep working exactly as before,
    but each field is a :class:`Counter`/:class:`Gauge` cell -- shared
    with the metrics registry when one is bound at construction, private
    otherwise -- so the old accessors become registry-backed views with
    no second store to drift.
    """

    _PREFIX = "stats"
    _COUNTER_FIELDS: tuple[str, ...] = ()
    #: field -> initial value (gauges may start below zero, e.g.
    #: NO_REPLICA epoch sentinels).
    _GAUGE_FIELDS: Mapping[str, int] = {}

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        live = registry if registry is not None and registry.enabled else None
        cells: dict[str, Counter | Gauge] = {}
        for name in self._COUNTER_FIELDS:
            cells[name] = (
                live.counter(f"{self._PREFIX}_{name}") if live is not None
                else Counter()
            )
        for name, initial in self._GAUGE_FIELDS.items():
            cell: Gauge = (
                live.gauge(f"{self._PREFIX}_{name}") if live is not None
                else Gauge()
            )
            cell.value = initial
            cells[name] = cell
        object.__setattr__(self, "_cells", cells)

    def __getattr__(self, name: str) -> float:
        try:
            return object.__getattribute__(self, "_cells")[name].value
        except KeyError:
            raise AttributeError(name) from None

    def __setattr__(self, name: str, value: float) -> None:
        cell = object.__getattribute__(self, "_cells").get(name)
        if cell is None:
            object.__setattr__(self, name, value)
        else:
            cell.value = value

    def as_dict(self) -> dict[str, float]:
        cells: dict[str, Counter | Gauge] = object.__getattribute__(
            self, "_cells"
        )
        return {name: cell.value for name, cell in cells.items()}

    def __repr__(self) -> str:
        fields = ", ".join(
            f"{name}={value}" for name, value in self.as_dict().items()
        )
        return f"{type(self).__name__}({fields})"


class _PrometheusHandler(http.server.BaseHTTPRequestHandler):
    registry: MetricsRegistry = NULL_REGISTRY

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") not in ("", "/metrics"):
            self.send_error(404)
            return
        body = self.registry.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args: object) -> None:
        pass  # scrapes must not spam stderr


def serve_prometheus(
    registry: MetricsRegistry, host: str = "127.0.0.1", port: int = 0
) -> tuple[http.server.ThreadingHTTPServer, tuple[str, int]]:
    """Start a daemon-thread HTTP server exposing *registry* at
    ``/metrics``; returns ``(server, (host, port))``.  Call
    ``server.shutdown()`` to stop it."""
    handler = type(
        "_BoundPrometheusHandler", (_PrometheusHandler,),
        {"registry": registry},
    )
    server = http.server.ThreadingHTTPServer((host, port), handler)
    thread = threading.Thread(
        target=server.serve_forever, name="prometheus-exposition",
        daemon=True,
    )
    thread.start()
    host_out, port_out = server.server_address[0], server.server_address[1]
    return server, (str(host_out), int(port_out))
