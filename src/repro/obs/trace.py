"""Epoch-correlated Chrome trace-event recorder.

Writes the `Trace Event Format`_ JSON array -- one event per line, the
closing bracket only on :meth:`TraceRecorder.close` -- so a crash mid-
run still leaves a file Perfetto and ``about:tracing`` load (both
tolerate a missing terminator), while a clean close yields well-formed
JSON that ``json.loads`` accepts.

Event vocabulary:

* ``X`` (complete) spans for tick stages, worker round trips, publisher
  fan-out, and epoch-log encode/write/fsync; ``ts``/``dur`` are in
  microseconds on the ``perf_counter`` clock, and ``args`` always
  carries the owning ``epoch`` so a tick's spans correlate across
  threads and workers.
* ``i`` (instant) events for faults -- worker respawns/reconnects,
  STALE snapshot re-feeds, subscriber drops -- and slow-tick flags.
* ``M`` (metadata) events naming the process and the logical tracks
  (coordinator, per-worker RTT rows, publisher, epoch-log writer).

Timestamps come from ``time.perf_counter()`` rescaled to microseconds
from the recorder's birth; they are diagnostics only and never touch
simulation state, so tracing cannot perturb a trajectory.

.. _Trace Event Format:
   https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
"""

from __future__ import annotations

import json
import os
import threading
import time
from types import TracebackType

__all__ = ["TraceRecorder", "load_trace", "TID_MAIN", "TID_PUBLISHER",
           "TID_LOG", "TID_WORKER_BASE"]

#: Logical track ids -- Chrome renders one row per (pid, tid).
TID_MAIN = 0          #: the coordinator's tick loop
TID_PUBLISHER = 1     #: spectator publisher fan-out
TID_LOG = 2           #: epoch-log background writer
TID_WORKER_BASE = 10  #: worker i's round-trip row is TID_WORKER_BASE + i


class TraceRecorder:
    """Append-only trace writer shared by every instrumented layer.

    Thread-safe: the tick thread, the epoch-log writer thread, and any
    exposition thread may emit concurrently.  ``null`` recorders are
    represented by ``None`` at the call sites (one ``if`` on the hot
    path), not by a null object -- span bookkeeping allocates, so the
    branch must skip it entirely when tracing is off.
    """

    def __init__(self, path: str, pid: int | None = None) -> None:
        self.path = path
        self.pid = os.getpid() if pid is None else pid
        self._t0 = time.perf_counter()
        self._lock = threading.Lock()
        self._fh = open(path, "w", encoding="utf-8", buffering=1 << 16)
        self._fh.write("[\n")
        self._closed = False
        self._first = True
        self.events_written = 0
        self.meta("process_name", {"name": "repro-coordinator"})
        self.thread_name(TID_MAIN, "tick pipeline")

    # -- clock ---------------------------------------------------------

    def now(self) -> float:
        """Microseconds since recorder birth (perf_counter clock)."""
        return (time.perf_counter() - self._t0) * 1e6

    # -- raw emit ------------------------------------------------------

    def _emit(self, event: dict[str, object]) -> None:
        line = json.dumps(event, separators=(",", ":"))
        with self._lock:
            if self._closed:
                return
            if self._first:
                self._first = False
            else:
                self._fh.write(",\n")
            self._fh.write(line)
            self.events_written += 1

    # -- event vocabulary ----------------------------------------------

    def complete(self, name: str, cat: str, ts: float, dur: float, *,
                 tid: int = TID_MAIN, epoch: int | None = None,
                 **args: object) -> None:
        """An ``X`` span: *ts* from :meth:`now`, *dur* in microseconds."""
        if epoch is not None:
            args["epoch"] = epoch
        self._emit({
            "name": name, "cat": cat, "ph": "X",
            "ts": round(ts, 3), "dur": round(dur, 3),
            "pid": self.pid, "tid": tid, "args": args,
        })

    def complete_perf(self, name: str, cat: str, start_perf: float,
                      end_perf: float, *, tid: int = TID_MAIN,
                      epoch: int | None = None, **args: object) -> None:
        """An ``X`` span from raw ``time.perf_counter()`` readings --
        lets instrumented code reuse the timings it already takes."""
        ts = (start_perf - self._t0) * 1e6
        self.complete(
            name, cat, ts, (end_perf - start_perf) * 1e6,
            tid=tid, epoch=epoch, **args,
        )

    def instant(self, name: str, cat: str, *, tid: int = TID_MAIN,
                epoch: int | None = None, **args: object) -> None:
        """An ``i`` marker (faults, watchdog flags) at the current time."""
        if epoch is not None:
            args["epoch"] = epoch
        self._emit({
            "name": name, "cat": cat, "ph": "i", "s": "t",
            "ts": round(self.now(), 3),
            "pid": self.pid, "tid": tid, "args": args,
        })

    def meta(
        self, name: str, args: dict[str, object], *, tid: int = TID_MAIN
    ) -> None:
        self._emit({
            "name": name, "ph": "M", "ts": 0,
            "pid": self.pid, "tid": tid, "args": args,
        })

    def thread_name(self, tid: int, name: str) -> None:
        self.meta("thread_name", {"name": name}, tid=tid)

    # -- span helper ---------------------------------------------------

    def span(self, name: str, cat: str, *, tid: int = TID_MAIN,
             epoch: int | None = None, **args: object) -> "_Span":
        """``with recorder.span(...):`` emits one complete event."""
        return _Span(self, name, cat, tid, epoch, args)

    # -- lifecycle -----------------------------------------------------

    def flush(self) -> None:
        with self._lock:
            if not self._closed:
                self._fh.flush()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._fh.write("\n]\n")
            self._fh.close()

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class _Span:
    __slots__ = ("_rec", "_name", "_cat", "_tid", "_epoch", "_args", "_ts")

    def __init__(
        self,
        rec: TraceRecorder,
        name: str,
        cat: str,
        tid: int,
        epoch: int | None,
        args: dict[str, object],
    ) -> None:
        self._rec = rec
        self._name = name
        self._cat = cat
        self._tid = tid
        self._epoch = epoch
        self._args = args
        self._ts = 0.0

    def __enter__(self) -> "_Span":
        self._ts = self._rec.now()
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        rec = self._rec
        rec.complete(
            self._name, self._cat, self._ts, rec.now() - self._ts,
            tid=self._tid, epoch=self._epoch, **self._args,
        )


def load_trace(path: str) -> list[dict[str, object]]:
    """Parse a trace file back to its event list.

    Accepts both the cleanly-closed well-formed array and a crash-torn
    file missing the terminator (the same leniency the viewers apply).
    """
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    try:
        events: list[dict[str, object]] = json.loads(text)
        return events
    except json.JSONDecodeError:
        body = text.strip()
        if body.startswith("["):
            body = body[1:]
        body = body.rstrip().rstrip(",")
        events = json.loads(f"[{body}]")
        return events
