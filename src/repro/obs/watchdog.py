"""Slow-tick watchdog: flag ticks beyond ``k x EWMA`` of recent totals.

The watchdog keeps an exponentially-weighted moving average of tick
totals (the same alpha the evaluator's cost model uses) and, once it
has seen a short warmup, flags any tick whose total exceeds
``factor * EWMA``.  A flagged tick is:

* logged at ``WARNING`` with the offending stage breakdown sorted by
  cost (the runbook line an operator greps for),
* counted in the registry (``watchdog_slow_ticks``), and
* dropped into the trace as an ``i`` event when tracing is on.

The EWMA is **not** fed the flagged total (a stall must not teach the
watchdog that stalls are normal); it resumes learning on the next clean
tick.  All inputs are the wall-clock timings `TickStats` already
measures -- the watchdog reads diagnostics and never touches simulation
state, so it cannot perturb a trajectory.
"""

from __future__ import annotations

import logging

logger = logging.getLogger("repro.obs.watchdog")

__all__ = ["SlowTickWatchdog"]


class SlowTickWatchdog:
    """Flag ticks slower than ``factor`` times the EWMA of recent totals.

    :param factor: the ``k`` in ``k x EWMA``; must be > 1.
    :param alpha: EWMA smoothing weight for each new clean total.
    :param warmup: ticks observed before flagging starts (the first few
        ticks pay index-build and worker-snapshot costs that are not
        stalls).
    """

    def __init__(self, factor: float, *, alpha: float = 0.3,
                 warmup: int = 3) -> None:
        if not factor > 1.0:
            raise ValueError(f"slow_tick_factor must be > 1, got {factor}")
        self.factor = factor
        self.alpha = alpha
        self.warmup = warmup
        self.ewma: float | None = None
        self.observed = 0
        self.flagged: list[dict[str, object]] = []

    def observe(self, tick: int, total: float,
                breakdown: dict[str, float]) -> bool:
        """Feed one tick's total and stage breakdown; True when flagged."""
        self.observed += 1
        if self.ewma is None:
            self.ewma = total
            return False
        slow = (
            self.observed > self.warmup
            and total > self.factor * self.ewma
        )
        if slow:
            stages = ", ".join(
                f"{name}={seconds * 1e3:.2f}ms"
                for name, seconds in sorted(
                    breakdown.items(), key=lambda kv: -kv[1]
                )
                if seconds
            )
            logger.warning(
                "slow tick %d: %.2fms > %.1fx EWMA %.2fms (%s)",
                tick, total * 1e3, self.factor, self.ewma * 1e3, stages,
            )
            self.flagged.append({
                "tick": tick,
                "total": total,
                "ewma": self.ewma,
                "breakdown": dict(breakdown),
            })
        else:
            self.ewma += self.alpha * (total - self.ewma)
        return slow
