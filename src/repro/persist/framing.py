"""On-disk record framing for the durable epoch log.

The log file is a header followed by a flat sequence of CRC-framed
records.  The payloads are exactly the pickled update blobs the replica
protocol already ships over the wire (:func:`~repro.env.sharding
.snapshot_blob` / :func:`~repro.env.sharding.delta_blob`), so durability
reuses the wire encoders verbatim -- a log is a recorded replica feed.

Layout::

    file   := file_header record*
    file_header := magic:8 ("REPROLOG") version:1 reserved:7
    record := rec_magic:2 rtype:1 epoch:8 (signed BE) length:4 crc:4
              payload[length]

The CRC (``zlib.crc32``) covers ``rtype | epoch | length | payload`` --
everything after the record magic -- so a record is either wholly valid
or detectably torn.  A coordinator killed mid-write (power loss,
``kill -9``) leaves at most one partial record at the tail; readers
surface it as :class:`TornTailError` carrying the offset where the
valid prefix ends, and recovery truncates there instead of
half-applying it.

Record types:

* :data:`REC_META` -- pickled dict describing the producer (key
  attribute, seed, game construction kwargs); written once at attach so
  a log is self-contained for recovery;
* :data:`REC_SNAPSHOT` -- a full-state checkpoint: the standard
  snapshot blob ``(tag, epoch, rows, shard_conf)``;
* :data:`REC_DELTA` -- one tick's change set: the standard delta blob
  ``(tag, ReplicaDelta)``;
* :data:`REC_STATE` -- a small pickled dict of game-level counters
  (e.g. the battle summary) stamped at the same epoch as the preceding
  snapshot/delta record, so recovery restores them exactly.
"""

from __future__ import annotations

import struct
import zlib
from typing import BinaryIO, Iterator, NamedTuple

#: Identifies an epoch-log file; never changes.
FILE_MAGIC = b"REPROLOG"

#: Bump when the record layout or payload vocabulary changes
#: incompatibly.  1: the initial format described above.
FORMAT_VERSION = 1

#: 8-byte magic + 1-byte version + 7 reserved zero bytes.
FILE_HEADER = FILE_MAGIC + bytes([FORMAT_VERSION]) + b"\x00" * 7

#: Per-record magic: resynchronization anchor + cheap corruption check.
REC_MAGIC = b"\xc5\x1e"

REC_SNAPSHOT = 1
REC_DELTA = 2
REC_STATE = 3
REC_META = 4

_KNOWN_TYPES = frozenset((REC_SNAPSHOT, REC_DELTA, REC_STATE, REC_META))

#: rec_magic:2s | rtype:B | epoch:q | length:I | crc:I
_RECORD = struct.Struct(">2sBqII")

#: Size of the fixed per-record header (19 bytes).
RECORD_HEADER_SIZE = _RECORD.size

#: Ceiling on one record's payload -- same spirit as the transport's
#: frame guard: a corrupt length field must never trigger the
#: allocation it advertises.
DEFAULT_MAX_PAYLOAD = 1 << 31


class LogFormatError(ValueError):
    """The file is not an epoch log this reader understands."""


class TornTailError(ValueError):
    """The log's tail holds a partial or corrupt record.

    ``offset`` is where the valid prefix ends -- truncating the file
    there yields a log of wholly-valid records.  Everything before it
    has already been CRC-verified.
    """

    def __init__(self, offset: int, reason: str) -> None:
        super().__init__(f"torn log tail at byte {offset}: {reason}")
        self.offset = offset
        self.reason = reason


class Record(NamedTuple):
    """One decoded log record plus its file position."""

    offset: int  #: where the record's header starts
    end: int  #: offset just past the payload (next record's header)
    rtype: int
    epoch: int
    payload: bytes


def encode_record(rtype: int, epoch: int, payload: bytes) -> bytes:
    """Frame one payload as a complete record (header + CRC + payload)."""
    if rtype not in _KNOWN_TYPES:
        raise ValueError(f"unknown record type {rtype!r}")
    body = struct.pack(">BqI", rtype, epoch, len(payload))
    crc = zlib.crc32(payload, zlib.crc32(body))
    return _RECORD.pack(REC_MAGIC, rtype, epoch, len(payload), crc) + payload


def check_file_header(header: bytes) -> None:
    """Validate the 16-byte file header; raises :class:`LogFormatError`."""
    if len(header) < len(FILE_HEADER):
        raise LogFormatError(
            f"file is {len(header)} bytes; not a complete epoch-log header"
        )
    if header[: len(FILE_MAGIC)] != FILE_MAGIC:
        raise LogFormatError("bad magic; not an epoch log")
    version = header[len(FILE_MAGIC)]
    if version != FORMAT_VERSION:
        raise LogFormatError(
            f"epoch-log format version {version} (this reader speaks "
            f"{FORMAT_VERSION})"
        )


def iter_records(
    fh: BinaryIO,
    *,
    start: int = len(FILE_HEADER),
    max_payload: int = DEFAULT_MAX_PAYLOAD,
) -> Iterator[Record]:
    """Yield verified records from *start*; stop at EOF or a torn tail.

    The file header must already have been checked.  Raises
    :class:`TornTailError` (with the valid-prefix offset) on a partial
    header, unknown type, absurd length, short payload, or CRC
    mismatch -- every way a crashed writer can leave the tail.
    """
    fh.seek(start)
    offset = start
    while True:
        header = fh.read(_RECORD.size)
        if not header:
            return
        if len(header) < _RECORD.size:
            raise TornTailError(offset, "partial record header")
        magic, rtype, epoch, length, crc = _RECORD.unpack(header)
        if magic != REC_MAGIC:
            raise TornTailError(offset, f"bad record magic {magic!r}")
        if rtype not in _KNOWN_TYPES:
            raise TornTailError(offset, f"unknown record type {rtype}")
        if length > max_payload:
            raise TornTailError(
                offset, f"record declares a {length}-byte payload"
            )
        payload = fh.read(length)
        if len(payload) < length:
            raise TornTailError(
                offset,
                f"partial payload ({len(payload)} of {length} bytes)",
            )
        want = zlib.crc32(header[2:-4])
        want = zlib.crc32(payload, want)
        if want != crc:
            raise TornTailError(offset, "CRC mismatch")
        end = offset + _RECORD.size + length
        yield Record(offset, end, rtype, epoch, payload)
        offset = end
