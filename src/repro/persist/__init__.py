"""``repro.persist`` -- durability over the replica protocol.

The epoch-versioned snapshot/delta blobs of the replica protocol
(:mod:`repro.env.sharding`) are a complete serialization of the
simulation's state evolution; this package persists them:

* :mod:`repro.persist.framing` -- the CRC-framed on-disk record format
  (file header, record header, torn-tail detection);
* :mod:`repro.persist.log` -- :class:`EpochLogWriter` (the engine's
  per-tick append hook: deltas when they chain, full-snapshot
  checkpoints on a cadence, disk writes on a background thread),
  :class:`EpochLogReader` (scan, inspect, and **replay** any retained
  epoch through the same :class:`~repro.env.sharding.ReplicaTable`
  machinery live replicas use -- bit-exact rows and row order), and
  :func:`truncate_torn_tail` (crash recovery: drop a partial tail
  record loudly instead of half-applying it);
* :mod:`repro.persist.history` -- :class:`EpochHistory`, the in-memory
  bounded history a spectator replica keeps so time-travel queries can
  be answered at any retained epoch.

Wired up by ``EngineConfig(epoch_log=...)`` /
``BattleSimulation(epoch_log=...)`` on the writing side and
``BattleSimulation.load`` / ``.recover`` / ``run_battle(resume_from=
...)`` on the reading side; ``SpectatorClient.query(..., epoch=K)``
reaches the history through the spectator server.
"""

from .framing import (
    FILE_HEADER,
    FORMAT_VERSION,
    REC_DELTA,
    REC_META,
    REC_SNAPSHOT,
    REC_STATE,
    LogFormatError,
    Record,
    TornTailError,
    encode_record,
    iter_records,
)
from .history import EpochHistory
from .log import (
    EpochLogError,
    EpochLogReader,
    EpochLogStats,
    EpochLogWriter,
    ReplayResult,
    read_state_file,
    truncate_torn_tail,
    write_state_file,
)

__all__ = [
    "FILE_HEADER",
    "FORMAT_VERSION",
    "REC_DELTA",
    "REC_META",
    "REC_SNAPSHOT",
    "REC_STATE",
    "EpochHistory",
    "EpochLogError",
    "EpochLogReader",
    "EpochLogStats",
    "EpochLogWriter",
    "LogFormatError",
    "Record",
    "ReplayResult",
    "TornTailError",
    "encode_record",
    "iter_records",
    "read_state_file",
    "truncate_torn_tail",
    "write_state_file",
]
