"""In-memory epoch history for spectator time-travel queries.

A spectator replica applies the feed's snapshot/delta updates and moves
forward; :class:`EpochHistory` is the retained rear-view mirror.  It
records every applied update -- snapshots as natural checkpoints,
deltas as-is -- and synthesizes a checkpoint every *checkpoint_every*
epochs by keeping a **shallow copy of the replica's row list**.  That
copy is exact forever: :class:`~repro.env.sharding.ReplicaTable` never
mutates a row in place (delta application replaces changed rows with
fresh dicts), so the epoch-``k`` row objects *are* the epoch-``k``
state.  Checkpoints therefore cost one list copy, not a deep copy of
the environment.

:meth:`reconstruct` rebuilds the rows at any retained epoch by applying
the nearest checkpoint and the deltas after it through a scratch
``ReplicaTable`` -- the same machinery the live replica used, so the
reconstruction reproduces the coordinator's row order bit-exactly and a
:class:`~repro.serve.queries.QueryEngine` over it answers bit-identically
to the authoritative engine at that epoch.

Retention trims from the front, always leaving a checkpoint first, so
every epoch inside the advertised span stays reconstructible.
"""

from __future__ import annotations

from bisect import bisect_left

from ..env.sharding import ReplicaDelta, ReplicaTable

_SNAPSHOT = 0
_DELTA = 1

#: ``(_SNAPSHOT, rows)`` or ``(_DELTA, ReplicaDelta)``.
_Entry = tuple[int, "list[dict[str, object]] | ReplicaDelta"]


class EpochHistory:
    """Bounded history of one replica's epoch-versioned states."""

    __slots__ = ("key_attr", "checkpoint_every", "retain", "_epochs", "_entries")

    def __init__(
        self,
        key_attr: str,
        *,
        checkpoint_every: int = 32,
        retain: int = 256,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if retain < 1:
            raise ValueError(f"retain must be >= 1, got {retain}")
        self.key_attr = key_attr
        self.checkpoint_every = checkpoint_every
        self.retain = retain
        self._epochs: list[int] = []
        #: Parallel to ``_epochs``: ``(_SNAPSHOT, rows)`` or ``(_DELTA, rd)``.
        self._entries: list[_Entry] = []

    # -- recording ----------------------------------------------------------------

    def record_snapshot(
        self, epoch: int, rows: list[dict[str, object]]
    ) -> None:
        """The feed delivered a full snapshot: a free checkpoint."""
        self._record(epoch, (_SNAPSHOT, list(rows)))

    def record_delta(
        self, rd: ReplicaDelta, rows_after: list[dict[str, object]]
    ) -> None:
        """The feed delivered a delta the replica just applied.

        *rows_after* is the replica's row list at ``rd.epoch``; when the
        checkpoint cadence comes due the history stores a shallow copy
        of it instead of the delta, bounding every reconstruction to at
        most *checkpoint_every* delta applications.
        """
        last_checkpoint = self._last_checkpoint_epoch()
        entry: _Entry
        if (
            last_checkpoint is None
            or rd.epoch - last_checkpoint >= self.checkpoint_every
        ):
            entry = (_SNAPSHOT, list(rows_after))
        else:
            entry = (_DELTA, rd)
        self._record(rd.epoch, entry)

    def _record(self, epoch: int, entry: _Entry) -> None:
        if self._epochs and epoch <= self._epochs[-1]:
            # the feed moved backwards (coordinator restored an earlier
            # state): everything retained describes a superseded
            # timeline, so drop it rather than serve two histories
            self._epochs.clear()
            self._entries.clear()
            if entry[0] == _DELTA:
                return  # a delta without its base is unusable
        self._epochs.append(epoch)
        self._entries.append(entry)
        self._trim()

    def _last_checkpoint_epoch(self) -> int | None:
        for i in range(len(self._entries) - 1, -1, -1):
            if self._entries[i][0] == _SNAPSHOT:
                return self._epochs[i]
        return None

    def _trim(self) -> None:
        if not self._epochs:
            return
        target_first = self._epochs[-1] - self.retain + 1
        if self._epochs[0] >= target_first:
            return
        # keep the latest checkpoint at or before the retention target
        # (trimming only at checkpoint boundaries keeps the whole
        # advertised span reconstructible)
        keep_from: int | None = None
        for i, (kind, _) in enumerate(self._entries):
            if kind == _SNAPSHOT and self._epochs[i] <= target_first:
                keep_from = i
            elif self._epochs[i] > target_first:
                break
        if keep_from:
            del self._epochs[:keep_from]
            del self._entries[:keep_from]

    # -- inspection ---------------------------------------------------------------

    def span(self) -> tuple[int, int] | None:
        """Inclusive ``(first, last)`` reconstructible epoch, or ``None``."""
        for i, (kind, _) in enumerate(self._entries):
            if kind == _SNAPSHOT:
                return self._epochs[i], self._epochs[-1]
        return None

    def covers(self, epoch: int) -> bool:
        """True when *epoch* was recorded and is still reconstructible."""
        i = bisect_left(self._epochs, epoch)
        if i >= len(self._epochs) or self._epochs[i] != epoch:
            return False
        span = self.span()
        return span is not None and span[0] <= epoch

    def __len__(self) -> int:
        return len(self._entries)

    # -- reconstruction -----------------------------------------------------------

    def reconstruct(self, epoch: int) -> list[dict[str, object]]:
        """The replica's rows at *epoch*, in coordinator row order.

        Returns a fresh list; the row dicts are shared with the history
        (and are never mutated by it or the live replica).
        """
        i = bisect_left(self._epochs, epoch)
        if i >= len(self._epochs) or self._epochs[i] != epoch:
            raise KeyError(f"epoch {epoch} is not retained")
        base = i
        while base >= 0 and self._entries[base][0] != _SNAPSHOT:
            base -= 1
        if base < 0:
            raise KeyError(
                f"epoch {epoch} has no retained checkpoint before it"
            )
        table = ReplicaTable(self.key_attr)
        base_rows = self._entries[base][1]
        assert isinstance(base_rows, list)
        table.apply_snapshot(self._epochs[base], list(base_rows))
        for j in range(base + 1, i + 1):
            rd = self._entries[j][1]
            assert isinstance(rd, ReplicaDelta)
            table.apply_delta(rd)
        return table.rows
