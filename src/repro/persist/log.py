"""The durable epoch log: append the replica feed to disk, replay it back.

:class:`EpochLogWriter` is what the engine's publish/log hook drives
once per tick.  It receives the post-tick state (epoch, rows, shard
configuration) plus the captured :class:`~repro.env.sharding
.ReplicaDelta`, and appends **one epoch record** -- the delta when it
chains from the last logged epoch, a full-snapshot *checkpoint*
otherwise (first record, unusable diff, or the checkpoint cadence
coming due) -- optionally followed by a small game-state record.
Encoding and pickling happen in the caller's thread (cheap for deltas,
and it makes the per-tick byte count exact); the disk write and any
``fsync`` run on a background thread, so a slow disk never blocks the
tick loop.  A failed background write is remembered and re-raised on
the next append/flush/close -- the simulation itself is never corrupted
by its log.

:class:`EpochLogReader` scans a log (CRC-verifying every record),
exposes the recorded metadata and game states, and :meth:`replays
<EpochLogReader.replay>` the state at any retained epoch by applying the
nearest checkpoint snapshot and the deltas after it through the same
:class:`~repro.env.sharding.ReplicaTable` machinery every replica holder
uses -- so a replayed environment reproduces the coordinator's rows
*and row order* exactly.

:func:`truncate_torn_tail` is the crash-recovery entry point: it
detects a partial/corrupt tail record (the signature of a writer killed
mid-write), logs it loudly, and truncates the file back to the valid
prefix so recovery never half-applies a record.
"""

from __future__ import annotations

import logging
import os
import pickle
import queue
import threading
import time
from dataclasses import dataclass
from types import TracebackType
from typing import Any, Iterator

from ..env.sharding import (
    NO_REPLICA,
    UPDATE_DELTA,
    UPDATE_SNAPSHOT,
    ReplicaDelta,
    ReplicaTable,
    StaleReplicaError,
    delta_blob,
    snapshot_blob,
)
from ..obs import (
    NULL_REGISTRY,
    TID_LOG,
    TID_MAIN,
    MetricsRegistry,
    RegistryStats,
    TraceRecorder,
)
from .framing import (
    FILE_HEADER,
    REC_DELTA,
    REC_META,
    REC_SNAPSHOT,
    REC_STATE,
    RECORD_HEADER_SIZE,
    Record,
    TornTailError,
    check_file_header,
    encode_record,
    iter_records,
)

logger = logging.getLogger("repro.persist")

_PICKLE_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: ``fsync`` policies: never (close only), at checkpoints, every record.
FSYNC_POLICIES = ("never", "checkpoint", "always")


class EpochLogError(RuntimeError):
    """The epoch log failed (I/O error, unusable or corrupt contents)."""


class EpochLogStats(RegistryStats):
    """Counters of one writer's lifetime.

    Attribute reads and writes behave exactly like the dataclass this
    replaces; with a metrics registry bound at construction each field
    is a registry cell (the ``epochlog_*`` series).  Caller-thread
    fields except ``bytes_written``, which the background thread updates
    and equals ``bytes_enqueued`` after a ``flush()``.
    """

    _PREFIX = "epochlog"
    _COUNTER_FIELDS = (
        "records",
        "snapshot_records",
        "delta_records",
        "state_records",
        "bytes_enqueued",
        "bytes_written",
    )
    _GAUGE_FIELDS = {
        "last_epoch": NO_REPLICA,
        "last_checkpoint_epoch": NO_REPLICA,
    }


class EpochLogWriter:
    """Append-only writer of the on-disk epoch log.

    Single-owner: one thread (the engine's tick loop) appends.  With
    *background* (the default) the file writes happen on a daemon
    thread fed through a queue; ``flush()`` waits for the queue to
    drain and fsyncs, ``close()`` flushes, fsyncs, and joins the
    thread.  *fsync* selects durability: ``"never"`` (close only),
    ``"checkpoint"`` (default -- every snapshot checkpoint), or
    ``"always"`` (every record; what a crash drill wants).

    *resume* appends to an existing log (recovery re-attaching after a
    crash) instead of starting a fresh one; the caller must have
    truncated any torn tail first, and should append a fresh checkpoint
    immediately so the resumed log chains from a durable base.
    """

    def __init__(
        self,
        path: str,
        *,
        checkpoint_every: int = 64,
        fsync: str = "checkpoint",
        background: bool = True,
        resume: bool = False,
        metrics: MetricsRegistry | None = None,
        trace: TraceRecorder | None = None,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if fsync not in FSYNC_POLICIES:
            raise ValueError(
                f"unknown fsync policy {fsync!r}; pick from {FSYNC_POLICIES}"
            )
        self.path = os.fspath(path)
        self.checkpoint_every = checkpoint_every
        self.fsync = fsync
        registry = metrics if metrics is not None else NULL_REGISTRY
        self._trace = trace
        if trace is not None:
            trace.thread_name(TID_LOG, "epoch log writer")
        self._m_queue_depth = registry.gauge("epochlog_queue_depth")
        self._m_fsync_seconds = registry.histogram("epochlog_fsync_seconds")
        self._m_write_seconds = registry.histogram("epochlog_write_seconds")
        self.stats = EpochLogStats(metrics)
        self._error: BaseException | None = None
        self._closed = False
        fresh = True
        if resume and os.path.exists(self.path):
            size = os.path.getsize(self.path)
            if size >= len(FILE_HEADER):
                with open(self.path, "rb") as fh:
                    check_file_header(fh.read(len(FILE_HEADER)))
                fresh = False
        self._fh = open(self.path, "ab" if not fresh else "wb")
        if fresh:
            self._fh.write(FILE_HEADER)
            self.stats.bytes_enqueued += len(FILE_HEADER)
            self.stats.bytes_written += len(FILE_HEADER)
        self._queue: queue.Queue[tuple[bytes, bool, int] | None] | None = None
        self._thread: threading.Thread | None = None
        if background:
            self._queue = queue.Queue()
            self._thread = threading.Thread(
                target=self._drain, name="repro-epoch-log", daemon=True
            )
            self._thread.start()

    # -- appends (caller thread) --------------------------------------------------

    def append_meta(self, meta: dict[str, object]) -> int:
        """Record the producer's self-description (once, at attach)."""
        return self._append(
            REC_META, 0, pickle.dumps(meta, protocol=_PICKLE_PROTOCOL)
        )

    def append_epoch(
        self,
        epoch: int,
        rows: list[dict[str, object]],
        shard_conf: tuple[object, ...],
        *,
        delta: ReplicaDelta | None = None,
        state: dict[str, object] | None = None,
        force_snapshot: bool = False,
    ) -> int:
        """Log one post-tick state; returns the bytes enqueued.

        Writes *delta* when it chains (``delta.base_epoch`` equals the
        last logged epoch) and no checkpoint is due; otherwise a full
        snapshot checkpoint of *rows*.  *state*, when given, is appended
        as a :data:`~repro.persist.framing.REC_STATE` record at the same
        epoch -- after the epoch record, so a durable state implies a
        durable (replayable) epoch.
        """
        st = self.stats
        checkpoint_due = (
            force_snapshot
            or st.last_checkpoint_epoch == NO_REPLICA
            or epoch - st.last_checkpoint_epoch >= self.checkpoint_every
        )
        usable = (
            delta is not None
            and delta.epoch == epoch
            and delta.base_epoch == st.last_epoch
        )
        if usable and not checkpoint_due:
            n = self._append(REC_DELTA, epoch, delta_blob(delta))
            st.delta_records += 1
        else:
            n = self._append(
                REC_SNAPSHOT, epoch, snapshot_blob(epoch, rows, shard_conf)
            )
            st.snapshot_records += 1
            st.last_checkpoint_epoch = epoch
            checkpoint_due = True
        st.last_epoch = epoch
        if state is not None:
            n += self.append_state(epoch, state, sync=checkpoint_due)
        return n

    def append_state(
        self, epoch: int, state: dict[str, object], *, sync: bool = False
    ) -> int:
        """Append a game-state record stamped at *epoch*."""
        n = self._append(
            REC_STATE,
            epoch,
            pickle.dumps(state, protocol=_PICKLE_PROTOCOL),
            sync=sync,
        )
        self.stats.state_records += 1
        return n

    def _append(
        self, rtype: int, epoch: int, payload: bytes, *, sync: bool = False
    ) -> int:
        self._raise_if_failed()
        if self._closed:
            raise EpochLogError(f"epoch log {self.path!r} is closed")
        trace = self._trace
        t0 = time.perf_counter() if trace is not None else 0.0
        buf = encode_record(rtype, epoch, payload)
        if trace is not None:
            trace.complete_perf(
                "log_encode", "epochlog", t0, time.perf_counter(),
                tid=TID_MAIN, epoch=epoch, bytes=len(buf),
            )
        want_sync = sync or self.fsync == "always" or (
            self.fsync == "checkpoint" and rtype == REC_SNAPSHOT
        )
        if self._queue is not None:
            self._queue.put((buf, want_sync, epoch))
            self._m_queue_depth.set(self._queue.qsize())
        else:
            self._write(buf, want_sync, epoch)
            self._raise_if_failed()
        self.stats.records += 1
        self.stats.bytes_enqueued += len(buf)
        return len(buf)

    # -- the background writer ----------------------------------------------------

    def _write(self, buf: bytes, sync: bool, epoch: int | None = None) -> None:
        trace = self._trace
        try:
            t0 = time.perf_counter()
            self._fh.write(buf)
            t1 = time.perf_counter()
            self._m_write_seconds.observe(t1 - t0)
            if trace is not None:
                trace.complete_perf(
                    "log_write", "epochlog", t0, t1,
                    tid=TID_LOG, epoch=epoch, bytes=len(buf),
                )
            if sync:
                t0 = time.perf_counter()
                self._fh.flush()
                os.fsync(self._fh.fileno())
                t1 = time.perf_counter()
                self._m_fsync_seconds.observe(t1 - t0)
                if trace is not None:
                    trace.complete_perf(
                        "log_fsync", "epochlog", t0, t1,
                        tid=TID_LOG, epoch=epoch,
                    )
            # reprolint: disable=cross-thread-mutation -- _write runs on
            # exactly one thread per writer mode (drain thread when
            # background, caller thread when synchronous), never both
            self.stats.bytes_written += len(buf)
        except BaseException as exc:  # noqa: BLE001 - remembered, re-raised
            # reprolint: disable=cross-thread-mutation -- single-writer per
            # mode (see above); readers tolerate a GIL-atomic torn read
            self._error = exc

    def _drain(self) -> None:
        q = self._queue
        assert q is not None  # only started in background mode
        while True:
            item = q.get()
            self._m_queue_depth.set(q.qsize())
            try:
                if item is None:
                    return
                if self._error is None:
                    self._write(*item)
            finally:
                q.task_done()

    def _raise_if_failed(self) -> None:
        if self._error is not None:
            raise EpochLogError(
                f"epoch log {self.path!r} write failed: {self._error}"
            ) from self._error

    # -- lifecycle ----------------------------------------------------------------

    def flush(self) -> None:
        """Block until every enqueued record is on disk (fsynced)."""
        self._raise_if_failed()
        if self._queue is not None:
            self._queue.join()
        self._raise_if_failed()
        try:
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as exc:
            raise EpochLogError(
                f"epoch log {self.path!r} flush failed: {exc}"
            ) from exc

    def close(self) -> None:
        """Flush, fsync, stop the background thread, close the file."""
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            assert self._queue is not None
            self._queue.put(None)
            self._thread.join()
            self._thread = None
        error = self._error
        try:
            if error is None:
                self._fh.flush()
                os.fsync(self._fh.fileno())
        finally:
            self._fh.close()
        if error is not None:
            raise EpochLogError(
                f"epoch log {self.path!r} write failed: {error}"
            ) from error

    def __enter__(self) -> "EpochLogWriter":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Reading and replay
# ---------------------------------------------------------------------------


@dataclass
class ReplayResult:
    """The replayed state at :attr:`epoch` (coordinator row order)."""

    epoch: int
    rows: list[dict[str, object]]
    shard_conf: tuple[object, ...] | None = None
    #: Records applied to reach the state (1 snapshot + N deltas).
    applied: int = 0


def _decode_update(record: Record) -> Any:
    try:
        return pickle.loads(record.payload)
    except Exception as exc:
        raise EpochLogError(
            f"record at byte {record.offset} has an undecodable payload: "
            f"{exc}"
        ) from exc


class EpochLogReader:
    """Random-access reader over one (already whole) epoch log.

    Scans the record index once at construction, CRC-verifying every
    record.  A torn tail raises :class:`~repro.persist.framing
    .TornTailError` -- run :func:`truncate_torn_tail` first when
    recovering from a crash.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fh = open(self.path, "rb")
        check_file_header(self._fh.read(len(FILE_HEADER)))
        #: (offset, end, rtype, epoch) per record, in file order.
        self.index: list[tuple[int, int, int, int]] = []
        for rec in iter_records(self._fh):
            self.index.append((rec.offset, rec.end, rec.rtype, rec.epoch))

    def close(self) -> None:
        self._fh.close()

    def __enter__(self) -> "EpochLogReader":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()

    def _load(self, i: int) -> Record:
        offset, end, rtype, epoch = self.index[i]
        self._fh.seek(offset + RECORD_HEADER_SIZE)
        payload = self._fh.read(end - offset - RECORD_HEADER_SIZE)
        return Record(offset, end, rtype, epoch, payload)

    # -- inspection ---------------------------------------------------------------

    def meta(self) -> dict[str, object] | None:
        """The first recorded metadata dict, or ``None``."""
        for i, (_, _, rtype, _) in enumerate(self.index):
            if rtype == REC_META:
                return _decode_update(self._load(i))
        return None

    @property
    def first_epoch(self) -> int:
        """Earliest replayable epoch (first snapshot), or ``NO_REPLICA``."""
        for _, _, rtype, epoch in self.index:
            if rtype == REC_SNAPSHOT:
                return epoch
        return NO_REPLICA

    @property
    def last_epoch(self) -> int:
        """Latest logged epoch, or ``NO_REPLICA`` for an empty log."""
        for _, _, rtype, epoch in reversed(self.index):
            if rtype in (REC_SNAPSHOT, REC_DELTA):
                return epoch
        return NO_REPLICA

    def last_state(
        self, upto: int | None = None
    ) -> tuple[int, dict[str, object]] | None:
        """The latest game-state record at epoch <= *upto* (or overall)."""
        for i in range(len(self.index) - 1, -1, -1):
            _, _, rtype, epoch = self.index[i]
            if rtype == REC_STATE and (upto is None or epoch <= upto):
                return epoch, _decode_update(self._load(i))
        return None

    # -- replay -------------------------------------------------------------------

    def replay(
        self, upto: int | None = None, *, key_attr: str | None = None
    ) -> ReplayResult:
        """Reconstruct the state at the latest epoch <= *upto*.

        Seeks the last checkpoint snapshot at or before *upto* and
        applies the deltas after it, exactly as a live replica would --
        the replayed rows reproduce the coordinator's row order
        bit-exactly.  *key_attr* defaults to the recorded metadata's.
        """
        if key_attr is None:
            meta = self.meta()
            key_attr = (meta or {}).get("key_attr")
            if key_attr is None:
                raise EpochLogError(
                    f"epoch log {self.path!r} records no key_attr; pass one"
                )
        base: int | None = None
        for i in range(len(self.index) - 1, -1, -1):
            _, _, rtype, epoch = self.index[i]
            if rtype == REC_SNAPSHOT and (upto is None or epoch <= upto):
                base = i
                break
        if base is None:
            raise EpochLogError(
                f"epoch log {self.path!r} holds no checkpoint at or "
                f"before epoch {upto!r}"
            )
        table = ReplicaTable(key_attr)
        update = _decode_update(self._load(base))
        if update[0] != UPDATE_SNAPSHOT:
            raise EpochLogError(
                f"record at byte {self.index[base][0]} is framed as a "
                f"snapshot but decodes as {update[0]!r}"
            )
        _, epoch, rows, shard_conf = update
        table.apply_snapshot(epoch, rows)
        applied = 1
        for i in range(base + 1, len(self.index)):
            _, _end, rtype, epoch = self.index[i]
            if rtype != REC_DELTA:
                continue
            if upto is not None and epoch > upto:
                break
            update = _decode_update(self._load(i))
            if update[0] != UPDATE_DELTA:
                raise EpochLogError(
                    f"record at byte {self.index[i][0]} is framed as a "
                    f"delta but decodes as {update[0]!r}"
                )
            try:
                table.apply_delta(update[1])
            except StaleReplicaError as exc:
                raise EpochLogError(
                    f"delta at byte {self.index[i][0]} does not chain: "
                    f"{exc}"
                ) from exc
            applied += 1
        return ReplayResult(
            epoch=table.epoch,
            rows=table.rows,
            shard_conf=shard_conf,
            applied=applied,
        )

    def replay_states(
        self, *, key_attr: str | None = None
    ) -> Iterator[tuple[int, list[dict[str, object]]]]:
        """Yield ``(epoch, rows)`` for every logged epoch, in one pass.

        The cheap way to sweep the whole history (benchmarks, audits):
        each yielded ``rows`` list is the live replica's -- copy it if
        you keep it past the next step.
        """
        if key_attr is None:
            meta = self.meta()
            key_attr = (meta or {}).get("key_attr")
            if key_attr is None:
                raise EpochLogError(
                    f"epoch log {self.path!r} records no key_attr; pass one"
                )
        table = ReplicaTable(key_attr)
        for i, (_, _, rtype, _) in enumerate(self.index):
            if rtype == REC_SNAPSHOT:
                _, epoch, rows, _conf = _decode_update(self._load(i))
                table.apply_snapshot(epoch, rows)
            elif rtype == REC_DELTA:
                rd = _decode_update(self._load(i))[1]
                try:
                    table.apply_delta(rd)
                except StaleReplicaError as exc:
                    raise EpochLogError(
                        f"delta at byte {self.index[i][0]} does not "
                        f"chain: {exc}"
                    ) from exc
            else:
                continue
            yield table.epoch, table.rows


def truncate_torn_tail(path: str) -> int:
    """Drop a torn tail record; returns the bytes truncated (0 if whole).

    The crash-recovery preamble: verifies the log record by record, and
    when the tail is partial or corrupt (a writer killed mid-write),
    **logs it loudly** and truncates the file back to the last wholly
    valid record.  A file too short to hold even the header is
    truncated to empty.
    """
    path = os.fspath(path)
    size = os.path.getsize(path)
    if size < len(FILE_HEADER):
        logger.warning(
            "epoch log %s: %d-byte file cannot hold the %d-byte header; "
            "truncating to empty",
            path,
            size,
            len(FILE_HEADER),
        )
        with open(path, "r+b") as fh:
            fh.truncate(0)
        return size
    with open(path, "rb") as fh:
        check_file_header(fh.read(len(FILE_HEADER)))
        valid_end = len(FILE_HEADER)
        try:
            for rec in iter_records(fh):
                valid_end = rec.end
        except TornTailError as exc:
            dropped = size - exc.offset
            logger.warning(
                "epoch log %s: torn tail (%s); truncating %d bytes back "
                "to offset %d -- the last durable record wins, the "
                "partial one is discarded",
                path,
                exc.reason,
                dropped,
                exc.offset,
            )
            with open(path, "r+b") as out:
                out.truncate(exc.offset)
            return dropped
    return 0


# ---------------------------------------------------------------------------
# Single-state save files (BattleSimulation.save / load)
# ---------------------------------------------------------------------------


def write_state_file(path: str, epoch: int, state: dict[str, object]) -> int:
    """Write a one-record save file (same framing as the log)."""
    buf = FILE_HEADER + encode_record(
        REC_STATE, epoch, pickle.dumps(state, protocol=_PICKLE_PROTOCOL)
    )
    with open(path, "wb") as fh:
        fh.write(buf)
        fh.flush()
        os.fsync(fh.fileno())
    return len(buf)


def read_state_file(path: str) -> tuple[int, dict[str, object]]:
    """Read a save file back; returns ``(epoch, state)``.

    CRC-verified like any log record; a truncated or corrupt save
    surfaces as :class:`~repro.persist.framing.TornTailError` /
    :class:`EpochLogError`, never as a half-loaded state.
    """
    with open(path, "rb") as fh:
        check_file_header(fh.read(len(FILE_HEADER)))
        for rec in iter_records(fh):
            if rec.rtype != REC_STATE:
                raise EpochLogError(
                    f"{path!r} is not a save file (record type {rec.rtype})"
                )
            return rec.epoch, _decode_update(rec)
    raise EpochLogError(f"{path!r} holds no state record")
