"""The restricted SQL fragment of Eqs. (4) and (5).

The paper assumes every built-in function is expressible in a restricted
SQL shape:

* **aggregate functions** (Eq. 5, Figure 4)::

      SELECT a1(h1(u,e,r)), ..., ak(hk(u,e,r))
      FROM E e WHERE phi(u, e, r);

* **action functions** (Eq. 4, Figure 5)::

      SELECT e.K, h1(u,e,r) AS A1, ..., hk(u,e,r) AS Ak
      FROM E e WHERE phi(u, e, r);

This module defines the spec dataclasses for both shapes, a parser for
the SQL text (so Figure 4/5 can be transcribed verbatim), and the *naive*
evaluation of specs by scanning the environment -- the O(n)-per-call
baseline of Section 6.  Index-accelerated evaluation lives in
:mod:`repro.engine.evaluator` and :mod:`repro.algebra.plans`.

Name-resolution conventions (documented for script authors):

* the table alias (``e`` by default) refers to the scanned row; ``E.x``
  in a WHERE clause is normalised to ``e.x`` as in Figure 4;
* bare names that are not function parameters are treated as attributes
  of ``e`` (Figure 4 writes ``Avg(x)`` for ``Avg(e.x)``);
* names starting with ``_`` (``_ARROW_HIT_DAMAGE``, ``_HEALER_RANGE``,
  ...) are game constants looked up in the function registry.

Beyond the paper's SQL aggregates (count/sum/avg/min/max) we support
``stddev``/``var`` (the knights' close-ranks script of Section 3.2 needs
the standard deviation of troop positions) and ``argmin``/``argmax``,
which return the whole minimising/maximising row as a record.  Argmin
over a squared-distance term is exactly the nearest-neighbour aggregate
(``GetNearestEnemy``), which keeps even the spatial aggregates of
Section 5.3.2 inside the declarative fragment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from . import ast
from .errors import SglSyntaxError, SglTypeError
from .evalterm import EvalContext, eval_cond, eval_term
from .parser import _Parser
from .tokens import TokenKind, tokenize
from .values import Record

#: SQL aggregate names of the fragment (lowercase canonical form).
SQL_AGGREGATES = frozenset(
    {"count", "sum", "avg", "min", "max", "stddev", "var", "argmin", "argmax"}
)

#: Aggregates computable from (count, sum, sum-of-squares) prefix data --
#: exactly the divisible aggregates of Definition 5.1 plus their ratios.
DIVISIBLE_AGGREGATES = frozenset({"count", "sum", "avg", "stddev", "var"})


@dataclass(frozen=True)
class AggOutput:
    """One output column ``agg(term) AS alias`` of an aggregate spec."""

    agg: str
    term: ast.Term | None  # None only for count(*)
    alias: str

    def __post_init__(self) -> None:
        if self.agg not in SQL_AGGREGATES:
            raise SglTypeError(f"unknown SQL aggregate {self.agg!r}")
        if self.term is None and self.agg != "count":
            raise SglTypeError(f"{self.agg}(*) is not defined")


@dataclass(frozen=True)
class SqlAggregateSpec:
    """Eq. (5): aggregate outputs over the rows satisfying ``where``."""

    where: tuple[ast.Cond, ...]
    outputs: tuple[AggOutput, ...]

    def __post_init__(self) -> None:
        if not self.outputs:
            raise SglTypeError("aggregate spec needs at least one output")
        aliases = [o.alias for o in self.outputs]
        if len(set(aliases)) != len(aliases):
            raise SglTypeError(f"duplicate output aliases in {aliases}")


@dataclass(frozen=True)
class SqlActionSpec:
    """Eq. (4): effect terms applied to the rows satisfying ``where``.

    ``effects`` maps effect-attribute names to the term producing the new
    value; attributes not listed pass through from ``e`` unchanged, which
    matches the explicit column lists of Figure 5.
    """

    where: tuple[ast.Cond, ...]
    effects: Mapping[str, ast.Term]


# ---------------------------------------------------------------------------
# Naive (scan-based) evaluation -- the reference and baseline semantics
# ---------------------------------------------------------------------------


def matching_rows(
    where: Sequence[ast.Cond],
    bindings: Mapping[str, object],
    rows: Iterable[Mapping[str, object]],
    ctx: EvalContext,
) -> Iterator[Mapping[str, object]]:
    """Rows of *rows* satisfying every conjunct of *where*.

    *bindings* holds the spec's parameter values (including ``u``).
    """
    scope = dict(ctx.bindings)
    scope.update(bindings)
    row_ctx = ctx.bind(scope)
    for row in rows:
        row_ctx.bindings["e"] = row
        if all(eval_cond(conjunct, row_ctx) for conjunct in where):
            yield row


def _tie_break(row: Mapping[str, object], best: Mapping[str, object] | None) -> bool:
    """Deterministic argmin/argmax tie-break: prefer the smaller ``key``.

    Every evaluator in the system (naive scan, kD-tree, sweep-line) uses
    this rule so that the naive and indexed engines take bit-identical
    decisions -- a property the equivalence test suite relies on.  Rows
    without a ``key`` attribute keep first-encountered-wins order.
    """
    if best is None:
        return True
    try:
        return row["key"] < best["key"]  # type: ignore[operator]
    except (KeyError, TypeError):
        return False


class _AggAccumulator:
    """Streaming accumulator for one :class:`AggOutput`."""

    __slots__ = ("output", "count", "total", "total_sq", "best", "best_row")

    def __init__(self, output: AggOutput):
        self.output = output
        self.count = 0
        self.total = 0.0
        self.total_sq = 0.0
        self.best: object = None
        self.best_row: Mapping[str, object] | None = None

    def add(self, row: Mapping[str, object], row_ctx: EvalContext) -> None:
        agg = self.output.agg
        self.count += 1
        if agg == "count":
            return
        value = eval_term(self.output.term, row_ctx)  # type: ignore[arg-type]
        if agg in ("sum", "avg"):
            self.total += value  # type: ignore[operator]
        elif agg in ("stddev", "var"):
            self.total += value  # type: ignore[operator]
            self.total_sq += value * value  # type: ignore[operator]
        elif agg == "min" or agg == "argmin":
            if (
                self.best is None
                or value < self.best  # type: ignore[operator]
                or (value == self.best and _tie_break(row, self.best_row))
            ):
                self.best, self.best_row = value, row
        elif agg == "max" or agg == "argmax":
            if (
                self.best is None
                or value > self.best  # type: ignore[operator]
                or (value == self.best and _tie_break(row, self.best_row))
            ):
                self.best, self.best_row = value, row

    def result(self) -> object:
        agg = self.output.agg
        if agg == "count":
            return self.count
        if self.count == 0:
            return 0 if agg == "sum" else None
        if agg == "sum":
            return self.total
        if agg == "avg":
            return self.total / self.count
        if agg in ("var", "stddev"):
            mean = self.total / self.count
            variance = max(self.total_sq / self.count - mean * mean, 0.0)
            return variance if agg == "var" else math.sqrt(variance)
        if agg in ("min", "max"):
            return self.best
        # argmin / argmax return the whole chosen row as a record
        return Record(self.best_row) if self.best_row is not None else None


def finalize_outputs(
    outputs: Sequence[AggOutput], results: Sequence[object]
) -> object:
    """Package aggregate results: a scalar for one output, else a record."""
    if len(outputs) == 1:
        return results[0]
    return Record({o.alias: r for o, r in zip(outputs, results)})


def evaluate_aggregate_scan(
    spec: SqlAggregateSpec,
    bindings: Mapping[str, object],
    rows: Iterable[Mapping[str, object]],
    ctx: EvalContext,
) -> object:
    """Naive O(n) evaluation of an aggregate spec over *rows*."""
    accumulators = [_AggAccumulator(o) for o in spec.outputs]
    scope = dict(ctx.bindings)
    scope.update(bindings)
    row_ctx = ctx.bind(scope)
    for row in matching_rows(spec.where, bindings, rows, ctx):
        row_ctx.bindings["e"] = row
        for acc in accumulators:
            acc.add(row, row_ctx)
    return finalize_outputs(spec.outputs, [a.result() for a in accumulators])


def apply_action_scan(
    spec: SqlActionSpec,
    bindings: Mapping[str, object],
    ctx: EvalContext,
) -> list[dict[str, object]]:
    """Naive evaluation of an action spec: effect rows for matching units."""
    out: list[dict[str, object]] = []
    scope = dict(ctx.bindings)
    scope.update(bindings)
    row_ctx = ctx.bind(scope)
    for row in matching_rows(spec.where, bindings, ctx.env.rows, ctx):
        new_row = dict(row)
        row_ctx.bindings["e"] = row
        for attr, term in spec.effects.items():
            new_row[attr] = eval_term(term, row_ctx)
        out.append(new_row)
    return out


# ---------------------------------------------------------------------------
# Conjunct utilities
# ---------------------------------------------------------------------------


def split_conjuncts(cond: ast.Cond) -> tuple[ast.Cond, ...]:
    """Flatten a WHERE clause into its top-level AND-conjuncts."""
    if isinstance(cond, ast.And):
        return split_conjuncts(cond.left) + split_conjuncts(cond.right)
    return (cond,)


# ---------------------------------------------------------------------------
# SQL text parser (Figures 4 and 5 verbatim)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ParsedSqlFunction:
    """Result of parsing one ``function Name(params) returns SELECT ...``."""

    name: str
    params: tuple[str, ...]
    spec: SqlAggregateSpec | SqlActionSpec


def parse_sql_functions(source: str) -> list[ParsedSqlFunction]:
    """Parse one or more SQL-defined functions from *source*."""
    parser = _SqlParser(tokenize(source))
    out = []
    while not parser.at(TokenKind.EOF):
        out.append(parser.sql_function())
        while parser.at(TokenKind.SEMI):
            parser.advance()
    if not out:
        raise SglSyntaxError("no SQL function definitions found")
    return out


def parse_sql_function(source: str) -> ParsedSqlFunction:
    """Parse exactly one SQL-defined function."""
    functions = parse_sql_functions(source)
    if len(functions) != 1:
        raise SglSyntaxError(f"expected one function, found {len(functions)}")
    return functions[0]


class _SqlParser(_Parser):
    """Parses the restricted SQL fragment, reusing the SGL term grammar."""

    def sql_function(self) -> ParsedSqlFunction:
        if self.at_keyword("function"):
            self.advance()
        name = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.LPAREN)
        params: list[str] = []
        if not self.at(TokenKind.RPAREN):
            params.append(self.expect(TokenKind.NAME).text)
            while self.at(TokenKind.COMMA):
                self.advance()
                params.append(self.expect(TokenKind.NAME).text)
        self.expect(TokenKind.RPAREN)
        self.expect_keyword("returns")
        spec = self.select_statement(tuple(params))
        return ParsedSqlFunction(name=name, params=tuple(params), spec=spec)

    def select_statement(
        self, params: tuple[str, ...]
    ) -> SqlAggregateSpec | SqlActionSpec:
        self.expect_keyword("select")
        items = [self.select_item()]
        while self.at(TokenKind.COMMA):
            self.advance()
            items.append(self.select_item())

        self.expect_keyword("from")
        table = self.expect(TokenKind.NAME).text
        alias = table
        if self.at(TokenKind.NAME):
            alias = self.advance().text

        conjuncts: tuple[ast.Cond, ...] = ()
        if self.at_keyword("where"):
            self.advance()
            conjuncts = split_conjuncts(self.condition())
        while self.at(TokenKind.SEMI):
            self.advance()

        normalizer = _Normalizer(params=frozenset(params), aliases={table, alias})
        return _build_spec(items, conjuncts, normalizer)

    def select_item(self) -> tuple[ast.Term | str, str | None]:
        """One select-list item: ``(term_or_star, alias_or_None)``.

        ``Count(*)`` is the only place ``*`` may appear; it is returned as
        the literal string ``"*"`` wrapped in a Call with no args.
        """
        # Count(*) -- peek for NAME '(' '*' ')'
        if (
            self.at(TokenKind.NAME)
            and self._peek(1).kind is TokenKind.LPAREN
            and self._peek(2).kind is TokenKind.STAR
            and self._peek(3).kind is TokenKind.RPAREN
        ):
            fn = self.advance().text
            self.advance()  # (
            self.advance()  # *
            self.advance()  # )
            term: ast.Term = ast.Call(fn, ())
        else:
            term = self.term()
        alias: str | None = None
        if self.at_keyword("as"):
            self.advance()
            alias = self.expect(TokenKind.NAME).text
        return term, alias


@dataclass(frozen=True)
class _Normalizer:
    """Rewrites parsed SQL terms into canonical spec form.

    * table aliases become the canonical row variable ``e``;
    * bare non-parameter names become ``e.<name>`` attribute references;
    * names starting with ``_`` stay as registry-constant references.
    """

    params: frozenset[str]
    aliases: frozenset[str] | set[str]

    def term(self, node: ast.Term) -> ast.Term:
        if isinstance(node, ast.Name):
            if node.ident in self.params or node.ident.startswith("_"):
                return node
            if node.ident in self.aliases or node.ident == "e":
                return ast.Name("e")
            return ast.FieldAccess(ast.Name("e"), node.ident)
        if isinstance(node, ast.FieldAccess):
            base = node.base
            if isinstance(base, ast.Name) and base.ident in self.aliases:
                base = ast.Name("e")
            elif isinstance(base, ast.Name):
                # parameter records like u.posx pass through
                base = base
            else:
                base = self.term(base)
            return ast.FieldAccess(base, node.attr)
        if isinstance(node, ast.BinOp):
            return ast.BinOp(node.op, self.term(node.left), self.term(node.right))
        if isinstance(node, ast.Neg):
            return ast.Neg(self.term(node.operand))
        if isinstance(node, ast.Call):
            return ast.Call(node.name, tuple(self.term(a) for a in node.args))
        if isinstance(node, ast.VecLit):
            return ast.VecLit(tuple(self.term(i) for i in node.items))
        return node

    def cond(self, node: ast.Cond) -> ast.Cond:
        if isinstance(node, ast.Compare):
            return ast.Compare(node.op, self.term(node.left), self.term(node.right))
        if isinstance(node, ast.And):
            return ast.And(self.cond(node.left), self.cond(node.right))
        if isinstance(node, ast.Or):
            return ast.Or(self.cond(node.left), self.cond(node.right))
        if isinstance(node, ast.Not):
            return ast.Not(self.cond(node.operand))
        return node


def _build_spec(
    items: list[tuple[ast.Term, str | None]],
    conjuncts: tuple[ast.Cond, ...],
    normalizer: _Normalizer,
) -> SqlAggregateSpec | SqlActionSpec:
    where = tuple(normalizer.cond(c) for c in conjuncts)

    agg_items = [
        (term, alias)
        for term, alias in items
        if isinstance(term, ast.Call) and term.name.lower() in SQL_AGGREGATES
    ]

    if agg_items:
        if len(agg_items) != len(items):
            raise SglSyntaxError(
                "select list mixes aggregate and non-aggregate items"
            )
        outputs = []
        for call, alias in agg_items:
            assert isinstance(call, ast.Call)
            agg = call.name.lower()
            if not call.args:
                arg_term: ast.Term | None = None
                if agg != "count":
                    raise SglSyntaxError(f"{call.name} requires an argument")
            elif len(call.args) == 1:
                arg_term = normalizer.term(call.args[0])
            else:
                raise SglSyntaxError(f"{call.name} takes one argument")
            outputs.append(
                AggOutput(agg=agg, term=arg_term, alias=alias or agg)
            )
        aliases = [o.alias for o in outputs]
        if len(set(aliases)) != len(aliases):
            raise SglSyntaxError(
                f"duplicate output aliases {aliases}; add AS clauses"
            )
        return SqlAggregateSpec(where=where, outputs=tuple(outputs))

    # Action spec: aliased expressions are effects; bare column references
    # are pass-throughs and dropped (the evaluator copies the row anyway).
    effects: dict[str, ast.Term] = {}
    for term, alias in items:
        normalized = normalizer.term(term)
        if alias is None:
            if isinstance(normalized, ast.FieldAccess) and isinstance(
                normalized.base, ast.Name
            ):
                continue  # pass-through column like ``e.posx``
            raise SglSyntaxError(
                f"non-column select item {term} needs an AS alias"
            )
        if (
            isinstance(normalized, ast.FieldAccess)
            and isinstance(normalized.base, ast.Name)
            and normalized.base.ident == "e"
            and normalized.attr == alias
        ):
            continue  # explicit pass-through like ``e.damage AS damage``
        effects[alias] = normalized
    return SqlActionSpec(where=where, effects=effects)
