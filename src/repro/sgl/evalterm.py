"""Term and condition evaluation shared by every SGL evaluator.

The semantics functions ``[[.]]_term`` and ``[[.]]_cond`` of Section 4.3
are implemented here once and reused by the reference interpreter
(:mod:`repro.sgl.interp`), the restricted-SQL specs
(:mod:`repro.sgl.sqlspec`) and the algebra executor.

Evaluation happens inside an :class:`EvalContext`, which carries the
variable bindings, the environment table, the per-tick random function
``r(u, i)``, the function registry, and -- crucially -- the *pluggable
aggregate evaluator* of Section 6.  The naive and the indexed engines
differ only in the aggregate evaluator they install here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Callable, Mapping, Protocol

from . import ast
from .errors import SglNameError, SglRuntimeError, SglTypeError
from .values import Record, Vec, field_of

if TYPE_CHECKING:  # pragma: no cover
    from ..env.table import EnvironmentTable
    from .builtins import AggregateFunction, FunctionRegistry


class AggregateEvaluator(Protocol):
    """The pluggable aggregate-query evaluator interface (Section 6)."""

    def evaluate(
        self, function: "AggregateFunction", args: list[object], ctx: "EvalContext"
    ) -> object:
        """Evaluate aggregate *function* with bound *args* against ctx.env."""


#: Pure math builtins available in terms.  ``nonsql_max`` appears in the
#: paper's Figure 5; it is max outside SQL aggregation.
MATH_BUILTINS: dict[str, Callable[..., object]] = {
    "sqrt": math.sqrt,
    "abs": abs,
    "floor": math.floor,
    "ceil": math.ceil,
    "pow": pow,
    "exp": math.exp,
    "log": math.log,
    "sign": lambda x: (x > 0) - (x < 0),
    # arithmetic conditional: 1 when x >= 0 else 0.  Lets the restricted
    # SQL fragment (which has no CASE) encode to-hit checks and clamps.
    "step": lambda x: 1 if x >= 0 else 0,
    "nonsql_max": max,
    "nonsql_min": min,
    "norm": lambda v: v.norm() if isinstance(v, Vec) else abs(v),
    "vec": lambda *xs: Vec(xs),
}


@dataclass
class EvalContext:
    """Everything a term needs to evaluate.

    ``bindings`` maps names (function parameters and ``let``-bound
    variables) to values.  ``unit`` is the current unit row, used as the
    implicit first argument of single-argument ``Random(i)`` calls.
    """

    env: "EnvironmentTable"
    registry: "FunctionRegistry"
    agg_eval: AggregateEvaluator
    rng: Callable[[Mapping[str, object], int], int]
    bindings: dict[str, object] = field(default_factory=dict)
    unit: Mapping[str, object] | None = None

    def bind(self, extra: Mapping[str, object]) -> "EvalContext":
        """A child context with additional bindings (used by ``let``)."""
        merged = dict(self.bindings)
        merged.update(extra)
        return replace(self, bindings=merged)

    def lookup(self, name: str) -> object:
        try:
            return self.bindings[name]
        except KeyError:
            pass
        constant = self.registry.constants.get(name) if self.registry else None
        if constant is not None:
            return constant
        raise SglNameError(f"unbound name {name!r}")


def eval_term(term: ast.Term, ctx: EvalContext) -> object:
    """Evaluate *term* to a runtime value."""
    if isinstance(term, ast.Num):
        return term.value
    if isinstance(term, ast.Str):
        return term.value
    if isinstance(term, ast.Name):
        return ctx.lookup(term.ident)
    if isinstance(term, ast.FieldAccess):
        return field_of(eval_term(term.base, ctx), term.attr)
    if isinstance(term, ast.Neg):
        value = eval_term(term.operand, ctx)
        if value is None:
            return None  # NULL propagation
        try:
            return -value  # type: ignore[operator]
        except TypeError:
            raise SglTypeError(f"cannot negate {type(value).__name__}") from None
    if isinstance(term, ast.BinOp):
        return _eval_binop(term, ctx)
    if isinstance(term, ast.VecLit):
        items = [eval_term(item, ctx) for item in term.items]
        if any(item is None for item in items):
            return None  # NULL propagation
        return Vec(_require_number(item, "vector literal") for item in items)
    if isinstance(term, ast.Call):
        return _eval_call(term, ctx)
    raise SglTypeError(f"cannot evaluate {term!r} as a term")


def eval_cond(cond: ast.Cond, ctx: EvalContext) -> bool:
    """Evaluate *cond* to a boolean ([[.]]_cond commutes with booleans)."""
    if isinstance(cond, ast.BoolLit):
        return cond.value
    if isinstance(cond, ast.Not):
        return not eval_cond(cond.operand, ctx)
    if isinstance(cond, ast.And):
        return eval_cond(cond.left, ctx) and eval_cond(cond.right, ctx)
    if isinstance(cond, ast.Or):
        return eval_cond(cond.left, ctx) or eval_cond(cond.right, ctx)
    if isinstance(cond, ast.Compare):
        return compare(cond.op, eval_term(cond.left, ctx), eval_term(cond.right, ctx))
    raise SglTypeError(f"cannot evaluate {cond!r} as a condition")


def compare(op: str, left: object, right: object) -> bool:
    """Apply a comparison operator with SGL semantics.

    Equality works on any pair of values; ordering requires numbers or
    strings of matching type.  ``None`` (NULL -- an aggregate over an
    empty selection) compares false under every operator, the SQL
    three-valued treatment of unknown in a WHERE clause.
    """
    if left is None or right is None:
        return False
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    try:
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError:
        raise SglTypeError(
            f"cannot compare {type(left).__name__} {op} {type(right).__name__}"
        ) from None
    raise SglTypeError(f"unknown comparison operator {op!r}")


def _require_number(value: object, what: str) -> float:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise SglTypeError(f"{what} requires a number, got {type(value).__name__}")
    return value


def _eval_binop(term: ast.BinOp, ctx: EvalContext) -> object:
    left = eval_term(term.left, ctx)
    right = eval_term(term.right, ctx)
    op = term.op
    if left is None or right is None:
        return None  # NULL propagation
    try:
        if op == "+":
            return left + right  # type: ignore[operator]
        if op == "-":
            return left - right  # type: ignore[operator]
        if op == "*":
            return left * right  # type: ignore[operator]
        if op == "/":
            return left / right  # type: ignore[operator]
        if op == "%":
            return left % right  # type: ignore[operator]
    except ZeroDivisionError:
        raise SglRuntimeError("division by zero") from None
    except TypeError:
        raise SglTypeError(
            f"cannot apply {op!r} to {type(left).__name__} and "
            f"{type(right).__name__}"
        ) from None
    raise SglTypeError(f"unknown operator {op!r}")


def _eval_call(term: ast.Call, ctx: EvalContext) -> object:
    name = term.name

    if name == "Random":
        return _eval_random(term, ctx)

    builtin = MATH_BUILTINS.get(name)
    if builtin is not None:
        args = [eval_term(a, ctx) for a in term.args]
        if any(a is None for a in args):
            return None  # NULL propagation
        try:
            return builtin(*args)
        except (TypeError, ValueError) as exc:
            raise SglTypeError(f"{name}: {exc}") from None

    aggregate = ctx.registry.aggregates.get(name) if ctx.registry else None
    if aggregate is not None:
        args = [eval_term(a, ctx) for a in term.args]
        if len(args) != len(aggregate.params):
            raise SglTypeError(
                f"{name} expects {len(aggregate.params)} args, got {len(args)}"
            )
        return ctx.agg_eval.evaluate(aggregate, args, ctx)

    raise SglNameError(f"unknown function {name!r}")


def _eval_random(term: ast.Call, ctx: EvalContext) -> int:
    """``Random(i)`` uses the current unit; ``Random(e, i)`` a given row.

    The paper requires ``Random(i)`` to be stable within a clock tick
    (Section 4.1); the engine satisfies this by deriving the value from
    (tick seed, unit key, i).
    """
    if len(term.args) == 1:
        if ctx.unit is None:
            raise SglRuntimeError("Random(i) used outside a unit context")
        row: Mapping[str, object] = ctx.unit
        index = eval_term(term.args[0], ctx)
    elif len(term.args) == 2:
        base = eval_term(term.args[0], ctx)
        if not isinstance(base, Mapping):
            raise SglTypeError("Random(e, i) requires a unit row")
        row = base
        index = eval_term(term.args[1], ctx)
    else:
        raise SglTypeError("Random takes one or two arguments")
    if not isinstance(index, (int, float)):
        raise SglTypeError("Random index must be a number")
    return ctx.rng(row, int(index))
