"""Normal form for SGL scripts (Section 5.1).

The algebra translation assumes scripts are in a normal form where
*aggregate functions occur only in let-statements* and nowhere else.  The
paper notes this loses no generality::

    if agg(u.health) = 3 then f
      ==  (let v = agg(u.health)) if u.v = 3 then f

This module hoists every aggregate call found in a condition, in a
``perform`` argument, or nested inside a larger let-term into its own
fresh ``let`` binding directly above the consuming action.  Pure terms
are left untouched.  The transformation also:

* expands ``if c then a else b`` into ``if c then a; if not c then b``
  (the paper treats ``else`` as this shortcut in Section 4.3), which
  makes the translation to selections direct;
* guarantees fresh binding names never collide with script names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from . import ast

if TYPE_CHECKING:  # pragma: no cover
    from .builtins import FunctionRegistry


class _FreshNames:
    """Generates binding names guaranteed unused by the script."""

    def __init__(self, used: set[str]):
        self._used = set(used)
        self._counter = 0

    def fresh(self, hint: str = "agg") -> str:
        while True:
            self._counter += 1
            name = f"__{hint}_{self._counter}"
            if name not in self._used:
                self._used.add(name)
                return name


def _collect_names(script: ast.Script) -> set[str]:
    names: set[str] = set()
    for fn in script.functions.values():
        names.update(fn.params)
        stack: list[ast.Action] = [fn.body]
        while stack:
            node = stack.pop()
            if isinstance(node, ast.Let):
                names.add(node.name)
                stack.append(node.body)
            elif isinstance(node, ast.Seq):
                stack.extend((node.first, node.second))
            elif isinstance(node, ast.If):
                stack.append(node.then_branch)
                if node.else_branch is not None:
                    stack.append(node.else_branch)
    return names


def normalize_script(
    script: ast.Script, registry: "FunctionRegistry"
) -> ast.Script:
    """Return an equivalent script in aggregate-normal form."""
    fresh = _FreshNames(_collect_names(script))
    is_aggregate = lambda name: name in registry.aggregates  # noqa: E731
    functions = {
        name: ast.FunctionDef(
            name=fn.name,
            params=fn.params,
            body=_normalize_action(fn.body, is_aggregate, fresh),
        )
        for name, fn in script.functions.items()
    }
    return ast.Script(functions=functions, entry=script.entry)


def _normalize_action(
    node: ast.Action, is_aggregate: Callable[[str], bool], fresh: _FreshNames
) -> ast.Action:
    if isinstance(node, ast.Skip):
        return node

    if isinstance(node, ast.Let):
        body = _normalize_action(node.body, is_aggregate, fresh)
        # The let RHS may keep ONE top-level aggregate call; nested ones
        # (inside arithmetic) are hoisted above it.
        term, bindings = _hoist(node.term, is_aggregate, fresh, keep_top=True)
        result: ast.Action = ast.Let(node.name, term, body)
        return _wrap(bindings, result)

    if isinstance(node, ast.Seq):
        return ast.Seq(
            _normalize_action(node.first, is_aggregate, fresh),
            _normalize_action(node.second, is_aggregate, fresh),
        )

    if isinstance(node, ast.If):
        cond, bindings = _hoist_cond(node.cond, is_aggregate, fresh)
        then_branch = _normalize_action(node.then_branch, is_aggregate, fresh)
        if node.else_branch is None:
            return _wrap(bindings, ast.If(cond, then_branch))
        else_branch = _normalize_action(node.else_branch, is_aggregate, fresh)
        expanded = ast.Seq(
            ast.If(cond, then_branch),
            ast.If(ast.Not(cond), else_branch),
        )
        return _wrap(bindings, expanded)

    if isinstance(node, ast.Perform):
        all_bindings: list[tuple[str, ast.Term]] = []
        args = []
        for arg in node.args:
            term, bindings = _hoist(arg, is_aggregate, fresh, keep_top=False)
            all_bindings.extend(bindings)
            args.append(term)
        return _wrap(all_bindings, ast.Perform(node.name, tuple(args)))

    raise TypeError(f"unknown action node {node!r}")


def _wrap(
    bindings: list[tuple[str, ast.Term]], action: ast.Action
) -> ast.Action:
    """Wrap *action* in let-bindings, innermost binding last."""
    for name, term in reversed(bindings):
        action = ast.Let(name, term, action)
    return action


def _hoist(
    term: ast.Term,
    is_aggregate: Callable[[str], bool],
    fresh: _FreshNames,
    keep_top: bool,
) -> tuple[ast.Term, list[tuple[str, ast.Term]]]:
    """Replace nested aggregate calls in *term* with fresh names.

    Returns the rewritten term and the hoisted ``(name, aggregate-call)``
    bindings in evaluation order.  With *keep_top* a top-level aggregate
    call stays in place (it is already in let position).
    """
    bindings: list[tuple[str, ast.Term]] = []

    def rewrite(node: ast.Term, top: bool) -> ast.Term:
        if isinstance(node, (ast.Num, ast.Str, ast.Name)):
            return node
        if isinstance(node, ast.FieldAccess):
            return ast.FieldAccess(rewrite(node.base, False), node.attr)
        if isinstance(node, ast.BinOp):
            return ast.BinOp(
                node.op, rewrite(node.left, False), rewrite(node.right, False)
            )
        if isinstance(node, ast.Neg):
            return ast.Neg(rewrite(node.operand, False))
        if isinstance(node, ast.VecLit):
            return ast.VecLit(tuple(rewrite(i, False) for i in node.items))
        if isinstance(node, ast.Call):
            new_args = tuple(rewrite(a, False) for a in node.args)
            call = ast.Call(node.name, new_args)
            if is_aggregate(node.name) and not (top and keep_top):
                name = fresh.fresh(node.name.lower()[:12])
                bindings.append((name, call))
                return ast.Name(name)
            return call
        raise TypeError(f"unknown term node {node!r}")

    return rewrite(term, True), bindings


def _hoist_cond(
    cond: ast.Cond, is_aggregate: Callable[[str], bool], fresh: _FreshNames
) -> tuple[ast.Cond, list[tuple[str, ast.Term]]]:
    bindings: list[tuple[str, ast.Term]] = []

    def rewrite(node: ast.Cond) -> ast.Cond:
        if isinstance(node, ast.BoolLit):
            return node
        if isinstance(node, ast.Compare):
            left, lb = _hoist(node.left, is_aggregate, fresh, keep_top=False)
            right, rb = _hoist(node.right, is_aggregate, fresh, keep_top=False)
            bindings.extend(lb)
            bindings.extend(rb)
            return ast.Compare(node.op, left, right)
        if isinstance(node, ast.And):
            return ast.And(rewrite(node.left), rewrite(node.right))
        if isinstance(node, ast.Or):
            return ast.Or(rewrite(node.left), rewrite(node.right))
        if isinstance(node, ast.Not):
            return ast.Not(rewrite(node.operand))
        raise TypeError(f"unknown condition node {node!r}")

    return rewrite(cond), bindings


def is_normal_form(
    script: ast.Script, registry: "FunctionRegistry"
) -> bool:
    """Check the normal-form invariant: aggregates only in let position."""

    def term_clean(term: ast.Term, top: bool = False) -> bool:
        if isinstance(term, (ast.Num, ast.Str, ast.Name)):
            return True
        if isinstance(term, ast.FieldAccess):
            return term_clean(term.base)
        if isinstance(term, ast.BinOp):
            return term_clean(term.left) and term_clean(term.right)
        if isinstance(term, ast.Neg):
            return term_clean(term.operand)
        if isinstance(term, ast.VecLit):
            return all(term_clean(i) for i in term.items)
        if isinstance(term, ast.Call):
            if term.name in registry.aggregates and not top:
                return False
            return all(term_clean(a) for a in term.args)
        return False

    def cond_clean(cond: ast.Cond) -> bool:
        if isinstance(cond, ast.BoolLit):
            return True
        if isinstance(cond, ast.Compare):
            return term_clean(cond.left) and term_clean(cond.right)
        if isinstance(cond, (ast.And, ast.Or)):
            return cond_clean(cond.left) and cond_clean(cond.right)
        if isinstance(cond, ast.Not):
            return cond_clean(cond.operand)
        return False

    def action_clean(node: ast.Action) -> bool:
        if isinstance(node, ast.Skip):
            return True
        if isinstance(node, ast.Let):
            return term_clean(node.term, top=True) and action_clean(node.body)
        if isinstance(node, ast.Seq):
            return action_clean(node.first) and action_clean(node.second)
        if isinstance(node, ast.If):
            ok = cond_clean(node.cond) and action_clean(node.then_branch)
            if node.else_branch is not None:
                ok = ok and action_clean(node.else_branch)
            return ok
        if isinstance(node, ast.Perform):
            return all(term_clean(a) for a in node.args)
        return False

    return all(action_clean(fn.body) for fn in script.functions.values())
