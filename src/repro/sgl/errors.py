"""Exception hierarchy for the SGL compiler and runtime."""

from __future__ import annotations


class SglError(Exception):
    """Base class for every SGL-related error."""


class SglSyntaxError(SglError):
    """Lexical or grammatical error in an SGL script.

    Carries the 1-based source position to make script debugging by game
    designers practical (the paper's target audience is non-programmers).
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class SglNameError(SglError):
    """Reference to an unknown function, attribute, or let-binding."""


class SglTypeError(SglError):
    """A term or condition was applied to values of the wrong type."""


class SglRuntimeError(SglError):
    """Error raised while evaluating a script (e.g. field access on the
    result of an aggregate over an empty selection)."""
