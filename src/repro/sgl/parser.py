"""Recursive-descent parser for SGL scripts (grammar of Section 4.1).

The surface syntax follows the paper's Figure 3::

    main(u) {
      (let c = CountEnemiesInRange(u, u.range))
      (let away_vector = (u.posx, u.posy) - CentroidOfEnemyUnits(u, u.range)) {
        if (c > u.morale) then
          perform MoveInDirection(u, away_vector);
        else if (c > 0 and u.cooldown = 0) then
          (let target_key = GetNearestEnemy(u).key) {
            perform FireAt(u, target_key);
          }
      }
    }

Notes on the concrete grammar:

* A script is one or more function definitions; the optional keyword
  ``function`` may precede each definition.  The entry point is ``main``.
* ``{ ... }`` blocks sequence the actions they contain (``;`` is both a
  separator and an optional terminator, as in the paper's listing where a
  ``;`` precedes ``else``).
* ``(let x = t)`` binds ``x`` in exactly one following action, which may
  itself be a block or another ``let``.
* ``=`` is comparison (SQL style), not assignment; ``<>`` and ``!=`` both
  denote inequality.
* ``(t1, t2)`` with a comma is a vector literal; ``(t)`` is grouping.
"""

from __future__ import annotations

from . import ast
from .errors import SglSyntaxError
from .tokens import Token, TokenKind, tokenize

_COMPARISON_OPS = {"=", "==", "<", "<=", ">", ">=", "<>", "!="}
_CANONICAL_OP = {"==": "=", "!=": "<>"}


def parse_script(source: str, entry: str = "main") -> ast.Script:
    """Parse a full SGL script (one or more function definitions)."""
    parser = _Parser(tokenize(source))
    functions: dict[str, ast.FunctionDef] = {}
    while not parser.at(TokenKind.EOF):
        fn = parser.function_def()
        if fn.name in functions:
            raise SglSyntaxError(f"duplicate function {fn.name!r}")
        functions[fn.name] = fn
    if not functions:
        raise SglSyntaxError("empty script")
    if entry not in functions:
        raise SglSyntaxError(f"script defines no {entry!r} function")
    return ast.Script(functions=functions, entry=entry)


def parse_action(source: str) -> ast.Action:
    """Parse a bare action (handy for tests and the REPL-style examples)."""
    parser = _Parser(tokenize(source))
    action = parser.action_sequence(stop_kinds=(TokenKind.EOF,))
    parser.expect(TokenKind.EOF)
    return action


def parse_term(source: str) -> ast.Term:
    """Parse a bare term."""
    parser = _Parser(tokenize(source))
    term = parser.term()
    parser.expect(TokenKind.EOF)
    return term


def parse_condition(source: str) -> ast.Cond:
    """Parse a bare condition."""
    parser = _Parser(tokenize(source))
    cond = parser.condition()
    parser.expect(TokenKind.EOF)
    return cond


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------------

    @property
    def current(self) -> Token:
        return self._tokens[self._pos]

    def at(self, kind: TokenKind, text: str | None = None) -> bool:
        tok = self.current
        return tok.kind is kind and (text is None or tok.text == text)

    def at_keyword(self, word: str) -> bool:
        return self.current.is_keyword(word)

    def advance(self) -> Token:
        tok = self.current
        if tok.kind is not TokenKind.EOF:
            self._pos += 1
        return tok

    def expect(self, kind: TokenKind, text: str | None = None) -> Token:
        if not self.at(kind, text):
            tok = self.current
            want = text or kind.value
            raise SglSyntaxError(
                f"expected {want!r}, found {tok.text or tok.kind.value!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            tok = self.current
            raise SglSyntaxError(
                f"expected {word!r}, found {tok.text or tok.kind.value!r}",
                tok.line,
                tok.column,
            )
        return self.advance()

    def _peek(self, offset: int) -> Token:
        return self._tokens[min(self._pos + offset, len(self._tokens) - 1)]

    # -- top level ----------------------------------------------------------------

    def function_def(self) -> ast.FunctionDef:
        if self.at_keyword("function"):
            self.advance()
        name = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.LPAREN)
        params: list[str] = []
        if not self.at(TokenKind.RPAREN):
            params.append(self.expect(TokenKind.NAME).text)
            while self.at(TokenKind.COMMA):
                self.advance()
                params.append(self.expect(TokenKind.NAME).text)
        self.expect(TokenKind.RPAREN)
        body = self.block()
        return ast.FunctionDef(name=name, params=tuple(params), body=body)

    # -- actions ------------------------------------------------------------------

    def block(self) -> ast.Action:
        self.expect(TokenKind.LBRACE)
        action = self.action_sequence(stop_kinds=(TokenKind.RBRACE,))
        self.expect(TokenKind.RBRACE)
        return action

    def action_sequence(self, stop_kinds: tuple[TokenKind, ...]) -> ast.Action:
        """Zero or more actions, folded left-to-right into ``Seq``."""
        actions: list[ast.Action] = []
        while True:
            while self.at(TokenKind.SEMI):
                self.advance()
            if self.current.kind in stop_kinds:
                break
            actions.append(self.action())
        if not actions:
            return ast.Skip()
        result = actions[0]
        for nxt in actions[1:]:
            result = ast.Seq(result, nxt)
        return result

    def action(self) -> ast.Action:
        if self.at(TokenKind.LPAREN) and self._peek(1).is_keyword("let"):
            return self.let_action()
        if self.at_keyword("if"):
            return self.if_action()
        if self.at_keyword("perform"):
            return self.perform_action()
        if self.at(TokenKind.LBRACE):
            return self.block()
        tok = self.current
        raise SglSyntaxError(
            f"expected an action, found {tok.text or tok.kind.value!r}",
            tok.line,
            tok.column,
        )

    def let_action(self) -> ast.Action:
        self.expect(TokenKind.LPAREN)
        self.expect_keyword("let")
        name = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.OP, "=")
        term = self.term()
        self.expect(TokenKind.RPAREN)
        body = self.action()
        return ast.Let(name=name, term=term, body=body)

    def if_action(self) -> ast.Action:
        self.expect_keyword("if")
        cond = self.condition()
        self.expect_keyword("then")
        then_branch = self.action()
        # the paper's listing terminates the then-branch with ';' before 'else'
        while self.at(TokenKind.SEMI):
            self.advance()
        else_branch: ast.Action | None = None
        if self.at_keyword("else"):
            self.advance()
            else_branch = self.action()
        return ast.If(cond=cond, then_branch=then_branch, else_branch=else_branch)

    def perform_action(self) -> ast.Action:
        self.expect_keyword("perform")
        name = self.expect(TokenKind.NAME).text
        self.expect(TokenKind.LPAREN)
        args = self.term_list(TokenKind.RPAREN)
        self.expect(TokenKind.RPAREN)
        return ast.Perform(name=name, args=tuple(args))

    # -- conditions ---------------------------------------------------------------

    def condition(self) -> ast.Cond:
        return self.or_cond()

    def or_cond(self) -> ast.Cond:
        left = self.and_cond()
        while self.at_keyword("or"):
            self.advance()
            left = ast.Or(left, self.and_cond())
        return left

    def and_cond(self) -> ast.Cond:
        left = self.not_cond()
        while self.at_keyword("and"):
            self.advance()
            left = ast.And(left, self.not_cond())
        return left

    def not_cond(self) -> ast.Cond:
        if self.at_keyword("not"):
            self.advance()
            return ast.Not(self.not_cond())
        return self.atomic_cond()

    def atomic_cond(self) -> ast.Cond:
        if self.at_keyword("true"):
            self.advance()
            return ast.BoolLit(True)
        if self.at_keyword("false"):
            self.advance()
            return ast.BoolLit(False)
        # A parenthesised boolean condition, e.g. ``(c > 0 and d = 1)``.
        # Distinguished from a parenthesised *term* by speculative parsing:
        # try a full condition first and fall back to a comparison of terms.
        if self.at(TokenKind.LPAREN):
            save = self._pos
            self.advance()
            try:
                inner = self.condition()
                self.expect(TokenKind.RPAREN)
            except SglSyntaxError:
                self._pos = save
            else:
                return inner
        left = self.term()
        tok = self.current
        if tok.kind is TokenKind.OP and tok.text in _COMPARISON_OPS:
            op = self.advance().text
            right = self.term()
            return ast.Compare(_CANONICAL_OP.get(op, op), left, right)
        raise SglSyntaxError(
            f"expected a comparison operator, found {tok.text or tok.kind.value!r}",
            tok.line,
            tok.column,
        )

    # -- terms --------------------------------------------------------------------

    def term(self) -> ast.Term:
        return self.additive()

    def additive(self) -> ast.Term:
        left = self.multiplicative()
        while self.at(TokenKind.OP, "+") or self.at(TokenKind.OP, "-"):
            op = self.advance().text
            left = ast.BinOp(op, left, self.multiplicative())
        return left

    def multiplicative(self) -> ast.Term:
        left = self.unary()
        while (
            self.at(TokenKind.STAR)
            or self.at(TokenKind.OP, "/")
            or self.at(TokenKind.OP, "%")
        ):
            op = "*" if self.at(TokenKind.STAR) else self.current.text
            self.advance()
            left = ast.BinOp(op, left, self.unary())
        return left

    def unary(self) -> ast.Term:
        if self.at(TokenKind.OP, "-"):
            self.advance()
            return ast.Neg(self.unary())
        if self.at(TokenKind.OP, "+"):
            self.advance()
            return self.unary()
        return self.postfix()

    def postfix(self) -> ast.Term:
        term = self.primary()
        while self.at(TokenKind.DOT):
            self.advance()
            attr = self.expect(TokenKind.NAME).text
            term = ast.FieldAccess(term, attr)
        return term

    def primary(self) -> ast.Term:
        tok = self.current
        if tok.kind is TokenKind.NUMBER:
            self.advance()
            value = float(tok.text)
            if value.is_integer() and "." not in tok.text:
                return ast.Num(int(value))
            return ast.Num(value)
        if tok.kind is TokenKind.STRING:
            self.advance()
            return ast.Str(tok.text)
        if tok.kind is TokenKind.NAME:
            self.advance()
            if self.at(TokenKind.LPAREN):
                self.advance()
                args = self.term_list(TokenKind.RPAREN)
                self.expect(TokenKind.RPAREN)
                return ast.Call(tok.text, tuple(args))
            return ast.Name(tok.text)
        if tok.kind is TokenKind.LPAREN:
            self.advance()
            first = self.term()
            if self.at(TokenKind.COMMA):
                items = [first]
                while self.at(TokenKind.COMMA):
                    self.advance()
                    items.append(self.term())
                self.expect(TokenKind.RPAREN)
                return ast.VecLit(tuple(items))
            self.expect(TokenKind.RPAREN)
            return first
        raise SglSyntaxError(
            f"expected a term, found {tok.text or tok.kind.value!r}",
            tok.line,
            tok.column,
        )

    def term_list(self, stop: TokenKind) -> list[ast.Term]:
        args: list[ast.Term] = []
        if self.at(stop):
            return args
        args.append(self.term())
        while self.at(TokenKind.COMMA):
            self.advance()
            args.append(self.term())
        return args
