"""Lexer for SGL scripts and for the restricted SQL fragment.

The token set covers both surface languages of the paper:

* SGL action functions (Figure 3): ``let``, ``if``/``then``/``else``,
  ``perform``, ``function`` definitions, arithmetic and comparisons;
* the restricted SQL of Eqs. (4)/(5) used to define built-in aggregate and
  action functions (Figures 4 and 5): ``SELECT``/``FROM``/``WHERE``/
  ``AS``/``AND`` plus the same term syntax.

Keywords are case-insensitive, matching the mixed-case style of the
paper's listings (SGL keywords are lowercase, SQL keywords uppercase).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

from .errors import SglSyntaxError


class TokenKind(enum.Enum):
    NUMBER = "number"
    STRING = "string"
    NAME = "name"
    KEYWORD = "keyword"
    OP = "op"
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    COMMA = ","
    SEMI = ";"
    DOT = "."
    STAR = "*"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        # SGL keywords
        "let", "if", "then", "else", "perform", "function", "returns",
        "and", "or", "not", "true", "false",
        # SQL keywords of the restricted fragment
        "select", "from", "where", "as", "group", "by",
    }
)

#: Multi-character operators must be listed before their prefixes.
_OPERATORS = ("<=", ">=", "<>", "!=", "==", "=", "<", ">", "+", "-", "/", "%")


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == word

    def __repr__(self) -> str:
        return f"Token({self.kind.name}, {self.text!r}, {self.line}:{self.column})"


_SINGLE = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ".": TokenKind.DOT,
    "*": TokenKind.STAR,
}


def tokenize(source: str) -> list[Token]:
    """Tokenize *source*, raising :class:`SglSyntaxError` on bad input."""
    return list(_scan(source))


def _scan(source: str) -> Iterator[Token]:
    i = 0
    line = 1
    line_start = 0
    n = len(source)

    def col(pos: int) -> int:
        return pos - line_start + 1

    while i < n:
        ch = source[i]

        if ch == "\n":
            line += 1
            i += 1
            line_start = i
            continue
        if ch in " \t\r":
            i += 1
            continue

        # comments: '#' and '//' to end of line, '/* ... */' block
        if ch == "#" or source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise SglSyntaxError("unterminated block comment", line, col(i))
            line += source.count("\n", i, end)
            if "\n" in source[i:end]:
                line_start = source.rfind("\n", i, end) + 1
            i = end + 2
            continue

        start_col = col(i)

        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            while j < n and (source[j].isdigit() or (source[j] == "." and not seen_dot)):
                if source[j] == ".":
                    # '1.x' attribute-style references must not eat the dot
                    if j + 1 >= n or not source[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            yield Token(TokenKind.NUMBER, source[i:j], line, start_col)
            i = j
            continue

        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                yield Token(TokenKind.KEYWORD, lowered, line, start_col)
            else:
                yield Token(TokenKind.NAME, word, line, start_col)
            i = j
            continue

        if ch in "'\"":
            quote = ch
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\n":
                    raise SglSyntaxError("unterminated string", line, start_col)
                j += 1
            if j >= n:
                raise SglSyntaxError("unterminated string", line, start_col)
            yield Token(TokenKind.STRING, source[i + 1 : j], line, start_col)
            i = j + 1
            continue

        matched_op = next((op for op in _OPERATORS if source.startswith(op, i)), None)
        if matched_op is not None:
            yield Token(TokenKind.OP, matched_op, line, start_col)
            i += len(matched_op)
            continue

        if ch in _SINGLE:
            yield Token(_SINGLE[ch], ch, line, start_col)
            i += 1
            continue

        raise SglSyntaxError(f"unexpected character {ch!r}", line, start_col)

    yield Token(TokenKind.EOF, "", line, col(i))
