"""Reference interpreter for SGL: the semantics [[.]] of Section 4.3.

This is the *specification* evaluator: a direct, tuple-at-a-time
transcription of the paper's semantics equations::

    [[(let v := t) f]]E,r(u) = [[f]]E,r(u, v: [[t]]term(u,E,r))
    [[f1; f2]]E,r(u)         = [[f1]]E,r(u) ⊕ [[f2]]E,r(u)
    [[if phi then f1]]E,r(u) = [[f1]]E,r(u) if phi(u) else ∅
    [[perform G]]E,r(u)      = [[g]]E,r(u)        (defined function g)
    [[perform H]]E,r(u)      = h(u, E, r)          (built-in action h)

and the script-level semantics (Eqs. 6 and 7)::

    f⊕(E)      = ⊕(⨄ {[[f]]E,r(u) | u ∈ E})
    tick(E, r) = main⊕(E) ⊕ E

Everything else in the system -- the algebra translation, the rewrite
rules, the index-backed engine -- is validated against this interpreter
by the equivalence tests in ``tests/``.  It is deliberately simple and
slow (the naive O(n²) behaviour the paper's Figure 10 measures).
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..env.combine import combine, combine_all, combine_pair
from ..env.table import EnvironmentTable
from . import ast
from .builtins import AggregateFunction, FunctionRegistry
from .errors import SglNameError, SglTypeError
from .evalterm import EvalContext, eval_cond, eval_term
from .sqlspec import apply_action_scan, evaluate_aggregate_scan

RngFunction = Callable[[Mapping[str, object], int], int]


class NaiveAggregateEvaluator:
    """Evaluates every aggregate by scanning the environment: O(n) each.

    This is the first of the two pluggable evaluators of Section 6; the
    index-backed one lives in :mod:`repro.engine.evaluator`.
    """

    def evaluate(
        self, function: AggregateFunction, args: list[object], ctx: EvalContext
    ) -> object:
        if function.native is not None:
            return function.native(args, ctx.env.rows, ctx)
        bindings = dict(zip(function.params, args))
        return evaluate_aggregate_scan(function.spec, bindings, ctx.env.rows, ctx)


class Interpreter:
    """Tuple-at-a-time evaluator for one script against one environment."""

    def __init__(
        self,
        script: ast.Script,
        registry: FunctionRegistry,
        agg_eval: object | None = None,
    ):
        self.script = script
        self.registry = registry
        self.agg_eval = agg_eval if agg_eval is not None else NaiveAggregateEvaluator()

    # -- public API -----------------------------------------------------------

    def run_unit(
        self,
        unit: Mapping[str, object],
        env: EnvironmentTable,
        rng: RngFunction,
    ) -> EnvironmentTable:
        """``⊕[[main]]E,r(u)`` -- the combined effect table of one unit."""
        ctx = EvalContext(
            env=env,
            registry=self.registry,
            agg_eval=self.agg_eval,
            rng=rng,
            bindings={},
            unit=unit,
        )
        main = self.script.main
        if len(main.params) != 1:
            raise SglTypeError(
                f"entry function {main.name!r} must take exactly the unit"
            )
        ctx.bindings[main.params[0]] = unit
        return self._action(main.body, ctx)

    # -- semantics ------------------------------------------------------------

    def _empty(self, env: EnvironmentTable) -> EnvironmentTable:
        return EnvironmentTable(env.schema)

    def _action(self, node: ast.Action, ctx: EvalContext) -> EnvironmentTable:
        if isinstance(node, ast.Skip):
            return self._empty(ctx.env)
        if isinstance(node, ast.Let):
            value = eval_term(node.term, ctx)
            return self._action(node.body, ctx.bind({node.name: value}))
        if isinstance(node, ast.Seq):
            left = self._action(node.first, ctx)
            right = self._action(node.second, ctx)
            return combine_pair(left, right)
        if isinstance(node, ast.If):
            if eval_cond(node.cond, ctx):
                return self._action(node.then_branch, ctx)
            if node.else_branch is not None:
                return self._action(node.else_branch, ctx)
            return self._empty(ctx.env)
        if isinstance(node, ast.Perform):
            return self._perform(node, ctx)
        raise SglTypeError(f"cannot interpret {node!r}")

    def _perform(self, node: ast.Perform, ctx: EvalContext) -> EnvironmentTable:
        args = [eval_term(a, ctx) for a in node.args]

        defined = self.script.functions.get(node.name)
        if defined is not None:
            if len(args) != len(defined.params):
                raise SglTypeError(
                    f"{node.name} expects {len(defined.params)} args, "
                    f"got {len(args)}"
                )
            # Defined functions see only their parameters (lexical scope),
            # plus the same environment and randomness.
            inner = EvalContext(
                env=ctx.env,
                registry=ctx.registry,
                agg_eval=ctx.agg_eval,
                rng=ctx.rng,
                bindings=dict(zip(defined.params, args)),
                unit=ctx.unit,
            )
            return self._action(defined.body, inner)

        builtin = self.registry.actions.get(node.name)
        if builtin is None:
            raise SglNameError(f"unknown action function {node.name!r}")
        if len(args) != len(builtin.params):
            raise SglTypeError(
                f"{node.name} expects {len(builtin.params)} args, got {len(args)}"
            )
        if builtin.native is not None:
            rows = builtin.native(args, ctx)
        else:
            bindings = dict(zip(builtin.params, args))
            rows = apply_action_scan(builtin.spec, bindings, ctx)
        table = EnvironmentTable(ctx.env.schema)
        table.rows.extend(rows)
        return combine(table)


def reference_tick(
    env: EnvironmentTable,
    script_for: Callable[[Mapping[str, object]], ast.Script],
    registry: FunctionRegistry,
    rng: RngFunction,
    agg_eval: object | None = None,
) -> EnvironmentTable:
    """Compute ``tick(E, r) = main⊕(E) ⊕ E`` (Eq. 6), tuple-at-a-time.

    *script_for* selects the script of each unit (the battle simulation
    assigns scripts by unit type).  The result is the combined effect
    table; applying effects to produce the next state is the engine's
    post-processing step (Example 4.1), outside SGL semantics.
    """
    interpreters: dict[int, Interpreter] = {}
    tables = [env]
    for unit in env:
        script = script_for(unit)
        interp = interpreters.get(id(script))
        if interp is None:
            interp = Interpreter(script, registry, agg_eval)
            interpreters[id(script)] = interp
        tables.append(interp.run_unit(unit, env, rng))
    return combine_all(tables, env.schema)
