"""SGL -- the Scalable Games Language (Section 4 of the paper).

Public surface:

* :func:`parse_script` / :func:`parse_term` / :func:`parse_condition` --
  parse SGL surface syntax into ASTs;
* :class:`FunctionRegistry` -- built-in aggregate/action functions and
  game constants, registered from the restricted SQL fragment;
* :class:`Interpreter` / :func:`reference_tick` -- the reference
  semantics of Section 4.3;
* :func:`normalize_script` -- the aggregate normal form of Section 5.1;
* :func:`analyze_script` -- static validation + optimizer inventories.
"""

from .analysis import AggregateCallSite, ScriptAnalysis, analyze_script
from .builtins import ActionFunction, AggregateFunction, FunctionRegistry
from .errors import (
    SglError,
    SglNameError,
    SglRuntimeError,
    SglSyntaxError,
    SglTypeError,
)
from .evalterm import EvalContext, eval_cond, eval_term
from .interp import Interpreter, NaiveAggregateEvaluator, reference_tick
from .normalize import is_normal_form, normalize_script
from .parser import parse_action, parse_condition, parse_script, parse_term
from .sqlspec import (
    AggOutput,
    SqlActionSpec,
    SqlAggregateSpec,
    parse_sql_function,
    parse_sql_functions,
)
from .values import Record, Vec

__all__ = [
    "ActionFunction",
    "AggOutput",
    "AggregateCallSite",
    "AggregateFunction",
    "EvalContext",
    "FunctionRegistry",
    "Interpreter",
    "NaiveAggregateEvaluator",
    "Record",
    "ScriptAnalysis",
    "SglError",
    "SglNameError",
    "SglRuntimeError",
    "SglSyntaxError",
    "SglTypeError",
    "SqlActionSpec",
    "SqlAggregateSpec",
    "Vec",
    "analyze_script",
    "eval_cond",
    "eval_term",
    "is_normal_form",
    "normalize_script",
    "parse_action",
    "parse_condition",
    "parse_script",
    "parse_sql_function",
    "parse_sql_functions",
    "parse_term",
    "reference_tick",
]
