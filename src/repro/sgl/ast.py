"""Abstract syntax trees for SGL (Section 4.1).

The grammar of action functions is::

    action ::= (let name = term) action
             | action ; action
             | if cond then action [else action]
             | perform name(term, ...)

Conditions are boolean combinations of comparisons between terms; terms
are arithmetic over constants, unit attributes, ``Random(i)``, aggregate
function calls, and 2-d vector literals ``(t1, t2)`` (used by Figure 3's
``away_vector``).

All nodes are frozen dataclasses so that compiled scripts are immutable
and can safely be shared between the reference interpreter, the algebra
translator, and static analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


class Term:
    """Base class of term nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Num(Term):
    value: float

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Str(Term):
    value: str

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Name(Term):
    """A bare identifier: a let-binding, function parameter, or constant."""

    ident: str

    def __str__(self) -> str:
        return self.ident


@dataclass(frozen=True)
class FieldAccess(Term):
    """``base.field`` -- attribute access on a unit tuple or record."""

    base: Term
    attr: str

    def __str__(self) -> str:
        return f"{self.base}.{self.attr}"


@dataclass(frozen=True)
class BinOp(Term):
    """Arithmetic: ``+ - * / %``."""

    op: str
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Neg(Term):
    operand: Term

    def __str__(self) -> str:
        return f"(-{self.operand})"


@dataclass(frozen=True)
class Call(Term):
    """A function call: aggregate, math builtin, or ``Random``.

    Which of those it is gets resolved against the
    :class:`~repro.sgl.builtins.FunctionRegistry` during analysis; the
    parser cannot tell them apart syntactically.
    """

    name: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.name}({', '.join(map(str, self.args))})"


@dataclass(frozen=True)
class VecLit(Term):
    """A vector literal ``(t1, t2, ...)`` as used in Figure 3."""

    items: tuple[Term, ...]

    def __str__(self) -> str:
        return f"({', '.join(map(str, self.items))})"


# ---------------------------------------------------------------------------
# Conditions
# ---------------------------------------------------------------------------


class Cond:
    """Base class of condition nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Compare(Cond):
    """Atomic condition: comparison of two terms with ``= < <= > >= <>``."""

    op: str
    left: Term
    right: Term

    def __str__(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class And(Cond):
    left: Cond
    right: Cond

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True)
class Or(Cond):
    left: Cond
    right: Cond

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True)
class Not(Cond):
    operand: Cond

    def __str__(self) -> str:
        return f"(not {self.operand})"


@dataclass(frozen=True)
class BoolLit(Cond):
    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


# ---------------------------------------------------------------------------
# Actions
# ---------------------------------------------------------------------------


class Action:
    """Base class of action-function body nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Skip(Action):
    """The empty action; returns the empty effect table.

    Not writable in surface syntax, but produced by normalisation (e.g.
    an ``if`` with no ``else`` is ``if c then a else skip`` semantically).
    """

    def __str__(self) -> str:
        return "skip"


@dataclass(frozen=True)
class Let(Action):
    """``(let name = term) body`` -- extend the current unit record."""

    name: str
    term: Term
    body: Action

    def __str__(self) -> str:
        return f"(let {self.name} = {self.term}) {self.body}"


@dataclass(frozen=True)
class Seq(Action):
    """``a1; a2`` -- both run on the same input; results combine by ⊕."""

    first: Action
    second: Action

    def __str__(self) -> str:
        return f"{self.first}; {self.second}"


@dataclass(frozen=True)
class If(Action):
    """``if cond then a [else b]``.

    Per Section 4.3, ``if c then a else b`` is sugar for
    ``if c then a; if not c then b``; the parser preserves the ``else``
    branch and normalisation may expand it.
    """

    cond: Cond
    then_branch: Action
    else_branch: Optional[Action] = None

    def __str__(self) -> str:
        s = f"if {self.cond} then {{ {self.then_branch} }}"
        if self.else_branch is not None:
            s += f" else {{ {self.else_branch} }}"
        return s


@dataclass(frozen=True)
class Perform(Action):
    """``perform Name(args)`` -- invoke a built-in or defined action fn."""

    name: str
    args: tuple[Term, ...]

    def __str__(self) -> str:
        return f"perform {self.name}({', '.join(map(str, self.args))})"


# ---------------------------------------------------------------------------
# Top-level
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionDef:
    """A named action function; the first parameter binds the unit tuple."""

    name: str
    params: tuple[str, ...]
    body: Action

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.params)}) {{ {self.body} }}"


@dataclass(frozen=True)
class Script:
    """A compiled SGL script: a set of action functions with entry ``main``."""

    functions: dict[str, FunctionDef] = field(default_factory=dict)
    entry: str = "main"

    def __post_init__(self) -> None:
        if self.entry not in self.functions:
            raise ValueError(f"script has no entry function {self.entry!r}")

    @property
    def main(self) -> FunctionDef:
        return self.functions[self.entry]


TermLike = Union[Term, Cond]


def walk_terms(node: Union[Term, Cond, Action]) -> list[Term]:
    """All term nodes reachable from *node*, in preorder.

    Used by static analysis to inventory aggregate calls and attribute
    references without each pass re-implementing traversal.
    """
    out: list[Term] = []
    stack: list[Union[Term, Cond, Action]] = [node]
    while stack:
        cur = stack.pop()
        if isinstance(cur, Term):
            out.append(cur)
        if isinstance(cur, (Num, Str, Name, Skip, BoolLit)):
            continue
        if isinstance(cur, FieldAccess):
            stack.append(cur.base)
        elif isinstance(cur, BinOp):
            stack.extend((cur.left, cur.right))
        elif isinstance(cur, Neg):
            stack.append(cur.operand)
        elif isinstance(cur, Call):
            stack.extend(cur.args)
        elif isinstance(cur, VecLit):
            stack.extend(cur.items)
        elif isinstance(cur, Compare):
            stack.extend((cur.left, cur.right))
        elif isinstance(cur, (And, Or)):
            stack.extend((cur.left, cur.right))
        elif isinstance(cur, Not):
            stack.append(cur.operand)
        elif isinstance(cur, Let):
            stack.extend((cur.term, cur.body))
        elif isinstance(cur, Seq):
            stack.extend((cur.first, cur.second))
        elif isinstance(cur, If):
            stack.extend((cur.cond, cur.then_branch))
            if cur.else_branch is not None:
                stack.append(cur.else_branch)
        elif isinstance(cur, Perform):
            stack.extend(cur.args)
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown node {cur!r}")
    return out
