"""Runtime values for SGL term evaluation.

SGL terms evaluate to:

* Python numbers (``int``/``float``) -- health, counts, coordinates;
* strings -- categorical data such as unit types;
* booleans -- condition results;
* :class:`Vec` -- small numeric vectors, from literals like
  ``(u.posx, u.posy)`` or vector-valued aggregates (centroids);
* :class:`Record` -- named tuples of values, from multi-output aggregates
  like ``GetNearestEnemy`` (accessed with ``.field``);
* ``None`` -- the result of min/max/avg/argmin aggregates over an empty
  selection.  Scripts are expected to guard such uses with count checks
  (Figure 3 tests ``c > 0`` before asking for the nearest enemy).
"""

from __future__ import annotations

import math
from typing import Iterator, Mapping

from .errors import SglRuntimeError, SglTypeError


class Vec:
    """An immutable numeric vector with componentwise arithmetic."""

    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(float(x) for x in items)

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[float]:
        return iter(self.items)

    def __getitem__(self, i: int) -> float:
        return self.items[i]

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Vec):
            return self.items == other.items
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.items)

    def __repr__(self) -> str:
        return f"Vec{self.items}"

    # componentwise arithmetic -----------------------------------------------------

    def _coerce(self, other: object, op: str) -> "Vec | None":
        """Coerce *other* for componentwise arithmetic.

        Returns ``None`` (SQL NULL propagation) when *other* is an
        all-``None`` record -- the result of a vector-valued aggregate
        over an empty selection, e.g. Figure 3's ``away_vector`` when no
        enemy is in range.
        """
        if isinstance(other, Vec):
            vec: "Vec | None" = other
        elif isinstance(other, Record):
            vec = other.as_vec()
            if vec is None:
                return None
        else:
            raise SglTypeError(f"cannot {op} Vec and {type(other).__name__}")
        if len(vec) != len(self):
            raise SglTypeError(
                f"cannot {op} vectors of lengths {len(self)} and {len(vec)}"
            )
        return vec

    def __add__(self, other: object) -> "Vec | None":
        vec = self._coerce(other, "add")
        if vec is None:
            return None
        return Vec(a + b for a, b in zip(self.items, vec.items))

    def __radd__(self, other: object) -> "Vec | None":
        return self.__add__(other)

    def __sub__(self, other: object) -> "Vec | None":
        vec = self._coerce(other, "subtract")
        if vec is None:
            return None
        return Vec(a - b for a, b in zip(self.items, vec.items))

    def __rsub__(self, other: object) -> "Vec | None":
        vec = self._coerce(other, "subtract")
        if vec is None:
            return None
        return Vec(b - a for a, b in zip(self.items, vec.items))

    def __mul__(self, scalar: object) -> "Vec":
        if not isinstance(scalar, (int, float)):
            raise SglTypeError("Vec can only be scaled by a number")
        return Vec(a * scalar for a in self.items)

    __rmul__ = __mul__

    def __truediv__(self, scalar: object) -> "Vec":
        if not isinstance(scalar, (int, float)):
            raise SglTypeError("Vec can only be divided by a number")
        return Vec(a / scalar for a in self.items)

    def __neg__(self) -> "Vec":
        return Vec(-a for a in self.items)

    def norm(self) -> float:
        return math.sqrt(sum(a * a for a in self.items))


class Record:
    """An immutable named tuple of values with ``.field`` access.

    Multi-output aggregates (``Avg(x) AS x, Avg(y) AS y``) and argmin/
    argmax aggregates (which return whole unit rows) produce records.
    """

    __slots__ = ("_fields",)

    def __init__(self, fields: Mapping[str, object]):
        object.__setattr__(self, "_fields", dict(fields))

    def __getattr__(self, name: str) -> object:
        fields = object.__getattribute__(self, "_fields")
        try:
            return fields[name]
        except KeyError:
            raise SglRuntimeError(f"record has no field {name!r}") from None

    def __setattr__(self, name: str, value: object) -> None:
        raise SglTypeError("records are immutable")

    def __reduce__(self):
        # default slots-pickling restores state via __setattr__, which
        # immutability forbids; rebuild through __init__ instead (records
        # cross process boundaries in forwarded worker probe answers)
        return (Record, (self._fields,))

    def get(self, name: str) -> object:
        try:
            return self._fields[name]
        except KeyError:
            raise SglRuntimeError(f"record has no field {name!r}") from None

    def keys(self):
        return self._fields.keys()

    def as_dict(self) -> dict[str, object]:
        return dict(self._fields)

    def as_vec(self) -> "Vec | None":
        """Coerce an all-numeric record to a :class:`Vec` in field order.

        Returns ``None`` (NULL) when any field is ``None`` -- a record
        produced by an aggregate over an empty selection.
        """
        values = list(self._fields.values())
        if any(v is None for v in values):
            return None
        if not all(isinstance(v, (int, float)) for v in values):
            raise SglTypeError("record with non-numeric fields cannot be a Vec")
        return Vec(values)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Record):
            return self._fields == other._fields
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._fields.items())))

    def __sub__(self, other: object) -> Vec:
        return self.as_vec() - other

    def __rsub__(self, other: object) -> Vec:
        if isinstance(other, Vec):
            return other - self.as_vec()
        raise SglTypeError(f"cannot subtract Record from {type(other).__name__}")

    def __add__(self, other: object) -> Vec:
        return self.as_vec() + other

    __radd__ = __add__

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._fields.items())
        return f"Record({inner})"


def field_of(value: object, name: str) -> object:
    """Evaluate ``value.name`` for unit rows, records, and vectors."""
    if isinstance(value, Mapping):
        try:
            return value[name]
        except KeyError:
            raise SglRuntimeError(f"unit has no attribute {name!r}") from None
    if isinstance(value, Record):
        return value.get(name)
    if isinstance(value, Vec) and name in ("x", "y", "z"):
        index = "xyz".index(name)
        if index < len(value):
            return value[index]
        raise SglRuntimeError(f"vector of length {len(value)} has no {name!r}")
    if value is None:
        # NULL propagation: a field of an empty aggregate result is NULL.
        # Downstream comparisons treat NULL as false and key look-ups on
        # NULL match nothing, so unguarded scripts degrade gracefully.
        return None
    raise SglTypeError(f"cannot access field {name!r} of {type(value).__name__}")
