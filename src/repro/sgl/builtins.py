"""Registry of built-in aggregate and action functions.

Section 4.3 distinguishes *defined* action functions (written in SGL and
invoked by ``perform G``) from *built-in* functions provided by the game
engine.  Built-ins come in two flavours:

* **aggregate functions** ``a(u, E, r)`` used inside terms;
* **action functions** ``h(u, E, r)`` used in ``perform`` statements.

The paper assumes (Section 4.3, footnote 3) that all built-ins are
expressible in the restricted SQL fragment -- so the primary registration
path here is SQL text, parsed by :mod:`repro.sgl.sqlspec`.  A native
escape hatch exists for functions outside the fragment (e.g. exposing an
engine pathfinder to scripts, the fourth iteration pattern of
Section 3.1), but native functions are opaque to the optimizer and always
run naively.

The registry also stores named game constants (``_ARROW_HIT_DAMAGE`` and
friends from Figure 5), which resolve during term evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from .errors import SglNameError, SglTypeError
from .sqlspec import (
    ParsedSqlFunction,
    SqlActionSpec,
    SqlAggregateSpec,
    parse_sql_functions,
)

#: Signature of a native aggregate: ``(args, env_rows, ctx) -> value``.
NativeAggregateFn = Callable[..., object]
#: Signature of a native action: ``(args, ctx) -> list[effect rows]``.
NativeActionFn = Callable[..., list]


@dataclass(frozen=True)
class AggregateFunction:
    """A named aggregate built-in with bound parameter names."""

    name: str
    params: tuple[str, ...]
    spec: SqlAggregateSpec | None = None
    native: NativeAggregateFn | None = None

    def __post_init__(self) -> None:
        if (self.spec is None) == (self.native is None):
            raise SglTypeError(
                f"{self.name}: exactly one of spec/native must be given"
            )


@dataclass(frozen=True)
class ActionFunction:
    """A named action built-in with bound parameter names."""

    name: str
    params: tuple[str, ...]
    spec: SqlActionSpec | None = None
    native: NativeActionFn | None = None

    def __post_init__(self) -> None:
        if (self.spec is None) == (self.native is None):
            raise SglTypeError(
                f"{self.name}: exactly one of spec/native must be given"
            )


@dataclass
class FunctionRegistry:
    """All built-ins and constants visible to a set of SGL scripts."""

    aggregates: dict[str, AggregateFunction] = field(default_factory=dict)
    actions: dict[str, ActionFunction] = field(default_factory=dict)
    constants: dict[str, object] = field(default_factory=dict)

    # -- registration ---------------------------------------------------------

    def register_constant(self, name: str, value: object) -> None:
        self.constants[name] = value

    def register_constants(self, constants: Mapping[str, object]) -> None:
        self.constants.update(constants)

    def register_sql(self, source: str) -> list[str]:
        """Register every ``function ... returns SELECT ...`` in *source*.

        The select shape decides whether each becomes an aggregate or an
        action (aggregate select-lists contain SQL aggregate calls).
        Returns the registered names in order.
        """
        names = []
        for parsed in parse_sql_functions(source):
            self._register_parsed(parsed)
            names.append(parsed.name)
        return names

    def _register_parsed(self, parsed: ParsedSqlFunction) -> None:
        self._check_fresh(parsed.name)
        if isinstance(parsed.spec, SqlAggregateSpec):
            self.aggregates[parsed.name] = AggregateFunction(
                name=parsed.name, params=parsed.params, spec=parsed.spec
            )
        else:
            self.actions[parsed.name] = ActionFunction(
                name=parsed.name, params=parsed.params, spec=parsed.spec
            )

    def register_aggregate(
        self, name: str, params: tuple[str, ...], spec: SqlAggregateSpec
    ) -> None:
        self._check_fresh(name)
        self.aggregates[name] = AggregateFunction(name, params, spec=spec)

    def register_action(
        self, name: str, params: tuple[str, ...], spec: SqlActionSpec
    ) -> None:
        self._check_fresh(name)
        self.actions[name] = ActionFunction(name, params, spec=spec)

    def register_native_aggregate(
        self, name: str, params: tuple[str, ...], fn: NativeAggregateFn
    ) -> None:
        self._check_fresh(name)
        self.aggregates[name] = AggregateFunction(name, params, native=fn)

    def register_native_action(
        self, name: str, params: tuple[str, ...], fn: NativeActionFn
    ) -> None:
        self._check_fresh(name)
        self.actions[name] = ActionFunction(name, params, native=fn)

    # -- lookup ---------------------------------------------------------------

    def aggregate(self, name: str) -> AggregateFunction:
        try:
            return self.aggregates[name]
        except KeyError:
            raise SglNameError(f"unknown aggregate function {name!r}") from None

    def action(self, name: str) -> ActionFunction:
        try:
            return self.actions[name]
        except KeyError:
            raise SglNameError(f"unknown action function {name!r}") from None

    def _check_fresh(self, name: str) -> None:
        if name in self.aggregates or name in self.actions:
            raise SglTypeError(f"function {name!r} already registered")

    def copy(self) -> "FunctionRegistry":
        return FunctionRegistry(
            aggregates=dict(self.aggregates),
            actions=dict(self.actions),
            constants=dict(self.constants),
        )
