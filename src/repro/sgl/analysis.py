"""Static analysis of SGL scripts.

Validates scripts against the environment schema and function registry
before any execution, and produces the inventories the optimizer needs:

* every aggregate call site (function + argument terms) -- this is the
  input to index selection (Section 5.3: "we can afford to construct an
  index specifically tailored to each query plan");
* the set of schema attributes each script reads;
* the set of effect attributes each script can write (via the action
  functions it performs).

Scope checking follows the language rules: ``let`` binds one name in one
following action; defined functions see only their parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from . import ast
from .errors import SglNameError, SglTypeError
from .evalterm import MATH_BUILTINS

if TYPE_CHECKING:  # pragma: no cover
    from ..env.schema import Schema
    from .builtins import FunctionRegistry


@dataclass(frozen=True)
class AggregateCallSite:
    """One syntactic call of an aggregate function inside a script."""

    function: str
    args: tuple[ast.Term, ...]
    enclosing: str  # name of the enclosing FunctionDef


@dataclass
class ScriptAnalysis:
    """Everything the engine and optimizer need to know statically."""

    aggregate_calls: list[AggregateCallSite] = field(default_factory=list)
    attributes_read: set[str] = field(default_factory=set)
    effects_written: set[str] = field(default_factory=set)
    actions_performed: set[str] = field(default_factory=set)
    uses_random: bool = False

    @property
    def aggregate_functions(self) -> set[str]:
        return {c.function for c in self.aggregate_calls}


def analyze_script(
    script: ast.Script,
    registry: "FunctionRegistry",
    schema: "Schema | None" = None,
) -> ScriptAnalysis:
    """Validate *script* and return its :class:`ScriptAnalysis`.

    Raises :class:`SglNameError` / :class:`SglTypeError` on unknown
    functions, wrong arities, unbound names, or (when *schema* is given)
    references to attributes absent from the environment schema.
    """
    analysis = ScriptAnalysis()
    analyzer = _Analyzer(script, registry, schema, analysis)
    for fn in script.functions.values():
        analyzer.check_function(fn)
    return analysis


class _Analyzer:
    def __init__(
        self,
        script: ast.Script,
        registry: "FunctionRegistry",
        schema: "Schema | None",
        analysis: ScriptAnalysis,
    ):
        self.script = script
        self.registry = registry
        self.schema = schema
        self.analysis = analysis

    # -- actions ----------------------------------------------------------

    def check_function(self, fn: ast.FunctionDef) -> None:
        if not fn.params:
            raise SglTypeError(f"function {fn.name!r} needs a unit parameter")
        scope = set(fn.params)
        self.check_action(fn.body, scope, fn.name)

    def check_action(self, node: ast.Action, scope: set[str], where: str) -> None:
        if isinstance(node, ast.Skip):
            return
        if isinstance(node, ast.Let):
            self.check_term(node.term, scope, where)
            self.check_action(node.body, scope | {node.name}, where)
            return
        if isinstance(node, ast.Seq):
            self.check_action(node.first, scope, where)
            self.check_action(node.second, scope, where)
            return
        if isinstance(node, ast.If):
            self.check_cond(node.cond, scope, where)
            self.check_action(node.then_branch, scope, where)
            if node.else_branch is not None:
                self.check_action(node.else_branch, scope, where)
            return
        if isinstance(node, ast.Perform):
            self.check_perform(node, scope, where)
            return
        raise SglTypeError(f"unknown action node {node!r}")

    def check_perform(self, node: ast.Perform, scope: set[str], where: str) -> None:
        for arg in node.args:
            self.check_term(arg, scope, where)

        defined = self.script.functions.get(node.name)
        if defined is not None:
            if len(node.args) != len(defined.params):
                raise SglTypeError(
                    f"{where}: {node.name} expects {len(defined.params)} "
                    f"args, got {len(node.args)}"
                )
            self.analysis.actions_performed.add(node.name)
            return

        builtin = self.registry.actions.get(node.name)
        if builtin is None:
            raise SglNameError(
                f"{where}: unknown action function {node.name!r}"
            )
        if len(node.args) != len(builtin.params):
            raise SglTypeError(
                f"{where}: {node.name} expects {len(builtin.params)} args, "
                f"got {len(node.args)}"
            )
        self.analysis.actions_performed.add(node.name)
        if builtin.spec is not None:
            self.analysis.effects_written.update(builtin.spec.effects.keys())

    # -- conditions and terms ----------------------------------------------

    def check_cond(self, node: ast.Cond, scope: set[str], where: str) -> None:
        if isinstance(node, ast.BoolLit):
            return
        if isinstance(node, ast.Compare):
            self.check_term(node.left, scope, where)
            self.check_term(node.right, scope, where)
            return
        if isinstance(node, (ast.And, ast.Or)):
            self.check_cond(node.left, scope, where)
            self.check_cond(node.right, scope, where)
            return
        if isinstance(node, ast.Not):
            self.check_cond(node.operand, scope, where)
            return
        raise SglTypeError(f"unknown condition node {node!r}")

    def check_term(self, node: ast.Term, scope: set[str], where: str) -> None:
        if isinstance(node, (ast.Num, ast.Str)):
            return
        if isinstance(node, ast.Name):
            if node.ident in scope or node.ident in self.registry.constants:
                return
            raise SglNameError(f"{where}: unbound name {node.ident!r}")
        if isinstance(node, ast.FieldAccess):
            self.check_term(node.base, scope, where)
            # ``u.attr`` where u is the unit parameter: check against schema
            if (
                self.schema is not None
                and isinstance(node.base, ast.Name)
                and node.base.ident in scope
            ):
                self.analysis.attributes_read.add(node.attr)
            return
        if isinstance(node, ast.BinOp):
            self.check_term(node.left, scope, where)
            self.check_term(node.right, scope, where)
            return
        if isinstance(node, ast.Neg):
            self.check_term(node.operand, scope, where)
            return
        if isinstance(node, ast.VecLit):
            for item in node.items:
                self.check_term(item, scope, where)
            return
        if isinstance(node, ast.Call):
            self.check_call(node, scope, where)
            return
        raise SglTypeError(f"unknown term node {node!r}")

    def check_call(self, node: ast.Call, scope: set[str], where: str) -> None:
        for arg in node.args:
            self.check_term(arg, scope, where)

        if node.name == "Random":
            if len(node.args) not in (1, 2):
                raise SglTypeError(f"{where}: Random takes one or two args")
            self.analysis.uses_random = True
            return
        if node.name in MATH_BUILTINS:
            return

        aggregate = self.registry.aggregates.get(node.name)
        if aggregate is None:
            raise SglNameError(f"{where}: unknown function {node.name!r}")
        if len(node.args) != len(aggregate.params):
            raise SglTypeError(
                f"{where}: {node.name} expects {len(aggregate.params)} args, "
                f"got {len(node.args)}"
            )
        self.analysis.aggregate_calls.append(
            AggregateCallSite(
                function=node.name, args=node.args, enclosing=where
            )
        )
