"""The discrete simulation engine (Sections 2.2 and 6).

Tick loop, pluggable naive/indexed aggregate evaluators, deferred
area-of-effect combination, post-processing, and grid movement.
"""

from .clock import EngineConfig, SimulationEngine, TickStats
from .decision import DecisionRunner
from .effects import AoeRecord, resolve_aoe
from .evaluator import (
    CallHint,
    IndexedEvaluator,
    NaiveEvaluator,
    collect_call_hints,
    empty_aggregate_result,
)
from .movement import Grid, desired_direction, run_movement_phase
from .postprocess import example_41_postprocess
from .rng import TickRandom, splitmix64
from .shardexec import (
    PoolStats,
    ReplicaWorkerPool,
    WorkerEndpoint,
    WorkerGame,
    serve_worker,
    spawn_listen_worker,
)

__all__ = [
    "AoeRecord",
    "CallHint",
    "DecisionRunner",
    "EngineConfig",
    "Grid",
    "IndexedEvaluator",
    "NaiveEvaluator",
    "PoolStats",
    "ReplicaWorkerPool",
    "SimulationEngine",
    "TickRandom",
    "TickStats",
    "WorkerEndpoint",
    "WorkerGame",
    "serve_worker",
    "spawn_listen_worker",
    "collect_call_hints",
    "desired_direction",
    "empty_aggregate_result",
    "example_41_postprocess",
    "resolve_aoe",
    "run_movement_phase",
    "splitmix64",
]
