"""The two pluggable aggregate-query evaluators (Section 6).

"There are two 'pluggable' versions of our aggregate query evaluator.
One executes aggregate queries naively, using straightforward O(n)
algorithms, for a total cost of O(n²) per tick.  The other uses
in-memory indexing ... to reduce the complexity to O(n log n)."

* :class:`NaiveEvaluator` re-exports the scan evaluator of the reference
  interpreter -- every aggregate call walks all n environment rows.

* :class:`IndexedEvaluator` compiles each aggregate function's
  :class:`~repro.algebra.shapes.AggregateShape` once, then per tick
  builds exactly the index the shape calls for and answers every call
  by probing it:

  ========== ==============================================================
  shape      per-tick index
  ========== ==============================================================
  divisible  hash layers (eq/neq cats) → Figure-8 prefix-aggregate tree
  nearest    hash layers → kD-tree, residual conjuncts as search predicates
  extreme    Figure-9 sweep-line batches, grouped by constant range extents
  fallback   hash layers → partitioned row scan
  ========== ==============================================================

  By default indexes are rebuilt from scratch every tick, as the paper
  advocates for rapidly-changing data ("we are still likely to see
  significant performance gains even if, at each clock tick, we discard
  the index and build a new one from scratch").  But between ticks only
  the *changed* rows matter, so the evaluator also supports delta-driven
  **incremental maintenance** (``maintenance="incremental"`` or
  ``"auto"``): :meth:`IndexedEvaluator.begin_tick` takes the
  :class:`~repro.env.table.TableDelta` captured by the engine and routes
  inserted/deleted/updated rows into the retained structures instead of
  discarding them.  ``"auto"`` is the cost-based policy -- apply deltas
  while the changed fraction stays under ``incremental_threshold``, fall
  back to a full rebuild otherwise -- and any structure whose
  accumulated overlay outgrows its budget is dropped and lazily rebuilt.
  Sweep-line batches are probe-set-dependent and stay rebuild-only.

Both evaluators return *identical* results -- including argmin/argmax
tie-breaks -- which the equivalence tests assert on random battles
under every maintenance mode.  One caveat: delta maintenance adds and
subtracts measure contributions in a different order than a fresh
build, so the equality of incremental and rebuilt answers is exact
only when the measure sums themselves are exact in floating point
(always true for integer-valued measures, like every measure in the
battle simulation).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from ..algebra.shapes import AggregateShape, classify_aggregate
from ..env.table import EnvironmentTable, TableDelta
from ..indexes.composite import GroupAggIndex
from ..indexes.hash_layer import PartitionedIndex
from ..indexes.kdtree import KDTree
from ..indexes.sweepline import sweep_arg_minmax
from ..obs import NULL_REGISTRY, StatCounters
from ..sgl import ast
from ..sgl.builtins import AggregateFunction, FunctionRegistry
from ..sgl.evalterm import EvalContext, eval_cond, eval_term
from ..sgl.interp import NaiveAggregateEvaluator
from ..sgl.sqlspec import AggOutput, evaluate_aggregate_scan, finalize_outputs
from ..sgl.values import Record
from .compile import compile_e_filter, compile_e_term

#: The naive evaluator is exactly the reference interpreter's.
NaiveEvaluator = NaiveAggregateEvaluator

_INF = float("inf")


def empty_aggregate_result(outputs: Sequence[AggOutput]) -> object:
    """The value of an aggregate over an empty selection."""
    values = [
        0 if o.agg == "count" else (0 if o.agg == "sum" else None)
        for o in outputs
    ]
    return finalize_outputs(outputs, values)


@dataclass(frozen=True)
class CallHint:
    """A statically-analysable aggregate call site.

    ``arg_terms`` are the call's argument terms; a hint is only emitted
    when every term is computable from the unit row alone (the unit
    parameter, its attributes, and constants), which is what allows the
    sweep-line batches to be precomputed for all units at tick start.
    """

    function: str
    unit_param: str
    arg_terms: tuple[ast.Term, ...]


@dataclass
class _CompiledShape:
    """Per-aggregate static compilation artefacts."""

    shape: AggregateShape
    measures: list = field(default_factory=list)  # RowFn per measured output
    measure_slot: list = field(default_factory=list)  # output idx -> slot/None
    build_filter: object = None  # RowPred | None (e-only conjuncts)
    value_fn: object = None  # RowFn for extreme value terms


#: Mutation floor below which an incremental structure is never dropped.
_OVERLAY_MIN = 32


class IndexedEvaluator:
    """Index-backed aggregate evaluation.

    Per tick, either rebuilds every index from scratch (the paper's
    default) or maintains the retained structures from a row delta --
    see ``maintenance`` and the module docstring.
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        *,
        cascade: bool = True,
        key_attr: str = "key",
        maintenance: str = "rebuild",
        incremental_threshold: float = 0.25,
        overlay_budget: float = 0.5,
        auto_policy: str = "ewma",
        shard_of: Callable[[Mapping[str, object]], int] | None = None,
        num_shards: int = 1,
    ):
        if maintenance not in ("rebuild", "incremental", "auto"):
            raise ValueError(f"unknown maintenance mode {maintenance!r}")
        if auto_policy not in ("ewma", "threshold"):
            raise ValueError(f"unknown auto_policy {auto_policy!r}")
        self.registry = registry
        self.cascade = cascade
        self.key_attr = key_attr
        self.maintenance = maintenance
        #: "auto" applies deltas only below this changed-row fraction
        #: (the bootstrap rule until the EWMA cost model has samples).
        self.incremental_threshold = incremental_threshold
        #: Drop a structure once its mutation count exceeds this fraction
        #: of its size (overlay scans / tombstones degrade probes).
        self.overlay_budget = overlay_budget
        #: "ewma" decides rebuild-vs-delta from observed timing history;
        #: "threshold" is the original single changed-fraction rule.
        self.auto_policy = auto_policy
        #: Environment sharding: when set, every hash layer prefixes its
        #: group keys with the row's shard id, giving per-shard sub-index
        #: instances whose answers merge at probe time.  Maintenance
        #: routes through the same keys, so it stays shard-local.
        self.shard_of = shard_of if num_shards > 1 else None
        self.num_shards = num_shards if self.shard_of is not None else 1
        self._compiled: dict[str, _CompiledShape] = {}
        # per-tick caches (retained across ticks under delta maintenance)
        self._env: EnvironmentTable | None = None
        self._div_index: dict[str, PartitionedIndex] = {}
        self._kd_index: dict[str, PartitionedIndex] = {}
        self._row_index: dict[str, PartitionedIndex] = {}
        #: fn name -> {args signature -> sweep result}; an entry's
        #: presence means the function's Figure-9 batch is ready.
        self._batches: dict[str, dict[tuple, object]] = {}
        self._hints: list[tuple[CallHint, list[Mapping[str, object]]]] = []
        # EWMA cost model (auto_policy="ewma"): seconds/row of from-
        # scratch builds vs seconds/changed-row of delta application,
        # learned from the same wall-clock that TickStats.maintenance_time
        # reports.  Build samples accumulate lazily (structures build on
        # first probe) and fold in at the next begin_tick.
        self._rebuild_cost: float | None = None
        self._delta_cost: float | None = None
        self._pending_build_seconds = 0.0
        self._pending_build_rows = 0
        # instrumentation: a plain dict to callers, optionally backed by
        # registry counters (bind_metrics) so the decision counters show
        # up in Prometheus exposition without a second bookkeeping path
        self.stats = StatCounters(prefix="evaluator")
        self._m_predicted_delta = NULL_REGISTRY.gauge("_")
        self._m_predicted_rebuild = NULL_REGISTRY.gauge("_")
        self._m_delta_apply = NULL_REGISTRY.histogram("_")
        self._m_prediction_error = NULL_REGISTRY.histogram("_")
        self._m_depth_rebuilds = NULL_REGISTRY.gauge("_")

    # -- observability ------------------------------------------------------------

    def bind_metrics(self, registry) -> None:
        """Back ``stats`` and the cost-model diagnostics with *registry*.

        The EWMA gauges record the most recent predicted delta/rebuild
        seconds next to the observed delta-apply seconds, so an operator
        can see whether the "auto" policy's crossover is calibrated.
        """
        self.stats.bind(registry, "evaluator")
        self._m_predicted_delta = registry.gauge(
            "evaluator_predicted_delta_seconds"
        )
        self._m_predicted_rebuild = registry.gauge(
            "evaluator_predicted_rebuild_seconds"
        )
        self._m_delta_apply = registry.histogram(
            "evaluator_delta_apply_seconds"
        )
        self._m_prediction_error = registry.histogram(
            "evaluator_delta_prediction_error_seconds"
        )
        self._m_depth_rebuilds = registry.gauge("index_depth_rebuilds")

    def index_counters(self) -> dict[str, int]:
        """Live structure counters for the currently retained indexes.

        ``depth_rebuilds`` sums :class:`~repro.indexes.kdtree.KDTree`
        depth-triggered rebuilds over every retained k-d group -- the
        signal that overlay churn is forcing tree reconstruction.
        """
        depth_rebuilds = 0
        kd_groups = 0
        for index in self._kd_index.values():
            for sub in index.groups.values():
                kd_groups += 1
                depth_rebuilds += getattr(sub, "depth_rebuilds", 0)
        counters = {
            "depth_rebuilds": depth_rebuilds,
            "kd_groups": kd_groups,
            "div_indexes": len(self._div_index),
            "row_indexes": len(self._row_index),
        }
        self._m_depth_rebuilds.set(depth_rebuilds)
        return counters

    # -- tick lifecycle ---------------------------------------------------------

    def begin_tick(
        self,
        env: EnvironmentTable,
        hints: Iterable[tuple[CallHint, list[Mapping[str, object]]]] = (),
        delta: TableDelta | None = None,
    ) -> None:
        """Start a tick over *env*; *hints* pair call sites with the unit
        rows that will execute them (used for sweep-line batching).

        *delta* is the engine's change capture against the previous
        tick's environment.  Under ``maintenance="incremental"``/
        ``"auto"`` a usable delta patches the retained index structures
        in place; otherwise (or when the cost policy votes rebuild) all
        structures are discarded and lazily rebuilt on first probe.

        Sweep-line batches are per-tick by default, but under delta
        maintenance a function's batch survives the tick when the delta
        touched neither its source partition (no changed row passes the
        build filter) nor its probe group (same hinted call sites over
        the same, unchanged units) -- the sweep would recompute the
        exact same answers.
        """
        new_hints = list(hints)
        self._fold_build_costs()
        # Sweep-batch retention is decided independently of the
        # structure-maintenance vote: a batch is a pure function of its
        # (unchanged) source rows and probe group, so it stays exact
        # whether the div/kd structures get patched or rebuilt.
        reusable = (
            delta is not None
            and self.maintenance != "rebuild"
            and self._env is not None
        )
        retained = self._retained_batches(delta, new_hints) if reusable else {}
        if self._should_apply(delta):
            self._batches = retained
            self._hints = new_hints
            t0 = time.perf_counter()
            self._apply_delta(delta)
            dt = time.perf_counter() - t0
            if self._delta_cost is not None:
                # predicted-vs-actual before the sample updates the EWMA
                self._m_prediction_error.observe(
                    dt - delta.changed * self._delta_cost
                )
            self._observe_delta_cost(dt, delta.changed)
            self._m_delta_apply.observe(dt)
            self._bump("delta_ticks")
            self._drop_overgrown()
        else:
            self._batches = retained
            self._hints = new_hints
            discarded = bool(
                self._div_index or self._kd_index or self._row_index
            )
            self._div_index.clear()
            self._kd_index.clear()
            self._row_index.clear()
            if discarded and self.maintenance != "rebuild":
                self._bump("rebuild_ticks")
        self._env = env

    def reshard(
        self,
        shard_of: Callable[[Mapping[str, object]], int] | None,
        num_shards: int,
    ) -> None:
        """Adopt a new shard layout (``num_shards <= 1`` drops to flat).

        Every retained structure and sweep batch is keyed by the old
        layout's shard ids, so all of them are discarded; they rebuild
        lazily on their next probe.  The next ``begin_tick`` must not
        carry a delta captured under the old layout (the engine clears
        its pending capture when it reshards).
        """
        self.shard_of = shard_of if num_shards > 1 else None
        self.num_shards = num_shards if self.shard_of is not None else 1
        self._div_index.clear()
        self._kd_index.clear()
        self._row_index.clear()
        self._batches = {}
        self._hints = []
        self._env = None

    def prepare(self, fn_names: Iterable[str]) -> None:
        """Eagerly build everything the named aggregates probe this tick.

        The staged pipeline calls this between ``begin_tick`` and the
        parallel decision stage so that worker threads only *read* the
        index structures; without it the lazily-built indexes would race
        on first probe.  Serial engines skip it and keep the original
        build-on-first-probe behaviour (a tick that never probes an
        aggregate then never pays for its index).
        """
        for name in fn_names:
            fn = self.registry.aggregates.get(name)
            if fn is None or fn.native is not None or fn.spec is None:
                continue
            compiled = self._compiled_shape(fn)
            kind = compiled.shape.kind
            if kind == "divisible":
                self._ensure_div_index(fn, compiled)
            elif kind == "nearest":
                self._ensure_kd_index(fn, compiled)
            elif kind == "extreme":
                if fn.name not in self._batches:
                    self._build_extreme_batches(fn, compiled)
                # dynamic (unhinted) call sites fall back to the scan
                self._ensure_row_index(fn, compiled)
            else:
                self._ensure_row_index(fn, compiled)

    def _should_apply(self, delta: TableDelta | None) -> bool:
        if self.maintenance == "rebuild" or delta is None or self._env is None:
            return False
        if not (self._div_index or self._kd_index or self._row_index):
            return False  # nothing retained to maintain
        if self.maintenance == "auto":
            if (
                self.auto_policy == "ewma"
                and self._rebuild_cost is not None
                and self._delta_cost is not None
            ):
                # cost crossover from observed timing history: patch the
                # retained structures only while the predicted delta cost
                # undercuts the predicted from-scratch build
                self._bump("auto_ewma_decisions")
                predicted_delta = delta.changed * self._delta_cost
                predicted_rebuild = delta.base_size * self._rebuild_cost
                self._m_predicted_delta.set(predicted_delta)
                self._m_predicted_rebuild.set(predicted_rebuild)
                return predicted_delta <= predicted_rebuild
            # bootstrap (and auto_policy="threshold"): the original
            # single changed-fraction rule
            return delta.fraction <= self.incremental_threshold
        return True

    # -- EWMA cost model (auto_policy="ewma") -------------------------------------

    #: Smoothing factor: ~last 3 observations dominate, so the policy
    #: adapts within a few ticks when the workload's churn regime shifts.
    _EWMA_ALPHA = 0.3

    def _note_build(self, seconds: float, rows: int) -> None:
        """Record one from-scratch structure build (accumulated until the
        next begin_tick folds it into the rebuild-cost EWMA)."""
        self._pending_build_seconds += seconds
        self._pending_build_rows += rows

    def _fold_build_costs(self) -> None:
        if not self._pending_build_rows:
            return
        per_row = self._pending_build_seconds / self._pending_build_rows
        self._rebuild_cost = self._ewma(self._rebuild_cost, per_row)
        self._pending_build_seconds = 0.0
        self._pending_build_rows = 0

    def _observe_delta_cost(self, seconds: float, changed: int) -> None:
        per_change = seconds / max(changed, 1)
        self._delta_cost = self._ewma(self._delta_cost, per_change)

    @classmethod
    def _ewma(cls, current: float | None, sample: float) -> float:
        if current is None:
            return sample
        return current + cls._EWMA_ALPHA * (sample - current)

    def delta_budget(self, new_size: int) -> int:
        """Largest delta (changed rows) still worth capturing for "auto".

        The engine's change capture bails out past this many changed
        rows, since ``_should_apply`` would discard the delta anyway.
        Mirrors the active policy: the EWMA crossover once both cost
        estimates have samples, the fraction threshold before that.
        """
        if (
            self.auto_policy == "ewma"
            and self._rebuild_cost is not None
            and self._delta_cost is not None
            and self._delta_cost > 0
        ):
            return int(new_size * self._rebuild_cost / self._delta_cost)
        return int(self.incremental_threshold * new_size)

    # -- sweep-batch reuse across ticks -------------------------------------------

    def _retained_batches(
        self,
        delta: TableDelta,
        new_hints: list[tuple[CallHint, list[Mapping[str, object]]]],
    ) -> dict[str, dict[tuple, object]]:
        """Sweep batches from last tick that stay exact under *delta*.

        A function's batch is retained when (a) no changed row passes its
        build filter, so the source partition that was swept is
        untouched, and (b) its hinted probe group is identical -- same
        call sites over the same unit keys, none of which changed.
        Unchanged units have value-equal rows, and hinted argument terms
        depend only on the unit row and constants, so both the probe
        signatures and the sweep answers are guaranteed to reproduce.
        """
        if not self._batches:
            return {}
        out: dict[str, dict[tuple, object]] = {}
        quiet = delta.changed == 0
        changed_rows = None
        changed_keys: set | None = None
        for name, batch in self._batches.items():
            compiled = self._compiled.get(name)
            if compiled is None:
                continue
            keep = compiled.build_filter
            if not quiet:
                if keep is None:
                    continue  # every row is a source; any change dirties it
                if changed_rows is None:
                    changed_rows = list(delta.inserted) + list(delta.deleted)
                    for old, new in delta.updated:
                        changed_rows.append(old)
                        changed_rows.append(new)
                if any(keep(row) for row in changed_rows):
                    continue
            old_fp = self._probe_fingerprint(name, self._hints)
            new_fp = self._probe_fingerprint(name, new_hints)
            if old_fp != new_fp:
                continue
            if not quiet:
                if changed_keys is None:
                    key_attr = self.key_attr
                    changed_keys = {
                        row[key_attr] for row in changed_rows
                    }
                if changed_keys and any(
                    key in changed_keys
                    for _, keys in new_fp
                    for key in keys
                ):
                    continue
            out[name] = batch
            self._bump("sweep_reuse")
        return out

    def _probe_fingerprint(
        self, name: str, hints: list[tuple[CallHint, list[Mapping[str, object]]]]
    ) -> tuple:
        key_attr = self.key_attr
        return tuple(
            (hint, tuple(u[key_attr] for u in units))
            for hint, units in hints
            if hint.function == name
        )

    def _apply_delta(self, delta: TableDelta) -> None:
        for name, index in self._div_index.items():
            compiled = self._compiled[name]
            self._route_delta(index, compiled, delta, self._div_update)
        for name, index in self._kd_index.items():
            compiled = self._compiled[name]
            self._route_delta(
                index,
                compiled,
                delta,
                lambda idx, old, new, c=compiled: self._kd_update(
                    idx, c.shape, old, new
                ),
            )
        for name, index in self._row_index.items():
            compiled = self._compiled[name]
            self._route_delta(index, compiled, delta, PartitionedIndex.update)

    @staticmethod
    def _route_delta(
        index: PartitionedIndex, compiled: _CompiledShape, delta: TableDelta, update
    ) -> None:
        """Filter delta rows through the structure's build predicate and
        dispatch them to the hash layer's insert/delete/update paths."""
        keep = compiled.build_filter
        for row in delta.inserted:
            if keep is None or keep(row):
                index.insert(row)
        for row in delta.deleted:
            if keep is None or keep(row):
                index.delete(row)
        for old, new in delta.updated:
            old_in = keep is None or keep(old)
            new_in = keep is None or keep(new)
            if old_in and new_in:
                update(index, old, new)
            elif old_in:
                index.delete(old)
            elif new_in:
                index.insert(new)

    @staticmethod
    def _div_update(index: PartitionedIndex, old, new) -> None:
        """In-group update: evaluate each measure once per row, and skip
        entirely when the update cannot move the divisible aggregates
        (e.g. only a cooldown ticked under a position/health index)."""
        old_key = index._cat_key(old)
        if old_key == index._cat_key(new):
            group = index.probe(old_key)
            if group is not None:
                old_values = group.values_of(old)
                new_values = group.values_of(new)
                if old_values == new_values and all(
                    old[a] == new[a] for a in group.range_attrs
                ):
                    return
                group.delete(old, old_values)
                group.insert(new, new_values)
                return
        index.update(old, new)

    def _kd_update(self, index: PartitionedIndex, shape, old, new) -> None:
        """Replace the stored row in place when the position held still.

        The kD-tree stores the row dicts themselves (probes return them
        as records), so even a position-preserving update must swap in
        the fresh row object -- other attributes may have changed.
        """
        ax, ay = shape.nearest_attrs
        old_key = index._cat_key(old)
        if (
            old_key == index._cat_key(new)
            and old[ax] == new[ax]
            and old[ay] == new[ay]
        ):
            tree = index.probe(old_key)
            row_key = old[self.key_attr]
            if tree is not None and tree.replace_item(
                (old[ax], old[ay]),
                lambda item: item[self.key_attr] == row_key,
                new,
            ):
                return
        index.update(old, new)

    def _drop_overgrown(self) -> None:
        """Discard structures whose overlay/tombstone weight outgrew the
        budget; they rebuild lazily on their next probe.

        Divisible indexes are gauged by *live* overlay weight -- changes
        that the structure absorbed exactly (zero-dim totals, cancelled
        insert/delete pairs) cost queries nothing and must not force
        rebuilds at sustained low churn.  kD-trees are gauged by the
        cumulative mutation count, since tombstones and unbalanced
        dynamic leaves accumulate structurally even when they cancel
        logically.
        """
        gauges = (
            (
                self._div_index,
                lambda index: sum(
                    group.overlay_size for group in index.groups.values()
                ),
            ),
            (self._kd_index, lambda index: index.mutations),
        )
        for indexes, weigh in gauges:
            for name in [
                name
                for name, index in indexes.items()
                if weigh(index)
                > max(_OVERLAY_MIN, int(self.overlay_budget * len(index)))
            ]:
                del indexes[name]
                self._bump("overlay_rebuilds")

    def _bump(self, counter: str) -> None:
        self.stats.bump(counter)

    # -- static compilation -------------------------------------------------------

    def _compiled_shape(self, fn: AggregateFunction) -> _CompiledShape:
        cached = self._compiled.get(fn.name)
        if cached is not None:
            return cached
        shape = classify_aggregate(fn.spec)
        compiled = _CompiledShape(shape=shape)
        constants = self.registry.constants
        compiled.build_filter = compile_e_filter(shape.e_only, constants)
        if shape.kind == "divisible":
            slot = 0
            for output in shape.outputs:
                if output.term is None:
                    compiled.measure_slot.append(None)
                else:
                    compiled.measures.append(
                        compile_e_term(output.term, constants)
                    )
                    compiled.measure_slot.append(slot)
                    slot += 1
        elif shape.kind == "extreme":
            compiled.value_fn = compile_e_term(shape.extreme_value, constants)
        self._compiled[fn.name] = compiled
        return compiled

    # -- the AggregateEvaluator protocol --------------------------------------------

    def evaluate(
        self, function: AggregateFunction, args: list[object], ctx: EvalContext
    ) -> object:
        if function.native is not None:
            self._bump("native")
            return function.native(args, ctx.env.rows, ctx)

        compiled = self._compiled_shape(function)
        shape = compiled.shape
        bindings = dict(zip(function.params, args))
        probe_ctx = ctx.bind(bindings)

        for conjunct in shape.u_only:
            if not eval_cond(conjunct, probe_ctx):
                return empty_aggregate_result(shape.outputs)

        if shape.kind == "divisible":
            return self._eval_divisible(function, compiled, probe_ctx)
        if shape.kind == "nearest":
            return self._eval_nearest(function, compiled, probe_ctx)
        if shape.kind == "extreme":
            result = self._eval_extreme(function, compiled, args, probe_ctx)
            if result is not NotImplemented:
                return result
        return self._eval_fallback(function, compiled, bindings, ctx)

    # -- shared probe helpers ---------------------------------------------------

    def _cat_values(
        self, shape: AggregateShape, probe_ctx: EvalContext
    ) -> tuple[tuple, tuple]:
        eq_vals = tuple(
            eval_term(c.value_term, probe_ctx) for c in shape.eq_cats
        )
        neq_vals = tuple(
            eval_term(c.value_term, probe_ctx) for c in shape.neq_cats
        )
        return eq_vals, neq_vals

    @staticmethod
    def _group_matches(key: tuple, eq_vals: tuple, neq_vals: tuple) -> bool:
        ne = len(eq_vals)
        if key[:ne] != eq_vals:
            return False
        return all(key[ne + i] != v for i, v in enumerate(neq_vals))

    def _matching_groups(
        self,
        index: PartitionedIndex,
        shape: AggregateShape,
        probe_ctx: EvalContext,
    ) -> list:
        """Sub-indexes matching the probe's category constraints.

        With sharding active every logical category group is split into
        per-shard instances; probes walk shards in ascending id so the
        cross-shard answer merge (moments, nearest candidates, row
        concatenation) happens in one deterministic order.
        """
        eq_vals, neq_vals = self._cat_values(shape, probe_ctx)
        if self.shard_of is not None:
            if not neq_vals:
                groups = []
                for shard in range(self.num_shards):
                    group = index.probe((shard,) + eq_vals)
                    if group is not None:
                        groups.append(group)
                return groups
            return [
                group
                for key, group in index.groups.items()
                if self._group_matches(key[1:], eq_vals, neq_vals)
            ]
        if not neq_vals:
            group = index.probe(eq_vals)
            return [group] if group is not None else []
        return [
            group
            for key, group in index.groups.items()
            if self._group_matches(key, eq_vals, neq_vals)
        ]

    def _bounds(
        self, shape: AggregateShape, probe_ctx: EvalContext
    ) -> list[tuple[float, float]] | None:
        """Evaluate each range constraint to a closed [lo, hi] interval.

        Strict bounds are tightened to the adjacent float, which is
        exact for the values actually stored in the index.  Returns
        ``None`` when some interval is empty.
        """
        bounds: list[tuple[float, float]] = []
        for constraint in shape.ranges:
            lo = -_INF
            for bound in constraint.lowers:
                value = float(eval_term(bound.term, probe_ctx))
                if bound.strict:
                    value = math.nextafter(value, _INF)
                lo = max(lo, value)
            hi = _INF
            for bound in constraint.uppers:
                value = float(eval_term(bound.term, probe_ctx))
                if bound.strict:
                    value = math.nextafter(value, -_INF)
                hi = min(hi, value)
            if lo > hi:
                return None
            bounds.append((lo, hi))
        return bounds

    # -- divisible aggregates (Figure 8) -----------------------------------------

    def _ensure_div_index(
        self, fn: AggregateFunction, compiled: _CompiledShape
    ) -> PartitionedIndex:
        index = self._div_index.get(fn.name)
        if index is None:
            self._bump("build_divisible")
            shape = compiled.shape
            t0 = time.perf_counter()
            rows = self._filtered_rows(compiled)
            index = PartitionedIndex(
                rows,
                shape.cat_attrs,
                factory=lambda group: GroupAggIndex(
                    group,
                    shape.range_attrs,
                    compiled.measures,
                    cascade=self.cascade,
                ),
                row_insert=GroupAggIndex.insert,
                row_delete=GroupAggIndex.delete,
                shard_of=self.shard_of,
            )
            self._note_build(time.perf_counter() - t0, len(rows))
            self._div_index[fn.name] = index
        return index

    def _eval_divisible(
        self,
        fn: AggregateFunction,
        compiled: _CompiledShape,
        probe_ctx: EvalContext,
    ) -> object:
        shape = compiled.shape
        index = self._ensure_div_index(fn, compiled)
        self._bump("probe_divisible")

        groups = self._matching_groups(index, shape, probe_ctx)
        if not groups:
            return empty_aggregate_result(shape.outputs)
        bounds = self._bounds(shape, probe_ctx)
        if bounds is None:
            return empty_aggregate_result(shape.outputs)

        # merge per-group moments (divisibility makes this exact)
        merged = None
        for group in groups:
            moments = group.query(bounds)
            merged = (
                moments
                if merged is None
                else tuple(a.merge(b) for a, b in zip(merged, moments))
            )

        values = []
        for output, slot in zip(shape.outputs, compiled.measure_slot):
            if output.agg == "count":
                values.append(merged[0].count)
            else:
                values.append(merged[slot].finalize(output.agg))
        return finalize_outputs(shape.outputs, values)

    # -- nearest neighbour (Section 5.3.2) ----------------------------------------

    def _ensure_kd_index(
        self, fn: AggregateFunction, compiled: _CompiledShape
    ) -> PartitionedIndex:
        index = self._kd_index.get(fn.name)
        if index is None:
            self._bump("build_kdtree")
            shape = compiled.shape
            t0 = time.perf_counter()
            rows = self._filtered_rows(compiled)
            ax, ay = shape.nearest_attrs
            key_attr = self.key_attr

            def kd_insert(tree: KDTree, row) -> None:
                tree.insert((row[ax], row[ay]), row)

            def kd_delete(tree: KDTree, row) -> None:
                row_key = row[key_attr]
                if not tree.delete(
                    (row[ax], row[ay]),
                    lambda item: item[key_attr] == row_key,
                ):
                    raise KeyError(f"row {row_key!r} not in kd-tree")

            index = PartitionedIndex(
                rows,
                shape.cat_attrs,
                factory=lambda group: KDTree(
                    [(r[ax], r[ay]) for r in group], group
                ),
                row_insert=kd_insert,
                row_delete=kd_delete,
                shard_of=self.shard_of,
            )
            self._note_build(time.perf_counter() - t0, len(rows))
            self._kd_index[fn.name] = index
        return index

    def _nearest_candidate(
        self,
        fn: AggregateFunction,
        compiled: _CompiledShape,
        probe_ctx: EvalContext,
    ) -> tuple[tuple[float, float], object, tuple] | None:
        """Best accepted point over the retained trees this evaluator holds.

        The one shared candidate search behind the flat evaluator and
        the scoped (probe-split) worker evaluator, so predicate handling
        and the ``(dist², key)`` tie-break can never drift between them.
        Returns ``(center, best_row, best)`` -- with ``best_row`` None
        when no tree held an accepted point -- or ``None`` when the
        range bounds are empty (nothing can match anywhere).
        """
        shape = compiled.shape
        index = self._ensure_kd_index(fn, compiled)
        self._bump("probe_kdtree")

        groups = self._matching_groups(index, shape, probe_ctx)
        cx, cy = shape.nearest_centers
        center = (
            float(eval_term(cx, probe_ctx)),
            float(eval_term(cy, probe_ctx)),
        )
        bounds = self._bounds(shape, probe_ctx)
        if bounds is None:
            return None
        predicate = self._row_predicate(shape, bounds, probe_ctx)
        exclude = (
            None if predicate is None else (lambda row: not predicate(row))
        )
        key_attr = self.key_attr
        tie_key = lambda row: row[key_attr]  # noqa: E731

        best_row = None
        best = (_INF, None)
        for tree in groups:
            found = tree.nearest(center, exclude=exclude, tie_key=tie_key)
            if found is None:
                continue
            row, dist_sq = found
            candidate = (dist_sq, row[key_attr])
            if best_row is None or candidate < best:
                best_row, best = row, candidate
        return center, best_row, best

    def _eval_nearest(
        self,
        fn: AggregateFunction,
        compiled: _CompiledShape,
        probe_ctx: EvalContext,
    ) -> object:
        found = self._nearest_candidate(fn, compiled, probe_ctx)
        if found is None:
            return None
        _, best_row, best = found
        if best_row is None:
            return None
        return Record(best_row) if compiled.shape.returns_row else best[0]

    def _row_predicate(self, shape, bounds, probe_ctx):
        """Residual + range predicate for kD-tree candidate filtering."""
        checks = []
        if bounds:
            range_attrs = shape.range_attrs
            checks.append(
                lambda row: all(
                    lo <= row[attr] <= hi
                    for attr, (lo, hi) in zip(range_attrs, bounds)
                )
            )
        if shape.residual:
            residual = shape.residual

            def residual_check(row, _ctx=probe_ctx, _residual=residual):
                _ctx.bindings["e"] = row
                return all(eval_cond(c, _ctx) for c in _residual)

            checks.append(residual_check)
        if not checks:
            return None
        if len(checks) == 1:
            return checks[0]
        return lambda row: all(c(row) for c in checks)

    # -- extreme aggregates: sweep-line batches (Figure 9) -------------------------

    def _eval_extreme(
        self,
        fn: AggregateFunction,
        compiled: _CompiledShape,
        args: list[object],
        probe_ctx: EvalContext,
    ) -> object:
        batch = self._batches.get(fn.name)
        if batch is None:
            batch = self._build_extreme_batches(fn, compiled)
        signature = _args_signature(args, self.key_attr)
        if signature in batch:
            self._bump("probe_sweep")
            result = batch[signature]
            if result is None:
                return None
            value, row = result
            return Record(row) if compiled.shape.returns_row else value
        self._bump("sweep_miss")
        return NotImplemented  # dynamic args: caller falls back to scan

    def _build_extreme_batches(
        self, fn: AggregateFunction, compiled: _CompiledShape
    ) -> dict[tuple, object]:
        """Run the Figure-9 sweeps for every hinted call site of *fn*.

        Probes are grouped by (category values, range extents); each
        group with constant extents gets one sweep per source partition
        (per shard when sharding is active), and per-probe results merge
        across the partitions its eq/neq constraints select via
        ``(value, key)`` candidates, so the merge order -- and therefore
        the shard count -- can never change an answer.
        """
        batch: dict[tuple, object] = {}
        self._batches[fn.name] = batch
        self._bump("build_sweep")
        shape = compiled.shape
        key_attr = self.key_attr
        constants = self.registry.constants
        shard_of = self.shard_of

        sources = self._filtered_rows(compiled)
        partitions: dict[tuple, list] = {}
        for row in sources:
            key = tuple(row[a] for a in shape.cat_attrs)
            if shard_of is not None:
                key = (shard_of(row),) + key
            partitions.setdefault(key, []).append(row)

        ax, ay = shape.range_attrs  # classifier guarantees exactly 2 dims
        value_fn = compiled.value_fn
        part_data = {
            key: (
                [(r[ax], r[ay]) for r in rows],
                [value_fn(r) for r in rows],
                [r[key_attr] for r in rows],
                {r[key_attr]: r for r in rows},
            )
            for key, rows in partitions.items()
        }

        # collect probes per (eq_vals, neq_vals, extents) group
        groups: dict[tuple, list] = {}
        for hint, units in self._hints:
            if hint.function != fn.name:
                continue
            for unit in units:
                ctx = EvalContext(
                    env=self._env,
                    registry=self.registry,
                    agg_eval=self,
                    rng=_no_random,
                    bindings={hint.unit_param: unit},
                    unit=unit,
                )
                arg_values = [eval_term(t, ctx) for t in hint.arg_terms]
                probe_ctx = ctx.bind(dict(zip(fn.params, arg_values)))
                skip = False
                for conjunct in shape.u_only:
                    if not eval_cond(conjunct, probe_ctx):
                        skip = True
                        break
                signature = _args_signature(arg_values, key_attr)
                if skip:
                    # u-only predicate failed: empty selection
                    batch[signature] = None
                    continue
                bounds = self._bounds(shape, probe_ctx)
                if bounds is None:
                    batch[signature] = None
                    continue
                (xlo, xhi), (ylo, yhi) = bounds
                rx = (xhi - xlo) / 2.0
                ry = (yhi - ylo) / 2.0
                center = ((xlo + xhi) / 2.0, (ylo + yhi) / 2.0)
                eq_vals, neq_vals = self._cat_values(shape, probe_ctx)
                group_key = (eq_vals, neq_vals, round(rx, 9), round(ry, 9))
                groups.setdefault(group_key, []).append((signature, center))

        kind = shape.extreme_kind
        sharded = shard_of is not None
        for (eq_vals, neq_vals, rx, ry), probes in groups.items():
            centers = [c for _, c in probes]
            merged: list = [None] * len(probes)
            for part_key, (xy, values, keys, by_key) in part_data.items():
                cat_key = part_key[1:] if sharded else part_key
                if not self._group_matches(cat_key, eq_vals, neq_vals):
                    continue
                results = sweep_arg_minmax(
                    xy, values, keys, centers, rx, ry, kind
                )
                for i, res in enumerate(results):
                    if res is None:
                        continue
                    value, key = res
                    candidate = (value, key) if kind == "min" else (-value, key)
                    if merged[i] is None or candidate < merged[i][0]:
                        merged[i] = (candidate, by_key[key])
            for (signature, _), entry in zip(probes, merged):
                if entry is None:
                    batch[signature] = None
                else:
                    (ordered_value, _), row = entry
                    value = ordered_value if kind == "min" else -ordered_value
                    batch[signature] = (value, row)
        return batch

    # -- fallback: partitioned scan -------------------------------------------------

    def _ensure_row_index(
        self, fn: AggregateFunction, compiled: _CompiledShape
    ) -> PartitionedIndex:
        index = self._row_index.get(fn.name)
        if index is None:
            self._bump("build_rows")
            t0 = time.perf_counter()
            rows = self._filtered_rows(compiled)
            index = PartitionedIndex(
                rows,
                compiled.shape.cat_attrs,
                factory=list,
                shard_of=self.shard_of,
            )
            self._note_build(time.perf_counter() - t0, len(rows))
            self._row_index[fn.name] = index
        return index

    def _eval_fallback(
        self,
        fn: AggregateFunction,
        compiled: _CompiledShape,
        bindings: dict[str, object],
        ctx: EvalContext,
    ) -> object:
        shape = compiled.shape
        index = self._ensure_row_index(fn, compiled)
        self._bump("probe_scan")
        probe_ctx = ctx.bind(bindings)
        groups = self._matching_groups(index, shape, probe_ctx)
        if not groups:
            return empty_aggregate_result(shape.outputs)
        rows: list = []
        for group in groups:
            rows.extend(group)
        return evaluate_aggregate_scan(fn.spec, bindings, rows, ctx)

    def _filtered_rows(self, compiled: _CompiledShape) -> list:
        rows = self._env.rows
        if compiled.build_filter is None:
            return rows
        build_filter = compiled.build_filter
        return [row for row in rows if build_filter(row)]


def _args_signature(args: Sequence[object], key_attr: str) -> tuple:
    """Hashable signature of aggregate-call arguments.

    Unit rows are identified by their key; vectors by their components.
    """
    out = []
    for arg in args:
        if isinstance(arg, Mapping):
            out.append(("row", arg[key_attr]))
        elif hasattr(arg, "items") and not isinstance(arg, (str, bytes)):
            out.append(("vec", tuple(arg.items)))
        else:
            out.append(arg)
    return tuple(out)


def _no_random(row: Mapping[str, object], i: int) -> int:
    raise RuntimeError(
        "Random is not available while precomputing sweep batches; "
        "hinted call arguments must be deterministic unit terms"
    )


def collect_call_hints(analysis, script_unit_param_by_fn=None) -> list[CallHint]:
    """Derive :class:`CallHint` objects from a script analysis.

    A call site qualifies when every argument term references only the
    enclosing function's unit parameter and registry constants -- i.e.
    the arguments are computable before the decision phase runs.
    """
    from ..algebra.shapes import names_in, refs_random

    hints = []
    for call in analysis.aggregate_calls:
        unit_param = (
            script_unit_param_by_fn.get(call.enclosing, "u")
            if script_unit_param_by_fn
            else "u"
        )
        ok = True
        for term in call.args:
            names = names_in(term)
            if not (names <= {unit_param} or all(n.startswith("_") or n == unit_param for n in names)):
                ok = False
                break
            if refs_random(term):
                ok = False
                break
        if ok:
            hints.append(
                CallHint(
                    function=call.function,
                    unit_param=unit_param,
                    arg_terms=call.args,
                )
            )
    return hints
