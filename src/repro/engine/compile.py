"""Compilation of e-only terms and conditions to plain row functions.

Index construction evaluates measure terms and build-time filters once
per environment row (Section 5.3's "push selection on player and/or
unit type", Figure 8's leaf aggregates).  Going through the generic
:func:`~repro.sgl.evalterm.eval_term` machinery there would pay context
and dispatch overhead n times per tick, so terms that reference only
``e`` and registry constants are compiled -- once per aggregate function
-- into closures over plain row dicts.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..sgl import ast
from ..sgl.errors import SglNameError, SglTypeError
from ..sgl.evalterm import MATH_BUILTINS

RowFn = Callable[[Mapping[str, object]], object]
RowPred = Callable[[Mapping[str, object]], bool]

_BINOPS: dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "%": lambda a, b: a % b,
}

_COMPARES: dict[str, Callable[[object, object], bool]] = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compile_e_term(term: ast.Term, constants: Mapping[str, object]) -> RowFn:
    """Compile an e-only term into ``row -> value``.

    Raises :class:`SglTypeError` if the term references anything other
    than ``e``, registry constants, or math builtins -- callers are
    expected to have classified the term as e-only already.
    """
    if isinstance(term, ast.Num):
        value = term.value
        return lambda row: value
    if isinstance(term, ast.Str):
        text = term.value
        return lambda row: text
    if isinstance(term, ast.Name):
        if term.ident == "e":
            return lambda row: row
        if term.ident in constants:
            constant = constants[term.ident]
            return lambda row: constant
        raise SglNameError(f"non-e name {term.ident!r} in e-only term")
    if isinstance(term, ast.FieldAccess):
        base = term.base
        attr = term.attr
        if isinstance(base, ast.Name) and base.ident == "e":
            return lambda row: row[attr]
        raise SglTypeError(f"unsupported field access base {base!r}")
    if isinstance(term, ast.BinOp):
        op = _BINOPS.get(term.op)
        if op is None:
            raise SglTypeError(f"unknown operator {term.op!r}")
        left = compile_e_term(term.left, constants)
        right = compile_e_term(term.right, constants)
        return lambda row: op(left(row), right(row))
    if isinstance(term, ast.Neg):
        inner = compile_e_term(term.operand, constants)
        return lambda row: -inner(row)
    if isinstance(term, ast.Call):
        fn = MATH_BUILTINS.get(term.name)
        if fn is None:
            raise SglTypeError(
                f"{term.name!r} is not a math builtin; e-only terms cannot "
                "contain aggregates or Random"
            )
        arg_fns = [compile_e_term(a, constants) for a in term.args]
        return lambda row: fn(*(f(row) for f in arg_fns))
    raise SglTypeError(f"cannot compile term {term!r}")


def compile_e_cond(cond: ast.Cond, constants: Mapping[str, object]) -> RowPred:
    """Compile an e-only condition into ``row -> bool``."""
    if isinstance(cond, ast.BoolLit):
        value = cond.value
        return lambda row: value
    if isinstance(cond, ast.Compare):
        op = _COMPARES.get(cond.op)
        if op is None:
            raise SglTypeError(f"unknown comparison {cond.op!r}")
        left = compile_e_term(cond.left, constants)
        right = compile_e_term(cond.right, constants)
        return lambda row: op(left(row), right(row))
    if isinstance(cond, ast.And):
        left = compile_e_cond(cond.left, constants)
        right = compile_e_cond(cond.right, constants)
        return lambda row: left(row) and right(row)
    if isinstance(cond, ast.Or):
        left = compile_e_cond(cond.left, constants)
        right = compile_e_cond(cond.right, constants)
        return lambda row: left(row) or right(row)
    if isinstance(cond, ast.Not):
        inner = compile_e_cond(cond.operand, constants)
        return lambda row: not inner(row)
    raise SglTypeError(f"cannot compile condition {cond!r}")


def compile_e_filter(
    conjuncts: tuple[ast.Cond, ...], constants: Mapping[str, object]
) -> RowPred | None:
    """Compile a conjunction of e-only conditions; ``None`` when empty."""
    if not conjuncts:
        return None
    preds = [compile_e_cond(c, constants) for c in conjuncts]
    if len(preds) == 1:
        return preds[0]
    return lambda row: all(p(row) for p in preds)
