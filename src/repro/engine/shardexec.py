"""Worker-process side of the sharded tick pipeline: stateful replicas.

``parallelism="processes"`` runs the decision stage of each shard in a
pool of long-lived worker processes.  Workers cannot share the engine's
in-memory state, so the protocol is explicitly message-shaped -- the
same shape a distributed (multi-host) engine would use.  Since PR 3 the
workers are **stateful replica holders** rather than stateless RPC
targets:

* **at pool start** each worker builds its own game state -- registry,
  compiled scripts, decision runners, and a private
  :class:`~repro.engine.evaluator.IndexedEvaluator` -- from a picklable
  *game factory* (a module-level callable returning a
  :class:`WorkerGame`).  Heavy unpicklable objects (compiled closures,
  index structures) never cross the process boundary;
* **per tick** the coordinator ships one *update blob* -- either a
  ``SNAPSHOT`` (full row broadcast, stamping a new replica epoch) or an
  epoch-chained ``DELTA``
  (:class:`~repro.env.sharding.ReplicaDelta`: deleted keys, sparse
  attribute patches, appended inserts, an order patch only when the row
  order is unpredictable) -- plus the ids of the shards the worker
  decides this tick.  The worker applies the update to its retained
  replica of ``E``, feeds the same delta to its evaluator's
  ``index_maintenance="incremental"`` paths (so per-shard index
  instances survive across ticks instead of rebuilding from scratch),
  runs its shards' decisions against the full replica -- aggregate
  queries range over all of ``E`` regardless of who asks -- and returns
  plain effect rows, :class:`~repro.engine.effects.AoeRecord` tuples,
  and an **epoch ack** the coordinator verifies;
* **fault paths** degrade to snapshots, never to wrong answers: a
  worker holding the wrong epoch replies ``STALE`` and is re-sent a
  snapshot in the same tick; a worker that died is respawned and
  re-seeded with a snapshot; a shard-count change invalidates every
  replica epoch, forcing a full re-broadcast.

Determinism: the per-tick random function is counter-mode
(``TickRandom`` is a pure function of seed, tick, unit key, and draw
index), every evaluator merge tie-breaks on unit keys, and the replica
reproduces the coordinator's flat row order exactly (the order patch
above), so worker answers are bit-identical to the serial engine's no
matter how shards are scheduled, which workers hold which replicas, or
whether a tick arrived as a delta or a snapshot.  Worker-side
incremental maintenance is a per-process memory/time optimisation that
cannot change trajectories.
"""

from __future__ import annotations

import pickle
import traceback
from dataclasses import dataclass
from typing import Callable, Mapping

from ..env.schema import Schema
from ..env.sharding import (
    NO_REPLICA,
    UPDATE_DELTA,
    UPDATE_SNAPSHOT,
    ReplicaDelta,
    ReplicaTable,
    StaleReplicaError,
    delta_blob,
    make_sharder,
    snapshot_blob,
)
from ..env.table import EnvironmentTable, TableDelta
from ..serve.transport import PipeTransport, Transport
from ..sgl import ast
from ..sgl.analysis import analyze_script
from ..sgl.builtins import FunctionRegistry
from ..sgl.evalterm import EvalContext
from .decision import DecisionRunner
from .effects import AoeRecord
from .evaluator import IndexedEvaluator, NaiveEvaluator, collect_call_hints
from .rng import TickRandom

#: Message tags, coordinator -> worker.
MSG_TICK = "tick"
MSG_STOP = "stop"
MSG_SET_EPOCH = "set_epoch"  # fault-injection hook (tests/chaos drills)

#: Reply tags, worker -> coordinator.
REPLY_OK = "ok"
REPLY_STALE = "stale"
REPLY_ERROR = "error"
REPLY_EPOCH = "epoch"


@dataclass
class WorkerGame:
    """Everything a worker process needs to run decisions.

    Built inside the worker by the game factory, so none of it is ever
    pickled.  *selector* names the row attribute whose value picks the
    unit's script (e.g. ``"unittype"``).
    """

    schema: Schema
    registry: FunctionRegistry
    scripts: dict[str, ast.Script]
    selector: str = "unittype"


#: A picklable, module-level callable producing the worker's game state.
GameFactory = Callable[[], WorkerGame]

#: The shard configuration a replica's index layout depends on;
#: shipped inside every snapshot so workers re-shard when it changes.
ShardConf = tuple  # (shard_by, num_shards, spatial_extent)


@dataclass
class _Compiled:
    runner: DecisionRunner
    hints: list


class _WorkerState:
    """Per-process engine fragment: replica, runners, evaluator, rng."""

    def __init__(self, game: WorkerGame, payload: Mapping[str, object]):
        self.game = game
        self.indexed = payload["mode"] == "indexed"
        self.optimize_aoe = bool(payload["optimize_aoe"])
        self.cascade = bool(payload["cascade"])
        self.rng = TickRandom(int(payload["seed"]), key_attr=game.schema.key)
        self.shard_conf: ShardConf = tuple(payload["shard_conf"])
        self._reshard(self.shard_conf)
        self._compiled: dict[str, _Compiled] = {}
        # the replica of E (row order, key -> row, epoch held) -- the
        # same holder-side protocol object the spectator replicas use
        self.replica = ReplicaTable(game.schema.key)

    # -- sharding / evaluator lifecycle ----------------------------------------

    def _reshard(self, shard_conf: ShardConf) -> None:
        """(Re)build the shard function and a fresh evaluator for it.

        The evaluator's retained per-shard index instances are keyed by
        shard id, so a shard-count change invalidates all of them; the
        caller always pairs this with a snapshot.
        """
        shard_by, num_shards, extent = shard_conf
        self.shard_conf = (shard_by, num_shards, extent)
        self.shard_of = make_sharder(shard_by, num_shards, extent=extent)
        key_attr = self.game.schema.key
        if self.indexed:
            # maintenance="incremental": replica deltas patch the
            # retained per-shard structures; snapshot ticks (delta=None)
            # discard and lazily rebuild, exactly like the parent engine.
            self.evaluator = IndexedEvaluator(
                self.game.registry,
                cascade=self.cascade,
                key_attr=key_attr,
                maintenance="incremental",
                shard_of=self.shard_of if num_shards > 1 else None,
                num_shards=num_shards,
            )
        else:
            self.evaluator = NaiveEvaluator()

    # -- replica maintenance ----------------------------------------------------

    def apply_snapshot(
        self, epoch: int, rows: list[dict[str, object]], shard_conf: ShardConf
    ) -> None:
        if tuple(shard_conf) != self.shard_conf:
            self._reshard(tuple(shard_conf))
        elif self.indexed:
            # same shard layout, but the retained structures describe the
            # replaced replica rows: drop them (they rebuild on probe)
            self.evaluator.reshard(
                self.shard_of if self.shard_conf[1] > 1 else None,
                self.shard_conf[1],
            )
        self.replica.apply_snapshot(epoch, rows)

    def apply_delta(self, rd: ReplicaDelta) -> TableDelta:
        return self.replica.apply_delta(rd)

    # -- script compilation ------------------------------------------------------

    def compiled_for(self, selector_value: object) -> _Compiled:
        entry = self._compiled.get(selector_value)
        if entry is None:
            script = self.game.scripts[selector_value]
            runner = DecisionRunner(
                script,
                self.game.registry,
                index_actions=self.indexed,
                defer_aoe=self.indexed and self.optimize_aoe,
            )
            analysis = analyze_script(
                script, self.game.registry, self.game.schema
            )
            unit_params = {
                fn.name: fn.params[0] for fn in script.functions.values()
            }
            entry = _Compiled(
                runner=runner,
                hints=collect_call_hints(analysis, unit_params),
            )
            self._compiled[selector_value] = entry
        return entry

    # -- the decision stage ------------------------------------------------------

    def decide(
        self,
        tick: int,
        shard_ids: list[int],
        delta: TableDelta | None,
    ) -> list[tuple[int, list[dict[str, object]], list[AoeRecord]]]:
        """Run the decision stage for the given shards over the replica.

        *delta* is this tick's replica change set (``None`` on snapshot
        ticks); it drives the evaluator's incremental maintenance so
        per-shard index instances survive across ticks.  Results come
        back per shard (tagged with the shard id) so the parent's
        ⊕-merge keeps its ascending-shard-id order.
        """
        game = self.game
        rows = self.replica.rows
        env = EnvironmentTable(game.schema)
        env.rows.extend(rows)
        self.rng.advance(tick)

        # the replica's flat row order induces each shard's row order,
        # exactly as the coordinator's ShardedEnvironment partition does
        wanted = set(shard_ids)
        shard_of = self.shard_of
        selector = game.selector
        shard_groups: dict[int, dict[object, list]] = {
            shard_id: {} for shard_id in shard_ids
        }
        for row in rows:
            shard_id = shard_of(row)
            if shard_id in wanted:
                shard_groups[shard_id].setdefault(row[selector], []).append(
                    row
                )

        by_key = None
        if self.indexed:
            hint_pairs = []
            for units_by_script in shard_groups.values():
                for selector_value, units in units_by_script.items():
                    for hint in self.compiled_for(selector_value).hints:
                        hint_pairs.append((hint, units))
            self.evaluator.begin_tick(env, hint_pairs, delta=delta)
            by_key = (
                self.replica.by_key
                if self.replica.by_key is not None
                else env.by_key()
            )

        rng = self.rng
        registry = game.registry
        evaluator = self.evaluator

        def ctx_factory(unit: Mapping[str, object]) -> EvalContext:
            return EvalContext(
                env=env,
                registry=registry,
                agg_eval=evaluator,
                rng=rng,
                bindings={},
                unit=unit,
            )

        out: list[tuple[int, list[dict[str, object]], list[AoeRecord]]] = []
        for shard_id in shard_ids:
            effect_rows: list[dict[str, object]] = []
            aoe_records: list[AoeRecord] = []
            for selector_value, units in shard_groups[shard_id].items():
                runner = self.compiled_for(selector_value).runner
                for unit in units:
                    runner.run_unit(
                        unit, ctx_factory, by_key, effect_rows, aoe_records
                    )
            out.append((shard_id, effect_rows, aoe_records))
        return out


def _replica_worker_main(conn, factory: GameFactory, payload: dict) -> None:
    """Worker process loop: apply updates, decide shards, ack epochs."""
    transport: Transport = PipeTransport(conn)
    try:
        state = _WorkerState(factory(), payload)
    except BaseException:  # pragma: no cover - init failures surface on recv
        transport.send((REPLY_ERROR, traceback.format_exc()))
        transport.close()
        return
    while True:
        try:
            msg = transport.recv()
        except EOFError:  # coordinator vanished
            break
        tag = msg[0]
        if tag == MSG_STOP:
            break
        if tag == MSG_SET_EPOCH:  # fault injection: pretend to drift
            state.replica.epoch = msg[1]
            transport.send((REPLY_EPOCH, state.replica.epoch))
            continue
        _, blob, tick, shard_ids = msg
        try:
            update = pickle.loads(blob)
            if update[0] == UPDATE_SNAPSHOT:
                _, epoch, rows, shard_conf = update
                state.apply_snapshot(epoch, rows, shard_conf)
                delta = None
            else:
                delta = state.apply_delta(update[1])
            results = state.decide(tick, shard_ids, delta)
            transport.send((REPLY_OK, state.replica.epoch, results))
        except StaleReplicaError:
            # replica cannot absorb this update; ask for a snapshot.
            # Drop the replica: a failed delta may have half-applied.
            state.replica.invalidate()
            transport.send((REPLY_STALE, state.replica.epoch))
        except BaseException:
            transport.send((REPLY_ERROR, traceback.format_exc()))
    transport.close()


@dataclass
class _WorkerHandle:
    process: object
    transport: Transport
    #: Coordinator's belief of the worker's replica epoch.
    epoch: int = NO_REPLICA


@dataclass
class PoolStats:
    """Broadcast/fault counters a :class:`ReplicaWorkerPool` accumulates."""

    delta_broadcasts: int = 0
    snapshot_broadcasts: int = 0
    stale_snapshots: int = 0
    respawns: int = 0
    bytes_broadcast: int = 0
    ticks: int = 0
    last_tick_bytes: int = 0


class ReplicaWorkerPool:
    """A pipe-addressed pool of stateful replica-holding workers.

    Unlike an executor pool, messages are addressed to *specific*
    workers -- replica state lives in the process, so the coordinator
    must know (and verify, via epoch acks) what each worker holds.
    Workers are addressed through the :class:`~repro.serve.transport`
    layer (here :class:`PipeTransport`; the spectator publisher speaks
    the same update blobs over :class:`SocketTransport`).
    """

    def __init__(
        self,
        factory: GameFactory,
        payload: dict,
        num_workers: int,
        mp_context,
    ):
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers}")
        self._factory = factory
        self._payload = payload
        self._ctx = mp_context
        self.stats = PoolStats()
        self.workers: list[_WorkerHandle] = [
            self._spawn() for _ in range(num_workers)
        ]

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_replica_worker_main,
            args=(child_conn, self._factory, self._payload),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(
            process=process, transport=PipeTransport(parent_conn)
        )

    def _respawn(self, index: int) -> _WorkerHandle:
        old = self.workers[index]
        try:
            old.transport.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if old.process.is_alive():  # pragma: no cover - defensive
            old.process.terminate()
        old.process.join(timeout=5)
        self.workers[index] = self._spawn()
        self.stats.respawns += 1
        return self.workers[index]

    # -- the per-tick broadcast -------------------------------------------------

    def run_tick(
        self,
        tick: int,
        epoch: int,
        bundles: list[tuple[int, list[int]]],
        delta: ReplicaDelta | None,
        snapshot: Callable[[], bytes],
    ) -> dict[int, tuple[list[dict[str, object]], list[AoeRecord]]]:
        """One tick: update every bundled worker's replica, gather results.

        *bundles* pairs worker indexes with the shard ids they decide.
        *delta* (when not ``None``) is shipped to every worker whose
        acked epoch matches ``delta.base_epoch``; all others -- fresh,
        respawned, drifted, or after a shard-layout change -- get the
        *snapshot* blob (built lazily, pickled at most once per tick).
        Epoch acks are verified against *epoch*; a ``STALE`` reply or a
        dead worker falls back to the snapshot within the same tick.

        Returns ``{shard_id: (effect_rows, aoe_records)}``.
        """
        stats = self.stats
        blobs: dict[str, bytes] = {}

        def delta_bytes() -> bytes:
            if UPDATE_DELTA not in blobs:
                blobs[UPDATE_DELTA] = delta_blob(delta)
            return blobs[UPDATE_DELTA]

        def snapshot_bytes() -> bytes:
            if UPDATE_SNAPSHOT not in blobs:
                blobs[UPDATE_SNAPSHOT] = snapshot()
            return blobs[UPDATE_SNAPSHOT]

        tick_bytes = 0
        sent: list[tuple[int, list[int]]] = []
        for worker_index, shard_ids in bundles:
            if not shard_ids:
                continue
            worker = self.workers[worker_index]
            use_delta = (
                delta is not None and worker.epoch == delta.base_epoch
            )
            blob = delta_bytes() if use_delta else snapshot_bytes()
            try:
                worker.transport.send((MSG_TICK, blob, tick, shard_ids))
            except (BrokenPipeError, OSError):
                worker = self._respawn(worker_index)
                use_delta = False  # a fresh worker holds no replica
                blob = snapshot_bytes()
                try:
                    worker.transport.send((MSG_TICK, blob, tick, shard_ids))
                except (BrokenPipeError, OSError) as exc:
                    raise RuntimeError(
                        "shard worker died again immediately after its "
                        "respawn; the game factory likely fails "
                        "persistently"
                    ) from exc
            # counters record *delivered* updates: a send that died does
            # not inflate delta_broadcasts for a blob nobody received
            if use_delta:
                stats.delta_broadcasts += 1
            else:
                stats.snapshot_broadcasts += 1
            tick_bytes += len(blob)
            sent.append((worker_index, shard_ids))

        def snapshot_roundtrip(
            worker_index: int, shard_ids: list[int], *, respawned: bool
        ):
            """Snapshot-feed one worker and await its reply.

            A pipe failure respawns the worker and retries once
            (*respawned* bounds the recursion); a worker that dies again
            immediately after its respawn gives up with the protocol's
            informative error, not a bare pipe exception.
            """
            nonlocal tick_bytes
            worker = self.workers[worker_index]
            blob = snapshot_bytes()
            stats.snapshot_broadcasts += 1
            tick_bytes += len(blob)
            try:
                worker.transport.send((MSG_TICK, blob, tick, shard_ids))
                return worker.transport.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                if respawned:
                    raise RuntimeError(
                        "shard worker died again immediately after its "
                        "respawn; the game factory likely fails "
                        "persistently"
                    ) from exc
                self._respawn(worker_index)
                return snapshot_roundtrip(
                    worker_index, shard_ids, respawned=True
                )

        out: dict[int, tuple[list, list]] = {}
        for worker_index, shard_ids in sent:
            try:
                reply = self.workers[worker_index].transport.recv()
            except (EOFError, OSError):
                # the worker died after its update was sent: respawn and
                # rejoin it from a snapshot within the same tick
                self._respawn(worker_index)
                reply = snapshot_roundtrip(
                    worker_index, shard_ids, respawned=True
                )
            if reply[0] == REPLY_STALE:
                stats.stale_snapshots += 1
                reply = snapshot_roundtrip(
                    worker_index, shard_ids, respawned=False
                )
            if reply[0] == REPLY_ERROR:
                raise RuntimeError(f"shard worker failed:\n{reply[1]}")
            if reply[0] != REPLY_OK:  # pragma: no cover - protocol bug
                raise RuntimeError(f"unexpected worker reply {reply[0]!r}")
            _, acked, results = reply
            if acked != epoch:
                raise RuntimeError(
                    f"worker {worker_index} acked epoch {acked}, "
                    f"coordinator expected {epoch}"
                )
            self.workers[worker_index].epoch = acked
            for shard_id, effect_rows, aoe_records in results:
                out[shard_id] = (effect_rows, aoe_records)

        stats.bytes_broadcast += tick_bytes
        stats.ticks += 1
        stats.last_tick_bytes = tick_bytes
        return out

    def debug_set_worker_epoch(self, worker_index: int, epoch: int) -> int:
        """Fault injection: force a worker's *actual* replica epoch.

        The coordinator's belief (``workers[i].epoch``) is left alone,
        so the next delta broadcast reaches a genuinely drifted worker
        -- the STALE/snapshot fallback path a chaos drill wants to see.
        """
        worker = self.workers[worker_index]
        worker.transport.send((MSG_SET_EPOCH, epoch))
        reply = worker.transport.recv()
        if reply[0] != REPLY_EPOCH:  # pragma: no cover - protocol bug
            raise RuntimeError(f"unexpected reply {reply[0]!r}")
        return reply[1]

    def close(self) -> None:
        for worker in self.workers:
            try:
                worker.transport.send((MSG_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            worker.process.join(timeout=5)
            if worker.process.is_alive():  # pragma: no cover - stuck worker
                worker.process.terminate()
                worker.process.join(timeout=5)
            try:
                worker.transport.close()
            except OSError:  # pragma: no cover - already closed
                pass
