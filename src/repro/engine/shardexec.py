"""Worker-process side of the sharded tick pipeline: stateful replicas.

``parallelism="processes"`` runs the decision stage of each shard in a
pool of long-lived worker processes.  Workers cannot share the engine's
in-memory state, so the protocol is explicitly message-shaped -- and
since PR 5 it really is distributed: the pool speaks through the
:class:`~repro.serve.transport.Transport` abstraction, so the same
addressed request/reply protocol runs over same-host pipes
(:class:`~repro.serve.transport.PipeTransport`) *or* TCP sockets
(:class:`~repro.serve.transport.SocketTransport`) to remote decision
workers started with ``python -m repro.engine.shardexec --listen
HOST:PORT``.  Unlike the spectator publisher's fire-and-forget feed,
every worker message is addressed and every tick is acknowledged with
the worker's replica epoch, which the coordinator verifies.

Workers are **stateful replica holders** rather than stateless RPC
targets:

* **at session start** each worker builds its own game state --
  registry, compiled scripts, decision runners, and a private
  :class:`~repro.engine.evaluator.IndexedEvaluator` -- from a picklable
  *game factory* (a module-level callable returning a
  :class:`WorkerGame`; remote workers import it by reference, so both
  hosts must run the same code).  Heavy unpicklable objects (compiled
  closures, index structures) never cross the process boundary;
* **per tick** the coordinator ships one *update blob* -- a
  ``SNAPSHOT`` (full row broadcast, stamping a new replica epoch), a
  shard-``SCOPED_SNAPSHOT`` (see the probe split below), or an
  epoch-chained ``DELTA``
  (:class:`~repro.env.sharding.ReplicaDelta`) -- plus the ids of the
  shards the worker decides this tick.  The worker applies the update
  to its retained replica of ``E``, feeds the same delta to its
  evaluator's ``index_maintenance="incremental"`` paths, runs its
  shards' decisions, and returns plain effect rows,
  :class:`~repro.engine.effects.AoeRecord` tuples, and an **epoch ack**
  the coordinator verifies;
* **fault paths** degrade to snapshots, never to wrong answers: a
  worker holding the wrong epoch replies ``STALE`` and is re-sent a
  snapshot in the same tick; a local worker that died is respawned; a
  remote worker whose connection dropped is *reconnected* (the listener
  accepts a fresh session, which always starts replica-less) -- both
  rejoin from a snapshot within the tick; a shard-count change
  invalidates every replica epoch, forcing a full re-broadcast.

**The per-shard probe split** (``worker_scope="shards"``): by default
every worker keeps a full replica of ``E`` (aggregate queries range
over all of ``E`` regardless of who asks), which duplicates both the
broadcast bytes and the index builds once per worker.  Scoped workers
instead hold only *their shards'* rows and per-shard index instances.
A probe that provably touches only owned data -- its range window lies
inside the owned spatial strips, or its nearest candidate is strictly
closer than any unowned strip could be -- is answered locally from the
scoped structures; every other probe (and any action that needs an
unowned row, e.g. a ``FireAt`` across a strip boundary) is *forwarded*
mid-tick to the coordinator over the same transport (``REQ_EVAL``) and
answered there against the full environment through exactly the serial
engine's code paths.  Either way the answer is the flat engine's
answer, so scoped trajectories stay bit-identical while each update
row is shipped to exactly one worker instead of all of them.

Determinism: the per-tick random function is counter-mode
(``TickRandom`` is a pure function of seed, tick, unit key, and draw
index), every evaluator merge tie-breaks on unit keys, and the replica
reproduces the coordinator's flat row order exactly, so worker answers
are bit-identical to the serial engine's no matter how shards are
scheduled, which workers hold which replicas, whether a tick arrived as
a delta or a snapshot, or whether a probe was answered locally or
forwarded.  The transports carry pickles, so remote workers are for
trusted networks only (the frame guard protects liveness, not unpickle
safety).
"""

from __future__ import annotations

import math
import pickle
import time
import traceback
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..env.schema import Schema
from ..env.sharding import (
    NO_REPLICA,
    UPDATE_SCOPED_SNAPSHOT,
    UPDATE_SNAPSHOT,
    ReplicaDelta,
    ReplicaTable,
    StaleReplicaError,
    make_sharder,
)
from ..env.table import EnvironmentTable, TableDelta
from ..obs import NULL_REGISTRY, TID_WORKER_BASE, RegistryStats
from ..serve.transport import (
    DEFAULT_MAX_FRAME,
    PipeTransport,
    SocketTransport,
    Transport,
)
from ..sgl import ast
from ..sgl.analysis import analyze_script
from ..sgl.builtins import FunctionRegistry
from ..sgl.errors import SglNameError
from ..sgl.evalterm import EvalContext, eval_cond, eval_term
from ..sgl.values import Record
from .decision import DecisionRunner, apply_key_target
from .effects import AoeRecord
from .evaluator import (
    IndexedEvaluator,
    NaiveEvaluator,
    collect_call_hints,
    empty_aggregate_result,
)
from .rng import TickRandom

#: Message tags, coordinator -> worker.
MSG_INIT = "init"  # first message of a remote session: (factory, payload)
MSG_TICK = "tick"
MSG_STOP = "stop"
MSG_SET_EPOCH = "set_epoch"  # fault-injection hook (tests/chaos drills)
MSG_DROP = "drop"  # fault-injection hook: vanish without replying

#: Reply tags, worker -> coordinator.
REPLY_READY = "ready"
REPLY_OK = "ok"
REPLY_STALE = "stale"
REPLY_ERROR = "error"
REPLY_EPOCH = "epoch"

#: Mid-tick request/reply, worker -> coordinator -> worker: a scoped
#: worker forwarding a probe or action it cannot answer locally.
REQ_EVAL = "eval"
REPLY_EVAL = "eval_ok"
REPLY_EVAL_ERROR = "eval_error"

_INF = float("inf")
_MISS = object()


@dataclass(frozen=True)
class WorkerEndpoint:
    """A remote decision worker's listening address."""

    host: str
    port: int

    @classmethod
    def parse(cls, value: object) -> "WorkerEndpoint":
        """Accept ``"host:port"`` strings, ``(host, port)`` pairs, or an
        existing endpoint."""
        if isinstance(value, WorkerEndpoint):
            return value
        if isinstance(value, str):
            host, sep, port = value.rpartition(":")
            if not sep or not host or not port.isdigit():
                raise ValueError(
                    f"worker endpoint {value!r} is not of the form HOST:PORT"
                )
            return cls(host, int(port))
        try:
            host, port = value  # type: ignore[misc]
        except (TypeError, ValueError):
            raise ValueError(
                f"worker endpoint {value!r} is not of the form HOST:PORT"
            ) from None
        return cls(str(host), int(port))

    @property
    def address(self) -> tuple[str, int]:
        return (self.host, self.port)


@dataclass
class WorkerGame:
    """Everything a worker process needs to run decisions.

    Built inside the worker by the game factory, so none of it is ever
    pickled.  *selector* names the row attribute whose value picks the
    unit's script (e.g. ``"unittype"``).
    """

    schema: Schema
    registry: FunctionRegistry
    scripts: dict[str, ast.Script]
    selector: str = "unittype"


#: A picklable, module-level callable producing the worker's game state.
GameFactory = Callable[[], WorkerGame]

#: The shard configuration a replica's index layout depends on;
#: shipped inside every snapshot so workers re-shard when it changes.
ShardConf = tuple  # (shard_by, num_shards, spatial_extent)

#: A worker's mid-tick escape hatch: ``remote(kind, name, args, unit)``
#: where kind is "aggregate" or "action" and *unit* is the performing
#: unit's row (the coordinator re-binds it as the evaluation context's
#: unit, so unit-keyed constructs like single-arg ``Random(i)`` resolve
#: identically to the serial engine); answered by the coordinator.
RemoteEval = Callable[[str, str, list, object], object]


# ---------------------------------------------------------------------------
# The scoped (probe-split) evaluation layer
# ---------------------------------------------------------------------------


class ScopedEvaluator(IndexedEvaluator):
    """Index-backed evaluation over a shard-scoped replica of ``E``.

    The replica (and therefore every retained index instance) holds only
    the rows of the worker's owned shards.  A probe is answered locally
    only when it *provably* cannot touch unowned rows:

    * a range-windowed probe whose window on the sharding axis maps --
      through the exact same ``int(x / width)`` arithmetic the spatial
      sharder uses, which is monotone in ``x`` -- entirely into owned
      strips;
    * a nearest-neighbour probe whose best owned candidate is strictly
      closer than the (conservatively shrunk) distance to the nearest
      unowned strip, so no unowned point can beat *or tie* it.

    Everything else -- global aggregates, boundary windows, hashed
    (non-spatial) shard keys, native aggregates -- is forwarded to the
    coordinator, which answers from the full environment through the
    serial engine's own code paths.  Local or forwarded, the answer is
    bit-identical to the flat engine's.

    Forwarded answers for probes that are pure functions of their
    category values and range bounds (residual-free divisible/extreme
    shapes -- e.g. a global per-player count) are memoised per tick, so
    a thousand units asking the same global question cost one round
    trip, not a thousand.
    """

    def __init__(
        self,
        registry: FunctionRegistry,
        *,
        scope: Iterable[int],
        shard_conf: ShardConf,
        remote: RemoteEval,
        x_attr: str = "posx",
        **kwargs,
    ):
        super().__init__(registry, **kwargs)
        self.scope = frozenset(scope)
        shard_by, conf_shards, extent = shard_conf
        self._conf_shards = int(conf_shards)
        self.owns_all = len(self.scope) >= self._conf_shards
        self._strip_width = (
            float(extent) / self._conf_shards
            if shard_by == "spatial" and extent
            else None
        )
        self._x_attr = x_attr
        self._remote = remote
        self._memo: dict[tuple, object] = {}
        # the unowned region, precomputed as merged [lo, hi] x-intervals
        # (scope is fixed for this evaluator's lifetime): the nearest
        # guard consults these per probe instead of rescanning strips
        self._unowned_intervals: list[tuple[float, float]] = []
        if self._strip_width is not None and not self.owns_all:
            width = self._strip_width
            top = self._conf_shards - 1
            run_start: int | None = None
            for s in range(self._conf_shards + 1):
                unowned = s <= top and s not in self.scope
                if unowned and run_start is None:
                    run_start = s
                elif not unowned and run_start is not None:
                    self._unowned_intervals.append(
                        (
                            -_INF if run_start == 0 else run_start * width,
                            _INF if s - 1 == top else s * width,
                        )
                    )
                    run_start = None

    def begin_tick(self, env, hints=(), delta=None) -> None:
        self._memo.clear()  # forwarded answers are valid for one state only
        super().begin_tick(env, hints, delta=delta)

    # -- probe dispatch -----------------------------------------------------------

    def evaluate(self, function, args, ctx):
        if self.owns_all:
            return super().evaluate(function, args, ctx)
        if function.native is not None:
            # native aggregates scan arbitrary rows; only the
            # coordinator holds them all
            return self._forward(function, args, None, None, ctx.unit)

        compiled = self._compiled_shape(function)
        shape = compiled.shape
        bindings = dict(zip(function.params, args))
        probe_ctx = ctx.bind(bindings)

        for conjunct in shape.u_only:
            if not eval_cond(conjunct, probe_ctx):
                return empty_aggregate_result(shape.outputs)

        if shape.kind == "nearest":
            return self._eval_nearest_scoped(
                function, compiled, args, probe_ctx
            )
        if self._window_is_owned(shape, probe_ctx):
            self._bump("scoped_local")
            if shape.kind == "divisible":
                return self._eval_divisible(function, compiled, probe_ctx)
            if shape.kind == "extreme":
                result = self._eval_extreme(
                    function, compiled, args, probe_ctx
                )
                if result is not NotImplemented:
                    return result
            return self._eval_fallback(function, compiled, bindings, ctx)
        return self._forward(function, args, shape, probe_ctx, ctx.unit)

    # -- locality proofs ----------------------------------------------------------

    def _window_is_owned(self, shape, probe_ctx) -> bool:
        """True when every row the probe can select lives in owned shards.

        Requires spatial sharding and a range constraint on the
        sharding axis.  The check maps the window's endpoints through
        the *same* clamp/truncate arithmetic the sharder applies to row
        coordinates; both float division by a positive constant and
        truncation toward zero are monotone, so every coordinate inside
        the window lands on a shard id between the endpoints' ids --
        the containment is exact, no epsilon needed.
        """
        width = self._strip_width
        if width is None:
            return False
        try:
            axis = shape.range_attrs.index(self._x_attr)
        except ValueError:
            return False  # no window on the sharding axis: may span all
        bounds = self._bounds(shape, probe_ctx)
        if bounds is None:
            return True  # empty selection everywhere: local == global
        xlo, xhi = bounds[axis]
        top = self._conf_shards - 1
        lo = 0 if math.isinf(xlo) else min(max(int(xlo / width), 0), top)
        hi = top if math.isinf(xhi) else min(max(int(xhi / width), 0), top)
        scope = self.scope
        return all(s in scope for s in range(lo, hi + 1))

    def _unowned_guard_sq(self, px: float) -> float:
        """A lower bound on the squared distance from ``px`` (on the
        sharding axis) to any point an *unowned* strip could hold.

        Shrunk by a relative margin so float fuzz at strip boundaries
        (a row whose ``x / width`` rounds across the edge) can only make
        the guard smaller -- a smaller guard forwards more probes, never
        claims a remote candidate impossible when one could exist.
        """
        best = _INF
        for lo, hi in self._unowned_intervals:
            if lo <= px <= hi:
                return 0.0
            d = lo - px if px < lo else px - hi
            if d < best:
                best = d
        if math.isinf(best):
            return _INF  # every shard is owned
        d = best - (abs(px) + best + 1.0) * 1e-9
        return d * d if d > 0.0 else 0.0

    def _eval_nearest_scoped(self, fn, compiled, args, probe_ctx):
        shape = compiled.shape
        if self._window_is_owned(shape, probe_ctx):
            self._bump("scoped_local")
            return self._eval_nearest(fn, compiled, probe_ctx)
        if self._strip_width is None:
            return self._forward(fn, args, None, None, probe_ctx.unit)

        # the sharding axis must be one of the tree's coordinates, or
        # the strip geometry says nothing about candidate distances
        ax, ay = shape.nearest_attrs
        if ax == self._x_attr:
            guard_coord = 0
        elif ay == self._x_attr:
            guard_coord = 1
        else:
            return self._forward(fn, args, None, None, probe_ctx.unit)

        # local candidate: the parent's own nearest search (shared
        # helper, so predicates and tie-breaks can never drift) over the
        # owned shards' trees
        found = self._nearest_candidate(fn, compiled, probe_ctx)
        if found is None:
            return None  # empty range selection matches nothing anywhere
        center, best_row, best = found
        # the owned candidate is the global answer only when nothing in
        # an unowned strip could lie strictly closer -- or tie, since a
        # tying remote row with a smaller key would win the tie-break
        if best_row is not None and best[0] < self._unowned_guard_sq(
            center[guard_coord]
        ):
            self._bump("scoped_local")
            return Record(best_row) if shape.returns_row else best[0]
        return self._forward(fn, args, None, None, probe_ctx.unit)

    # -- forwarding ---------------------------------------------------------------

    def _forward(self, function, args, shape, probe_ctx, unit):
        memo_key = None
        if (
            shape is not None
            and shape.kind in ("divisible", "extreme")
            and not shape.residual
        ):
            # the answer is a pure function of (category values, range
            # bounds): safe to share across every unit that asks the
            # same question of the same state
            try:
                eq_vals, neq_vals = self._cat_values(shape, probe_ctx)
                bounds = self._bounds(shape, probe_ctx)
                memo_key = (
                    function.name,
                    eq_vals,
                    neq_vals,
                    None if bounds is None else tuple(bounds),
                )
                hit = self._memo.get(memo_key, _MISS)
                if hit is not _MISS:
                    self._bump("forward_memo_hits")
                    return hit
            except TypeError:  # unhashable category value: skip the memo
                memo_key = None
        self._bump("forwarded")
        value = self._remote("aggregate", function.name, list(args), unit)
        if memo_key is not None:
            self._memo[memo_key] = value
        return value


class _ScopedDecisionRunner(DecisionRunner):
    """Decision runner whose environment is a shard-scoped replica.

    Identical to :class:`~repro.engine.decision.DecisionRunner` except
    at the two action paths that may need rows the scope does not hold:
    a ``key`` action whose target is not in the scoped ``by_key`` (the
    target may be owned by another worker -- or globally dead; only the
    coordinator can tell) and any ``scan``/native action (they range
    over all of ``E``).  Both forward to the coordinator, whose effect
    rows splice into the output at the same point in script order.
    Deferred AoE actions stay local: the record is a pure function of
    the performing unit, and resolution happens coordinator-side over
    the full environment anyway.
    """

    def __init__(
        self,
        script: ast.Script,
        registry: FunctionRegistry,
        *,
        remote: RemoteEval,
        owns_all: bool = False,
        **kwargs,
    ):
        super().__init__(script, registry, **kwargs)
        self._remote = remote
        self._owns_all = owns_all

    def _perform(self, node, ctx, by_key, out_rows, out_aoe) -> None:
        if self._owns_all:
            super()._perform(node, ctx, by_key, out_rows, out_aoe)
            return
        args = [eval_term(a, ctx) for a in node.args]

        defined = self.script.functions.get(node.name)
        if defined is not None:
            inner = EvalContext(
                env=ctx.env,
                registry=ctx.registry,
                agg_eval=ctx.agg_eval,
                rng=ctx.rng,
                bindings=dict(zip(defined.params, args)),
                unit=ctx.unit,
            )
            self._action(defined.body, inner, by_key, out_rows, out_aoe)
            return

        builtin = self.registry.actions.get(node.name)
        if builtin is None:
            raise SglNameError(f"unknown action function {node.name!r}")

        if builtin.native is None and self.index_actions:
            shape = self._shape(builtin)
            bindings = dict(zip(builtin.params, args))
            if shape.kind == "key" and by_key is not None:
                probe_ctx = ctx.bind(bindings)
                target_key = eval_term(shape.key_term, probe_ctx)
                row = by_key.get(target_key)
                if row is not None:
                    # owned target: the parent's local key-action path
                    new_row = apply_key_target(builtin, shape, probe_ctx, row)
                    if new_row is not None:
                        out_rows.append(new_row)
                    return
                # unowned (or dead) target: only the coordinator knows
                out_rows.extend(
                    self._remote("action", node.name, args, ctx.unit)
                )
                return
            if shape.kind == "aoe" and self.defer_aoe:
                record = self._record_aoe(builtin, shape, bindings, ctx)
                if record is not None:
                    out_aoe.append(record)
                return

        # native / scan / unclassified actions range over all of E
        out_rows.extend(self._remote("action", node.name, args, ctx.unit))


# ---------------------------------------------------------------------------
# Worker-side state and session loop
# ---------------------------------------------------------------------------


@dataclass
class _Compiled:
    runner: DecisionRunner
    hints: list


class _WorkerState:
    """Per-process engine fragment: replica, runners, evaluator, rng."""

    def __init__(
        self,
        game: WorkerGame,
        payload: Mapping[str, object],
        remote: RemoteEval | None = None,
    ):
        self.game = game
        self.indexed = payload["mode"] == "indexed"
        self.optimize_aoe = bool(payload["optimize_aoe"])
        self.cascade = bool(payload["cascade"])
        self.scoped = payload.get("worker_scope", "full") == "shards"
        self.remote = remote
        self.rng = TickRandom(int(payload["seed"]), key_attr=game.schema.key)
        self.shard_conf: ShardConf = tuple(payload["shard_conf"])
        self.scope: frozenset[int] | None = None
        self._compiled: dict[str, _Compiled] = {}
        self._reshard(self.shard_conf)
        # the replica of E (row order, key -> row, epoch held) -- the
        # same holder-side protocol object the spectator replicas use;
        # scoped workers hold only their shards' slice of it
        self.replica = ReplicaTable(game.schema.key)

    def _remote_call(
        self, kind: str, name: str, args: list, unit: object
    ) -> object:
        if self.remote is None:  # pragma: no cover - wiring bug
            raise RuntimeError("worker has no coordinator channel to forward to")
        return self.remote(kind, name, args, unit)

    # -- sharding / evaluator lifecycle ----------------------------------------

    def _reshard(
        self, shard_conf: ShardConf, scope: Iterable[int] | None = None
    ) -> None:
        """(Re)build the shard function and a fresh evaluator for it.

        The evaluator's retained per-shard index instances are keyed by
        shard id (and, for scoped workers, built over the scoped
        replica), so a shard-count or scope change invalidates all of
        them; the caller always pairs this with a snapshot.
        """
        shard_by, num_shards, extent = shard_conf
        self.shard_conf = (shard_by, num_shards, extent)
        self.scope = frozenset(scope) if scope is not None else None
        self.shard_of = make_sharder(shard_by, num_shards, extent=extent)
        self._compiled.clear()  # runners may bind scope-specific hooks
        key_attr = self.game.schema.key
        if not self.indexed:
            self.evaluator = NaiveEvaluator()
        elif self.scoped and self.scope is not None:
            self.evaluator = ScopedEvaluator(
                self.game.registry,
                scope=self.scope,
                shard_conf=self.shard_conf,
                remote=self._remote_call,
                cascade=self.cascade,
                key_attr=key_attr,
                maintenance="incremental",
                shard_of=self.shard_of if num_shards > 1 else None,
                num_shards=num_shards,
            )
        else:
            # maintenance="incremental": replica deltas patch the
            # retained per-shard structures; snapshot ticks (delta=None)
            # discard and lazily rebuild, exactly like the parent engine.
            self.evaluator = IndexedEvaluator(
                self.game.registry,
                cascade=self.cascade,
                key_attr=key_attr,
                maintenance="incremental",
                shard_of=self.shard_of if num_shards > 1 else None,
                num_shards=num_shards,
            )

    # -- replica maintenance ----------------------------------------------------

    def apply_snapshot(
        self,
        epoch: int,
        rows: list[dict[str, object]],
        shard_conf: ShardConf,
        scope: Iterable[int] | None = None,
    ) -> None:
        scope = frozenset(scope) if scope is not None else None
        if tuple(shard_conf) != self.shard_conf or scope != self.scope:
            self._reshard(tuple(shard_conf), scope)
        elif self.indexed:
            # same shard layout, but the retained structures describe the
            # replaced replica rows: drop them (they rebuild on probe)
            self.evaluator.reshard(
                self.shard_of if self.shard_conf[1] > 1 else None,
                self.shard_conf[1],
            )
        self.replica.apply_snapshot(epoch, rows)

    def apply_delta(self, rd: ReplicaDelta) -> TableDelta:
        return self.replica.apply_delta(rd)

    # -- script compilation ------------------------------------------------------

    def compiled_for(self, selector_value: object) -> _Compiled:
        entry = self._compiled.get(selector_value)
        if entry is None:
            script = self.game.scripts[selector_value]
            defer_aoe = self.indexed and self.optimize_aoe
            if self.scoped and self.scope is not None:
                runner: DecisionRunner = _ScopedDecisionRunner(
                    script,
                    self.game.registry,
                    index_actions=self.indexed,
                    defer_aoe=defer_aoe,
                    remote=self._remote_call,
                    owns_all=len(self.scope) >= self.shard_conf[1],
                )
            else:
                runner = DecisionRunner(
                    script,
                    self.game.registry,
                    index_actions=self.indexed,
                    defer_aoe=defer_aoe,
                )
            analysis = analyze_script(
                script, self.game.registry, self.game.schema
            )
            unit_params = {
                fn.name: fn.params[0] for fn in script.functions.values()
            }
            entry = _Compiled(
                runner=runner,
                hints=collect_call_hints(analysis, unit_params),
            )
            self._compiled[selector_value] = entry
        return entry

    # -- the decision stage ------------------------------------------------------

    def decide(
        self,
        tick: int,
        shard_ids: list[int],
        delta: TableDelta | None,
    ) -> list[tuple[int, list[dict[str, object]], list[AoeRecord]]]:
        """Run the decision stage for the given shards over the replica.

        *delta* is this tick's replica change set (``None`` on snapshot
        ticks); it drives the evaluator's incremental maintenance so
        per-shard index instances survive across ticks.  Results come
        back per shard (tagged with the shard id) so the parent's
        ⊕-merge keeps its ascending-shard-id order.
        """
        game = self.game
        rows = self.replica.rows
        env = EnvironmentTable(game.schema)
        env.rows.extend(rows)
        self.rng.advance(tick)

        # the replica's flat row order induces each shard's row order,
        # exactly as the coordinator's ShardedEnvironment partition does
        wanted = set(shard_ids)
        shard_of = self.shard_of
        selector = game.selector
        shard_groups: dict[int, dict[object, list]] = {
            shard_id: {} for shard_id in shard_ids
        }
        for row in rows:
            shard_id = shard_of(row)
            if shard_id in wanted:
                shard_groups[shard_id].setdefault(row[selector], []).append(
                    row
                )

        by_key = None
        if self.indexed:
            hint_pairs = []
            for units_by_script in shard_groups.values():
                for selector_value, units in units_by_script.items():
                    for hint in self.compiled_for(selector_value).hints:
                        hint_pairs.append((hint, units))
            self.evaluator.begin_tick(env, hint_pairs, delta=delta)
            by_key = (
                self.replica.by_key
                if self.replica.by_key is not None
                else env.by_key()
            )

        rng = self.rng
        registry = game.registry
        evaluator = self.evaluator

        def ctx_factory(unit: Mapping[str, object]) -> EvalContext:
            return EvalContext(
                env=env,
                registry=registry,
                agg_eval=evaluator,
                rng=rng,
                bindings={},
                unit=unit,
            )

        out: list[tuple[int, list[dict[str, object]], list[AoeRecord]]] = []
        for shard_id in shard_ids:
            effect_rows: list[dict[str, object]] = []
            aoe_records: list[AoeRecord] = []
            for selector_value, units in shard_groups[shard_id].items():
                runner = self.compiled_for(selector_value).runner
                for unit in units:
                    runner.run_unit(
                        unit, ctx_factory, by_key, effect_rows, aoe_records
                    )
            out.append((shard_id, effect_rows, aoe_records))
        return out


def _make_remote(transport: Transport) -> RemoteEval:
    """The worker side of REQ_EVAL: one synchronous round trip upstream."""

    def remote(kind: str, name: str, args: list, unit: object) -> object:
        transport.send((REQ_EVAL, (kind, name, args, unit)))
        # reprolint: disable=recv-frame-guard -- frame errors deliberately
        # propagate to the worker session loop's EOF/OSError handler,
        # which tears the whole session down
        reply = transport.recv()
        tag = reply[0]
        if tag == REPLY_EVAL:
            return reply[1]
        if tag == REPLY_EVAL_ERROR:
            raise RuntimeError(
                f"coordinator-side evaluation failed:\n{reply[1]}"
            )
        raise RuntimeError(
            f"unexpected reply {tag!r} to a worker evaluation request"
        )

    return remote


def _worker_loop(transport: Transport, state: _WorkerState) -> bool:
    """Serve one coordinator session; True when it ended with STOP."""
    while True:
        try:
            msg = transport.recv()
        except (EOFError, OSError):  # coordinator vanished
            return False
        tag = msg[0]
        if tag == MSG_STOP:
            return True
        if tag == MSG_DROP:  # fault injection: vanish without a word
            return False
        if tag == MSG_SET_EPOCH:  # fault injection: pretend to drift
            state.replica.epoch = msg[1]
            transport.send((REPLY_EPOCH, state.replica.epoch))
            continue
        _, blob, tick, shard_ids = msg
        try:
            update = pickle.loads(blob)
            update_tag = update[0]
            if update_tag == UPDATE_SNAPSHOT:
                _, epoch, rows, shard_conf = update
                state.apply_snapshot(epoch, rows, shard_conf)
                delta = None
            elif update_tag == UPDATE_SCOPED_SNAPSHOT:
                _, epoch, rows, shard_conf, scope = update
                state.apply_snapshot(epoch, rows, shard_conf, scope=scope)
                delta = None
            else:
                delta = state.apply_delta(update[1])
            results = state.decide(tick, shard_ids, delta)
            transport.send((REPLY_OK, state.replica.epoch, results))
        except StaleReplicaError:
            # replica cannot absorb this update; ask for a snapshot.
            # Drop the replica: a failed delta may have half-applied.
            state.replica.invalidate()
            transport.send((REPLY_STALE, state.replica.epoch))
        except BaseException:
            transport.send((REPLY_ERROR, traceback.format_exc()))


def _replica_worker_main(conn, factory: GameFactory, payload: dict) -> None:
    """Entry point of a same-host (pipe) worker process."""
    transport: Transport = PipeTransport(conn)
    try:
        state = _WorkerState(
            factory(), payload, remote=_make_remote(transport)
        )
    except BaseException:  # pragma: no cover - init failures surface on recv
        transport.send((REPLY_ERROR, traceback.format_exc()))
        transport.close()
        return
    try:
        _worker_loop(transport, state)
    except (BrokenPipeError, OSError):  # pragma: no cover - parent raced away
        pass
    transport.close()


# ---------------------------------------------------------------------------
# Remote worker bootstrap: python -m repro.engine.shardexec --listen
# ---------------------------------------------------------------------------


def serve_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    max_frame: int = DEFAULT_MAX_FRAME,
    io_timeout: float | None = None,
    ready_callback: Callable[[tuple[str, int]], None] | None = None,
    max_sessions: int | None = None,
) -> None:
    """Run a remote decision worker: accept coordinator sessions forever.

    Each accepted connection is one coordinator session.  It opens with
    an ``INIT`` message carrying the game factory (pickled by reference;
    the module must be importable here) and the engine payload; the
    worker builds a fresh :class:`_WorkerState`, replies ``READY``, and
    then speaks exactly the pipe workers' protocol.  Sessions are served
    one at a time, and every new session starts replica-less -- so a
    coordinator that reconnects after a drop is always snapshot-fed,
    never served stale state.
    """
    import socket as socket_module

    listener = socket_module.socket(
        socket_module.AF_INET, socket_module.SOCK_STREAM
    )
    listener.setsockopt(
        socket_module.SOL_SOCKET, socket_module.SO_REUSEADDR, 1
    )
    listener.bind((host, port))
    listener.listen(1)
    address = listener.getsockname()[:2]
    if ready_callback is not None:
        ready_callback(address)
    served = 0
    try:
        while max_sessions is None or served < max_sessions:
            try:
                sock, _peer = listener.accept()
            except OSError:  # pragma: no cover - listener closed under us
                break
            served += 1
            transport = SocketTransport(
                sock, max_frame=max_frame, timeout=io_timeout
            )
            try:
                msg = transport.recv()
                if not (isinstance(msg, tuple) and msg and msg[0] == MSG_INIT):
                    transport.send(
                        (REPLY_ERROR, f"expected {MSG_INIT!r}, got {msg!r}")
                    )
                    continue
                _, factory, payload = msg
                try:
                    state = _WorkerState(
                        factory(), payload, remote=_make_remote(transport)
                    )
                except BaseException:
                    transport.send((REPLY_ERROR, traceback.format_exc()))
                    continue
                transport.send((REPLY_READY, address))
                _worker_loop(transport, state)
            except (EOFError, OSError):
                pass  # this session died; serve the next coordinator
            finally:
                transport.close()
    finally:
        listener.close()


def _listen_child(conn, host: str, max_frame: int) -> None:
    """Child-process shim for :func:`spawn_listen_worker`."""

    def ready(address: tuple[str, int]) -> None:
        conn.send(address)
        conn.close()

    serve_worker(host, 0, max_frame=max_frame, ready_callback=ready)


def spawn_listen_worker(
    mp_context=None,
    *,
    host: str = "127.0.0.1",
    max_frame: int = DEFAULT_MAX_FRAME,
    startup_timeout: float = 30.0,
):
    """Start a ``--listen`` worker on an ephemeral loopback port.

    The in-process equivalent of running ``python -m
    repro.engine.shardexec --listen`` on another host; used by tests and
    benchmarks.  Returns ``(process, (host, port))``.
    """
    import multiprocessing

    if mp_context is None:
        methods = multiprocessing.get_all_start_methods()
        mp_context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
    parent_conn, child_conn = mp_context.Pipe()
    process = mp_context.Process(
        target=_listen_child, args=(child_conn, host, max_frame), daemon=True
    )
    process.start()
    child_conn.close()
    if not parent_conn.poll(startup_timeout):
        process.terminate()
        raise RuntimeError("listen worker did not start in time")
    address = parent_conn.recv()
    parent_conn.close()
    return process, tuple(address)


def main(argv=None) -> None:
    """``python -m repro.engine.shardexec --listen HOST:PORT``"""
    import argparse

    parser = argparse.ArgumentParser(
        description="Run a remote decision worker for the sharded engine."
    )
    parser.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="address to accept coordinator sessions on (port 0 = ephemeral)",
    )
    parser.add_argument(
        "--max-frame",
        type=int,
        default=DEFAULT_MAX_FRAME,
        help="frame-size guard in bytes (default: %(default)s); must admit "
        "a full snapshot of the largest environment served",
    )
    parser.add_argument(
        "--io-timeout",
        type=float,
        default=None,
        help="per-recv/send timeout in seconds (default: block forever)",
    )
    args = parser.parse_args(argv)
    endpoint = WorkerEndpoint.parse(args.listen)
    serve_worker(
        endpoint.host,
        endpoint.port,
        max_frame=args.max_frame,
        io_timeout=args.io_timeout,
        ready_callback=lambda address: print(
            f"decision worker listening on {address[0]}:{address[1]}",
            flush=True,
        ),
    )


# ---------------------------------------------------------------------------
# Coordinator side: the addressed worker pool
# ---------------------------------------------------------------------------


@dataclass
class _WorkerHandle:
    transport: Transport
    #: Local workers own a process; remote workers own an endpoint.
    process: object = None
    endpoint: WorkerEndpoint | None = None
    #: Coordinator's belief of the worker's replica epoch.
    epoch: int = NO_REPLICA


class PoolStats(RegistryStats):
    """Broadcast/fault counters a :class:`ReplicaWorkerPool` accumulates.

    Attribute reads and writes behave exactly like the dataclass this
    replaces; when the pool is built with a metrics registry each field
    is a registry cell (the ``worker_*`` series), so the old accessors
    are views over the exported metrics.  ``reconnects`` counts remote
    sessions re-established after a dropped connection; ``remote_evals``
    counts mid-tick probe/action evaluations forwarded by scoped
    workers; ``last_tick_bytes`` is the most recent tick's broadcast
    payload.
    """

    _PREFIX = "worker"
    _COUNTER_FIELDS = (
        "delta_broadcasts",
        "snapshot_broadcasts",
        "stale_snapshots",
        "respawns",
        "reconnects",
        "remote_evals",
        "bytes_broadcast",
        "ticks",
    )
    _GAUGE_FIELDS = {"last_tick_bytes": 0}


@dataclass
class TickUpdate:
    """One tick's update source, handed to :meth:`ReplicaWorkerPool.run_tick`.

    ``delta_blob_for`` / ``snapshot_blob_for`` take the worker's shard
    scope (a frozenset, or ``None`` for full-replica workers) and return
    the pickled update blob -- built and pickled at most once per
    distinct scope per tick by the engine's caching closures.
    ``delta_blob_for`` returns ``None`` when no usable delta exists (a
    rebuild tick, a shard-layout change, ``worker_broadcast="snapshot"``).
    """

    base_epoch: int
    delta_blob_for: Callable[[frozenset | None], bytes | None]
    snapshot_blob_for: Callable[[frozenset | None], bytes]


#: Answers a worker's forwarded REQ_EVAL payload; returns the reply tuple.
EvalService = Callable[[tuple], tuple]


class ReplicaWorkerPool:
    """An addressed pool of stateful replica-holding workers.

    Unlike an executor pool, messages are addressed to *specific*
    workers -- replica state lives in the worker, so the coordinator
    must know (and verify, via epoch acks) what each worker holds.
    Workers are addressed through the :class:`~repro.serve.transport`
    layer: local workers over :class:`PipeTransport`, remote workers
    (``endpoints=...``) over :class:`SocketTransport` sessions to
    ``--listen`` processes on other hosts.  The spectator publisher
    speaks the same update blobs, fire-and-forget, on its own sockets.
    """

    def __init__(
        self,
        factory: GameFactory,
        payload: dict,
        num_workers: int | None = None,
        mp_context=None,
        *,
        endpoints: Iterable[object] | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        io_timeout: float | None = None,
        connect_timeout: float = 10.0,
        metrics=None,
        trace=None,
    ):
        self._factory = factory
        self._payload = payload
        self._max_frame = max_frame
        self._io_timeout = io_timeout
        self._connect_timeout = connect_timeout
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._trace = trace
        self.stats = PoolStats(metrics)
        # per-worker instruments / trace tracks, resolved lazily
        self._m_rtt: dict[int, object] = {}
        self._m_bytes: dict[int, object] = {}
        self._named_tids: set[int] = set()
        if endpoints is not None:
            self._endpoints = [WorkerEndpoint.parse(e) for e in endpoints]
            if not self._endpoints:
                raise ValueError("endpoints must name at least one worker")
            self._ctx = None
            self.workers: list[_WorkerHandle] = [
                self._connect(endpoint) for endpoint in self._endpoints
            ]
        else:
            if num_workers is None or num_workers < 1:
                raise ValueError(
                    f"num_workers must be >= 1, got {num_workers}"
                )
            self._endpoints = None
            self._ctx = mp_context
            self.workers = [self._spawn() for _ in range(num_workers)]

    # -- per-worker observability -------------------------------------------------

    def _worker_rtt(self, index: int):
        """The ``worker_rtt_seconds{worker=i}`` histogram, cached."""
        inst = self._m_rtt.get(index)
        if inst is None:
            inst = self._metrics.histogram("worker_rtt_seconds", worker=index)
            self._m_rtt[index] = inst
        return inst

    def _worker_bytes(self, index: int):
        inst = self._m_bytes.get(index)
        if inst is None:
            inst = self._metrics.counter(
                "worker_broadcast_bytes_total", worker=index
            )
            self._m_bytes[index] = inst
        return inst

    def _worker_tid(self, index: int) -> int:
        """Worker *index*'s trace track, named on first use."""
        tid = TID_WORKER_BASE + index
        if index not in self._named_tids:
            self._named_tids.add(index)
            self._trace.thread_name(tid, f"worker {index} round trip")
        return tid

    @property
    def num_workers(self) -> int:
        return len(self.workers)

    @property
    def remote(self) -> bool:
        return self._endpoints is not None

    # -- worker lifecycle ---------------------------------------------------------

    def _spawn(self) -> _WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_replica_worker_main,
            args=(child_conn, self._factory, self._payload),
            daemon=True,
        )
        process.start()
        child_conn.close()
        return _WorkerHandle(
            process=process, transport=PipeTransport(parent_conn)
        )

    def _connect(
        self, endpoint: WorkerEndpoint, *, attempts: int = 10,
        backoff: float = 0.2,
    ) -> _WorkerHandle:
        """Open (or re-open) one remote session: connect, INIT, READY.

        Transport failures retry with backoff -- a worker whose previous
        session just dropped needs a moment to loop back to ``accept``.
        An explicit init *error* from the worker does not retry: the
        game factory fails persistently and retrying cannot help.
        """
        last_error: Exception | None = None
        for _ in range(attempts):
            try:
                transport = SocketTransport.connect(
                    endpoint.address,
                    max_frame=self._max_frame,
                    timeout=self._io_timeout,
                    connect_timeout=self._connect_timeout,
                )
            except OSError as exc:
                last_error = exc
                time.sleep(backoff)
                continue
            try:
                transport.send((MSG_INIT, self._factory, self._payload))
                reply = transport.recv()
            except (EOFError, OSError) as exc:
                transport.close()
                last_error = exc
                time.sleep(backoff)
                continue
            if reply[0] == REPLY_ERROR:
                transport.close()
                raise RuntimeError(
                    f"remote worker at {endpoint.host}:{endpoint.port} "
                    f"failed to initialise:\n{reply[1]}"
                )
            if reply[0] != REPLY_READY:  # pragma: no cover - protocol bug
                transport.close()
                raise RuntimeError(f"unexpected init reply {reply[0]!r}")
            return _WorkerHandle(transport=transport, endpoint=endpoint)
        raise RuntimeError(
            f"cannot reach remote worker at {endpoint.host}:{endpoint.port} "
            f"after {attempts} attempts"
        ) from last_error

    def _respawn(self, index: int) -> _WorkerHandle:
        """Replace a dead worker: respawn locally, reconnect remotely."""
        old = self.workers[index]
        try:
            old.transport.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if old.endpoint is not None:
            self.workers[index] = self._connect(old.endpoint)
            self.stats.reconnects += 1
            if self._trace is not None:
                self._trace.instant(
                    "worker_reconnect", "fault",
                    tid=self._worker_tid(index), worker=index,
                )
        else:
            if old.process.is_alive():  # pragma: no cover - defensive
                old.process.terminate()
            old.process.join(timeout=5)
            self.workers[index] = self._spawn()
            self.stats.respawns += 1
            if self._trace is not None:
                self._trace.instant(
                    "worker_respawn", "fault",
                    tid=self._worker_tid(index), worker=index,
                )
        return self.workers[index]

    # -- the per-tick broadcast ----------------------------------------------------

    def run_tick(
        self,
        tick: int,
        epoch: int,
        bundles: list[tuple[int, list[int]]],
        update: TickUpdate,
        *,
        answer: EvalService | None = None,
        scoped: bool = False,
    ) -> dict[int, tuple[list[dict[str, object]], list[AoeRecord]]]:
        """One tick: update every bundled worker's replica, serve the
        mid-tick evaluation requests scoped workers forward, and gather
        per-shard results.

        *bundles* pairs worker indexes with the shard ids they decide
        (which, under ``scoped=True``, is also the replica scope each
        worker holds).  Deltas go to workers whose acked epoch matches
        ``update.base_epoch``; everyone else -- fresh, respawned,
        reconnected, drifted, or after a layout change -- gets the
        snapshot for its scope.  Epoch acks are verified against
        *epoch*; a ``STALE`` reply or a dead worker falls back to the
        snapshot within the same tick, and a dead worker is respawned
        (local) or reconnected (remote) at most once per tick before
        the failure is considered persistent.

        Returns ``{shard_id: (effect_rows, aoe_records)}``.
        """
        from multiprocessing import connection as mp_connection

        stats = self.stats
        tick_bytes = 0
        revived: set[int] = set()
        stale_retries: dict[int, int] = {}
        #: worker index -> perf_counter at its most recent update send;
        #: the REPLY_OK arrival closes the round-trip span against it.
        sent_at: dict[int, float] = {}

        def send_update(
            worker_index: int, shard_ids: list[int], *, allow_delta: bool
        ) -> None:
            nonlocal tick_bytes
            worker = self.workers[worker_index]
            scope = frozenset(shard_ids) if scoped else None
            blob = None
            use_delta = False
            if allow_delta and worker.epoch == update.base_epoch:
                blob = update.delta_blob_for(scope)
                use_delta = blob is not None
            if blob is None:
                blob = update.snapshot_blob_for(scope)
            if worker.endpoint is not None and len(blob) > self._max_frame:
                # caught before the transport refuses locally: an
                # oversized update is a configuration problem, not a
                # dead worker -- reviving and retrying the same blob
                # would only bury the actionable cause
                raise RuntimeError(
                    f"update blob of {len(blob)} bytes exceeds the "
                    f"transport frame guard (max_frame={self._max_frame}) "
                    f"for worker at {worker.endpoint.host}:"
                    f"{worker.endpoint.port}; raise worker_max_frame (and "
                    "--max-frame on the listener) to admit a full snapshot"
                )
            worker.transport.send((MSG_TICK, blob, tick, shard_ids))
            sent_at[worker_index] = time.perf_counter()
            # counters record *delivered* updates: a send that raised
            # does not inflate the counts for a blob nobody received
            if use_delta:
                stats.delta_broadcasts += 1
            else:
                stats.snapshot_broadcasts += 1
            tick_bytes += len(blob)
            self._worker_bytes(worker_index).inc(len(blob))

        def revive(worker_index: int, shard_ids: list[int]) -> None:
            """Replace a dead worker and snapshot-feed it, once per tick."""
            if worker_index in revived:
                raise RuntimeError(
                    "shard worker died again immediately after its "
                    "respawn; the game factory likely fails persistently"
                )
            revived.add(worker_index)
            self._respawn(worker_index)
            try:
                # a fresh holder chains no delta
                send_update(worker_index, shard_ids, allow_delta=False)
            except (BrokenPipeError, ConnectionError, OSError) as exc:
                raise RuntimeError(
                    "shard worker died again immediately after its "
                    "respawn; the game factory likely fails persistently"
                ) from exc

        pending: dict[int, list[int]] = {}
        for worker_index, shard_ids in bundles:
            if not shard_ids:
                continue
            try:
                send_update(worker_index, shard_ids, allow_delta=True)
            except (BrokenPipeError, ConnectionError, OSError):
                revive(worker_index, shard_ids)
            pending[worker_index] = shard_ids

        out: dict[int, tuple[list, list]] = {}
        while pending:
            by_transport = {
                self.workers[wi].transport: wi for wi in pending
            }
            try:
                # block until someone has something: a long decision
                # stage is legitimate idle time, so no deadline here --
                # io_timeout guards individual send/recv calls, and a
                # vanished peer surfaces once the OS resets its
                # connection (readable -> recv error -> revive)
                ready = mp_connection.wait(list(by_transport), timeout=None)
            except OSError:  # pragma: no cover - an fd closed under us
                ready = list(by_transport)
            for transport in ready:
                worker_index = by_transport[transport]
                shard_ids = pending[worker_index]
                try:
                    reply = transport.recv()
                except (EOFError, OSError):
                    # died after its update was sent: rejoin it from a
                    # snapshot within the same tick
                    revive(worker_index, shard_ids)
                    continue
                tag = reply[0]
                if tag == REQ_EVAL:
                    # a scoped worker forwarding a probe or action the
                    # coordinator must answer before the worker's tick
                    # reply can arrive
                    stats.remote_evals += 1
                    t_eval = time.perf_counter()
                    if answer is None:  # pragma: no cover - wiring bug
                        response = (
                            REPLY_EVAL_ERROR,
                            "coordinator has no evaluation service",
                        )
                    else:
                        response = answer(reply[1])
                    if self._trace is not None:
                        self._trace.complete_perf(
                            "remote_eval", "worker", t_eval,
                            time.perf_counter(),
                            tid=self._worker_tid(worker_index),
                            epoch=epoch, worker=worker_index,
                        )
                    try:
                        transport.send(response)
                    except (BrokenPipeError, ConnectionError, OSError):
                        revive(worker_index, shard_ids)
                    continue
                if tag == REPLY_STALE:
                    # a snapshot always applies, so one retry suffices;
                    # a worker that refuses the snapshot too is broken
                    stale_retries[worker_index] = (
                        stale_retries.get(worker_index, 0) + 1
                    )
                    if stale_retries[worker_index] > 1:
                        raise RuntimeError(
                            f"worker {worker_index} reported STALE for a "
                            "snapshot broadcast; replica protocol is broken"
                        )
                    stats.stale_snapshots += 1
                    if self._trace is not None:
                        self._trace.instant(
                            "stale_snapshot", "fault",
                            tid=self._worker_tid(worker_index),
                            epoch=epoch, worker=worker_index,
                        )
                    try:
                        send_update(
                            worker_index, shard_ids, allow_delta=False
                        )
                    except (BrokenPipeError, ConnectionError, OSError):
                        revive(worker_index, shard_ids)
                    continue
                if tag == REPLY_ERROR:
                    raise RuntimeError(f"shard worker failed:\n{reply[1]}")
                if tag != REPLY_OK:  # pragma: no cover - protocol bug
                    raise RuntimeError(f"unexpected worker reply {tag!r}")
                _, acked, results = reply
                if acked != epoch:
                    raise RuntimeError(
                        f"worker {worker_index} acked epoch {acked}, "
                        f"coordinator expected {epoch}"
                    )
                self.workers[worker_index].epoch = acked
                t_sent = sent_at.get(worker_index)
                if t_sent is not None:
                    t_reply = time.perf_counter()
                    self._worker_rtt(worker_index).observe(t_reply - t_sent)
                    if self._trace is not None:
                        self._trace.complete_perf(
                            "worker_rtt", "worker", t_sent, t_reply,
                            tid=self._worker_tid(worker_index),
                            epoch=epoch, worker=worker_index,
                            shards=len(shard_ids),
                        )
                for shard_id, effect_rows, aoe_records in results:
                    out[shard_id] = (effect_rows, aoe_records)
                del pending[worker_index]

        stats.bytes_broadcast += tick_bytes
        stats.ticks += 1
        stats.last_tick_bytes = tick_bytes
        return out

    # -- fault-injection hooks ------------------------------------------------------

    def debug_set_worker_epoch(self, worker_index: int, epoch: int) -> int:
        """Fault injection: force a worker's *actual* replica epoch.

        The coordinator's belief (``workers[i].epoch``) is left alone,
        so the next delta broadcast reaches a genuinely drifted worker
        -- the STALE/snapshot fallback path a chaos drill wants to see.
        """
        worker = self.workers[worker_index]
        worker.transport.send((MSG_SET_EPOCH, epoch))
        # reprolint: disable=recv-frame-guard -- debug-only fault-injection
        # helper; a torn frame aborting the chaos drill is the right outcome
        reply = worker.transport.recv()
        if reply[0] != REPLY_EPOCH:  # pragma: no cover - protocol bug
            raise RuntimeError(f"unexpected reply {reply[0]!r}")
        return reply[1]

    def debug_drop_worker(self, worker_index: int) -> None:
        """Fault injection: make a worker vanish without replying.

        The worker closes its side immediately (a remote listener loops
        back to ``accept``); the coordinator discovers the death on its
        next send and takes the respawn/reconnect + snapshot path.
        """
        worker = self.workers[worker_index]
        try:
            worker.transport.send((MSG_DROP,))
        except (BrokenPipeError, OSError):  # pragma: no cover - already dead
            pass

    def close(self) -> None:
        for worker in self.workers:
            try:
                worker.transport.send((MSG_STOP,))
            except (BrokenPipeError, OSError):
                pass
        for worker in self.workers:
            if worker.process is not None:
                worker.process.join(timeout=5)
                if worker.process.is_alive():  # pragma: no cover - stuck
                    worker.process.terminate()
                    worker.process.join(timeout=5)
            try:
                worker.transport.close()
            except OSError:  # pragma: no cover - already closed
                pass


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    main()
