"""Worker-process side of the sharded tick pipeline.

``parallelism="processes"`` runs the decision stage of each shard in a
pool of long-lived worker processes.  Workers cannot share the engine's
in-memory state, so the protocol is explicitly message-shaped -- the
same shape a future distributed (multi-host) engine would use:

* **at pool start** each worker builds its own game state -- registry,
  compiled scripts, decision runners, and a private
  :class:`~repro.engine.evaluator.IndexedEvaluator` -- from a picklable
  *game factory* (a module-level callable returning a
  :class:`WorkerGame`).  Heavy unpicklable objects (compiled closures,
  index structures) never cross the process boundary;
* **per tick** the parent broadcasts the environment rows (plain dicts)
  plus the indexes of the shard's unit rows; the worker evaluates its
  shard's decisions against the *full* environment -- aggregate queries
  range over all of ``E`` regardless of who asks -- and returns plain
  effect rows and :class:`~repro.engine.effects.AoeRecord` tuples.

Determinism: the per-tick random function is counter-mode
(``TickRandom`` is a pure function of seed, tick, unit key, and draw
index) and every evaluator merge tie-breaks on unit keys, so worker
answers are bit-identical to the serial engine's no matter how shards
are scheduled.  Worker evaluators rebuild their indexes from the
broadcast rows every tick (the paper's default strategy); incremental
maintenance is a per-process memory optimisation that cannot change
trajectories, so the parent's ``index_maintenance`` setting does not
need to reach the workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..env.schema import Schema
from ..env.table import EnvironmentTable
from ..sgl import ast
from ..sgl.analysis import analyze_script
from ..sgl.builtins import FunctionRegistry
from ..sgl.evalterm import EvalContext
from .decision import DecisionRunner
from .effects import AoeRecord
from .evaluator import IndexedEvaluator, NaiveEvaluator, collect_call_hints
from .rng import TickRandom


@dataclass
class WorkerGame:
    """Everything a worker process needs to run decisions.

    Built inside the worker by the game factory, so none of it is ever
    pickled.  *selector* names the row attribute whose value picks the
    unit's script (e.g. ``"unittype"``).
    """

    schema: Schema
    registry: FunctionRegistry
    scripts: dict[str, ast.Script]
    selector: str = "unittype"


#: A picklable, module-level callable producing the worker's game state.
GameFactory = Callable[[], WorkerGame]


@dataclass
class _Compiled:
    runner: DecisionRunner
    hints: list


class _WorkerState:
    """Per-process engine fragment: runners, hints, evaluator, rng."""

    def __init__(self, game: WorkerGame, payload: Mapping[str, object]):
        self.game = game
        self.indexed = payload["mode"] == "indexed"
        self.optimize_aoe = bool(payload["optimize_aoe"])
        self.rng = TickRandom(int(payload["seed"]), key_attr=game.schema.key)
        if self.indexed:
            self.evaluator = IndexedEvaluator(
                game.registry,
                cascade=bool(payload["cascade"]),
                key_attr=game.schema.key,
            )
        else:
            self.evaluator = NaiveEvaluator()
        self._compiled: dict[str, _Compiled] = {}

    def compiled_for(self, selector_value: object) -> _Compiled:
        entry = self._compiled.get(selector_value)
        if entry is None:
            script = self.game.scripts[selector_value]
            runner = DecisionRunner(
                script,
                self.game.registry,
                index_actions=self.indexed,
                defer_aoe=self.indexed and self.optimize_aoe,
            )
            analysis = analyze_script(
                script, self.game.registry, self.game.schema
            )
            unit_params = {
                fn.name: fn.params[0] for fn in script.functions.values()
            }
            entry = _Compiled(
                runner=runner,
                hints=collect_call_hints(analysis, unit_params),
            )
            self._compiled[selector_value] = entry
        return entry


_STATE: _WorkerState | None = None


def _init_worker(factory: GameFactory, payload: dict) -> None:
    global _STATE
    _STATE = _WorkerState(factory(), payload)


def _decide_shards(
    tick: int,
    rows: list[dict[str, object]],
    shard_index_lists: list[tuple[int, list[int]]],
) -> list[tuple[int, list[dict[str, object]], list[AoeRecord]]]:
    """Run the decision stage for several shards against one broadcast.

    *shard_index_lists* pairs each shard id with the row indexes of its
    units.  Bundling a worker's shards into one task means the parent
    pickles the row list once per worker per tick, not once per shard.
    Results come back per shard (tagged with the shard id) so the
    parent's ⊕-merge keeps its ascending-shard-id order.
    """
    state = _STATE
    if state is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("worker not initialised")
    game = state.game
    env = EnvironmentTable(game.schema)
    env.rows.extend(rows)
    state.rng.advance(tick)

    selector = game.selector
    # one script grouping per shard: decisions stay shard-at-a-time
    shard_groups: list[tuple[int, dict[object, list]]] = []
    for shard_id, indices in shard_index_lists:
        units_by_script: dict[object, list] = {}
        for i in indices:
            row = rows[i]
            units_by_script.setdefault(row[selector], []).append(row)
        shard_groups.append((shard_id, units_by_script))

    by_key = None
    if state.indexed:
        hint_pairs = []
        for _, units_by_script in shard_groups:
            for selector_value, units in units_by_script.items():
                for hint in state.compiled_for(selector_value).hints:
                    hint_pairs.append((hint, units))
        state.evaluator.begin_tick(env, hint_pairs)
        by_key = env.by_key()

    rng = state.rng
    registry = game.registry
    evaluator = state.evaluator

    def ctx_factory(unit: Mapping[str, object]) -> EvalContext:
        return EvalContext(
            env=env,
            registry=registry,
            agg_eval=evaluator,
            rng=rng,
            bindings={},
            unit=unit,
        )

    out: list[tuple[int, list[dict[str, object]], list[AoeRecord]]] = []
    for shard_id, units_by_script in shard_groups:
        effect_rows: list[dict[str, object]] = []
        aoe_records: list[AoeRecord] = []
        for selector_value, units in units_by_script.items():
            runner = state.compiled_for(selector_value).runner
            for unit in units:
                runner.run_unit(
                    unit, ctx_factory, by_key, effect_rows, aoe_records
                )
        out.append((shard_id, effect_rows, aoe_records))
    return out
