"""The grid movement phase of the experimental engine (Section 6).

"Units attempt to move in directions they have decided on earlier.
This is done in random order, with collision detection and very simple
pathfinding rules."

The world is a square grid with at most one unit per cell (the paper's
density metric is "percent of game grid squares occupied").  Each tick,
every unit with a nonzero movement vector tries to advance ``speed``
steps toward its desired direction, one 8-neighbourhood cell at a time:

* the desired step is the neighbour closest in angle to the movement
  vector;
* if that cell is occupied, the two adjacent directions are tried in a
  randomly chosen order (the "very simple pathfinding");
* if all three are blocked the unit stays put for this step.

Processing order is a seeded random permutation so the naive and
indexed engines move units identically.
"""

from __future__ import annotations

import math
from typing import Callable, Mapping, Sequence

#: The 8 neighbourhood directions in angle order.
_DIRS = [
    (1, 0), (1, 1), (0, 1), (-1, 1),
    (-1, 0), (-1, -1), (0, -1), (1, -1),
]


def desired_direction(mvx: float, mvy: float) -> int:
    """Index into the 8 directions nearest the vector's angle."""
    angle = math.atan2(mvy, mvx)
    step = math.pi / 4.0
    return round(angle / step) % 8


class Grid:
    """Occupancy grid with toroidal-free (clamped) coordinates."""

    def __init__(self, size: int):
        self.size = size
        self._cells: dict[tuple[int, int], object] = {}

    def place(self, key: object, x: int, y: int) -> None:
        self._cells[(x, y)] = key

    def remove(self, x: int, y: int) -> None:
        self._cells.pop((x, y), None)

    def occupied(self, x: int, y: int) -> bool:
        return (x, y) in self._cells

    def in_bounds(self, x: int, y: int) -> bool:
        return 0 <= x < self.size and 0 <= y < self.size

    def free_cell_near(
        self, x: int, y: int, rand: Callable[[int], int]
    ) -> tuple[int, int] | None:
        """Spiral outward for a free in-bounds cell (resurrection)."""
        if self.in_bounds(x, y) and not self.occupied(x, y):
            return x, y
        for radius in range(1, self.size):
            candidates = []
            for dx in range(-radius, radius + 1):
                for dy in (-radius, radius):
                    candidates.append((x + dx, y + dy))
            for dy in range(-radius + 1, radius):
                for dx in (-radius, radius):
                    candidates.append((x + dx, y + dy))
            candidates = [
                c for c in candidates
                if self.in_bounds(*c) and not self.occupied(*c)
            ]
            if candidates:
                return candidates[rand(len(candidates))]
        return None


def run_movement_phase(
    rows: Sequence[Mapping[str, object]],
    grid_size: int,
    rng: Callable[[Mapping[str, object], int], int],
    *,
    x_attr: str = "posx",
    y_attr: str = "posy",
    key_attr: str = "key",
) -> None:
    """Apply movement vectors in place (rows mutate their positions).

    *rng* is the per-tick deterministic random function; it drives both
    the processing permutation and the side-step choice.
    """
    grid = Grid(grid_size)
    for row in rows:
        grid.place(row[key_attr], int(row[x_attr]), int(row[y_attr]))

    # seeded random processing order ("movement is done in random order")
    order = sorted(rows, key=lambda r: (rng(r, 7_301_333), r[key_attr]))

    for row in order:
        mvx = row["movevect_x"]
        mvy = row["movevect_y"]
        if not mvx and not mvy:
            continue
        steps = max(int(row.get("speed", 1)), 1)
        x, y = int(row[x_attr]), int(row[y_attr])
        want = desired_direction(mvx, mvy)
        for step in range(steps):
            placed = False
            # desired direction, then the two adjacent ones in random order
            side = 1 if rng(row, 9_000_101 + step) % 2 == 0 else -1
            for delta in (0, side, -side):
                dx, dy = _DIRS[(want + delta) % 8]
                nx, ny = x + dx, y + dy
                if grid.in_bounds(nx, ny) and not grid.occupied(nx, ny):
                    grid.remove(x, y)
                    grid.place(row[key_attr], nx, ny)
                    x, y = nx, ny
                    placed = True
                    break
            if not placed:
                break  # blocked: give up for this tick
        row[x_attr] = x
        row[y_attr] = y
