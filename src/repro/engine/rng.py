"""Deterministic per-tick randomness (Section 4.1).

"For any number i, Random(i) will always return the same number within
a single clock tick, but not necessarily between clock ticks."  The
engine satisfies this with a counter-mode generator: the value of
``Random(u, i)`` is a pure function of (simulation seed, tick number,
unit key, i), so

* scripts are replayable -- the whole simulation is deterministic given
  the seed (the paper's formalisation "is completely deterministic");
* evaluation order cannot change results, which is what lets the naive
  and the indexed engines produce bit-identical trajectories.

The mixer is SplitMix64, chosen for quality-per-cycle in pure Python.
"""

from __future__ import annotations

from typing import Mapping

_MASK = (1 << 64) - 1


def splitmix64(state: int) -> int:
    """One SplitMix64 output for the given 64-bit state."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


class TickRandom:
    """The random function ``r : Env × N → N`` threaded through a tick."""

    __slots__ = ("seed", "tick", "key_attr")

    def __init__(self, seed: int, tick: int = 0, key_attr: str = "key"):
        self.seed = seed & _MASK
        self.tick = tick
        self.key_attr = key_attr

    def advance(self, tick: int | None = None) -> None:
        """Move to the next clock tick (Random values change between ticks)."""
        self.tick = self.tick + 1 if tick is None else tick

    def __call__(self, row: Mapping[str, object], i: int) -> int:
        key = row[self.key_attr]
        state = self.seed
        state = splitmix64(state ^ (self.tick & _MASK))
        state = splitmix64(state ^ (hash(key) & _MASK))
        return splitmix64(state ^ (i & _MASK))

    def uniform(self, row: Mapping[str, object], i: int, n: int) -> int:
        """``Random(i) mod n`` convenience used by the engine itself."""
        return self(row, i) % n
