"""Deterministic per-tick randomness (Section 4.1).

"For any number i, Random(i) will always return the same number within
a single clock tick, but not necessarily between clock ticks."  The
engine satisfies this with a counter-mode generator: the value of
``Random(u, i)`` is a pure function of (simulation seed, tick number,
unit key, i), so

* scripts are replayable -- the whole simulation is deterministic given
  the seed (the paper's formalisation "is completely deterministic");
* evaluation order cannot change results, which is what lets the naive
  and the indexed engines produce bit-identical trajectories.

The mixer is SplitMix64, chosen for quality-per-cycle in pure Python.
"""

from __future__ import annotations

import struct
from typing import Mapping

_MASK = (1 << 64) - 1


def splitmix64(state: int) -> int:
    """One SplitMix64 output for the given 64-bit state."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return z ^ (z >> 31)


def _fold_bytes(data: bytes, state: int) -> int:
    for chunk_start in range(0, len(data), 8):
        word = int.from_bytes(data[chunk_start : chunk_start + 8], "little")
        state = splitmix64(state ^ word)
    return splitmix64(state ^ len(data))


def stable_hash(key: object) -> int:
    """A process-independent 64-bit hash of a unit key.

    Python's builtin ``hash`` is salted per process for ``str`` (and
    ``bytes``) keys, so it must never feed the deterministic random
    stream.  This hash is a pure function of the key's value: ints map
    through their two's-complement bits, strings through their UTF-8
    bytes, floats through their IEEE-754 bits, and tuples fold their
    elements -- all mixed with SplitMix64.
    """
    if isinstance(key, int):  # bool included: True/1 and False/0 agree,
        if 0 <= key < (1 << 64):  # matching dict-key equality.  In this
            return key            # range the identity is injective;
        # negative or wider ints fold their full two's-complement bytes
        # so keys congruent mod 2**64 do not share a stream
        data = key.to_bytes(key.bit_length() // 8 + 1, "little", signed=True)
        return _fold_bytes(data, 0x494E_5421)  # "INT!"
    if isinstance(key, str):
        return _fold_bytes(key.encode("utf-8"), 0x5354_5221)  # "STR!"
    if isinstance(key, bytes):
        return _fold_bytes(key, 0x4259_5445)  # "BYTE"
    if isinstance(key, float):
        if key.is_integer():  # match int/float key interchangeability
            return stable_hash(int(key))
        # non-integral, inf, and nan all hash via their IEEE-754 bits
        # reprolint: disable=wire-version-constant -- struct here bit-puns
        # a float for hashing; nothing crosses a wire, so no frame version
        return splitmix64(struct.unpack("<Q", struct.pack("<d", key))[0])
    if isinstance(key, tuple):
        state = 0x5455_504C  # "TUPL"
        for item in key:
            state = splitmix64(state ^ stable_hash(item))
        return splitmix64(state ^ len(key))
    raise TypeError(
        f"unit key {key!r} of type {type(key).__name__} has no stable hash; "
        "use int, str, bytes, float, or tuples thereof"
    )


class TickRandom:
    """The random function ``r : Env × N → N`` threaded through a tick."""

    __slots__ = ("seed", "tick", "key_attr", "_key_hashes")

    def __init__(self, seed: int, tick: int = 0, key_attr: str = "key"):
        self.seed = seed & _MASK
        self.tick = tick
        self.key_attr = key_attr
        # memoized stable_hash per key: unit keys repeat every draw of
        # every tick, and the fold over str/tuple keys is pure Python.
        # Bounded by the number of distinct keys the simulation uses.
        self._key_hashes: dict[object, int] = {}

    def advance(self, tick: int | None = None) -> None:
        """Move to the next clock tick (Random values change between ticks)."""
        self.tick = self.tick + 1 if tick is None else tick

    def __call__(self, row: Mapping[str, object], i: int) -> int:
        key = row[self.key_attr]
        key_hash = self._key_hashes.get(key)
        if key_hash is None:
            key_hash = self._key_hashes[key] = stable_hash(key)
        state = self.seed
        state = splitmix64(state ^ (self.tick & _MASK))
        state = splitmix64(state ^ key_hash)
        return splitmix64(state ^ (i & _MASK))

    def uniform(self, row: Mapping[str, object], i: int, n: int) -> int:
        """``Random(i) mod n`` convenience used by the engine itself."""
        return self(row, i) % n
