"""The decision phase: set-at-a-time script execution.

Runs every unit's script against the tick-start environment and collects
effect rows.  Semantically identical to the reference interpreter
(``⊕`` is associative/commutative/idempotent -- Eq. 3 -- so appending
all effect rows to one multiset and combining once equals the nested
per-``Seq`` combines of Section 4.3); operationally it avoids building
and merging thousands of one-row tables.

Action application is itself classified (``repro.algebra.shapes``):

* ``key`` actions resolve their target through a per-tick ``key → row``
  hash instead of scanning E (so a ``perform FireAt`` is O(1), keeping
  the engine's per-tick cost in the aggregates where the paper puts it);
* ``aoe`` actions can be *deferred*: instead of emitting one effect row
  per unit in the area, the performer registers its center of effect and
  the post-decision resolver of :mod:`repro.engine.effects` computes the
  combined field per unit (the ⊕ optimisation of Section 5.4);
* ``scan`` actions run the naive Eq.-(4) evaluation.

The naive engine configuration uses scan for everything, matching the
paper's baseline.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..algebra.shapes import ActionShape, classify_action
from ..sgl import ast
from ..sgl.builtins import ActionFunction, FunctionRegistry
from ..sgl.errors import SglNameError, SglTypeError
from ..sgl.evalterm import EvalContext, eval_cond, eval_term
from ..sgl.sqlspec import apply_action_scan
from .effects import AoeRecord


class DecisionRunner:
    """Executes one script's decisions for many units, appending effect
    rows (and deferred AoE records) to shared per-tick collections."""

    def __init__(
        self,
        script: ast.Script,
        registry: FunctionRegistry,
        *,
        index_actions: bool = True,
        defer_aoe: bool = False,
    ):
        self.script = script
        self.registry = registry
        self.index_actions = index_actions
        self.defer_aoe = defer_aoe
        self._action_shapes: dict[str, ActionShape] = {}

    def _shape(self, action: ActionFunction) -> ActionShape:
        shape = self._action_shapes.get(action.name)
        if shape is None:
            shape = classify_action(action.spec)
            self._action_shapes[action.name] = shape
        return shape

    # -- per-unit execution ------------------------------------------------------

    def run_unit(
        self,
        unit: Mapping[str, object],
        ctx_factory: Callable[[Mapping[str, object]], EvalContext],
        by_key: Mapping[object, Mapping[str, object]] | None,
        out_rows: list,
        out_aoe: list[AoeRecord],
    ) -> None:
        """Execute ``main`` for *unit*; *by_key* enables key actions."""
        ctx = ctx_factory(unit)
        main = self.script.main
        ctx.bindings[main.params[0]] = unit
        self._action(main.body, ctx, by_key, out_rows, out_aoe)

    def _action(self, node, ctx, by_key, out_rows, out_aoe) -> None:
        if isinstance(node, ast.Skip):
            return
        if isinstance(node, ast.Let):
            value = eval_term(node.term, ctx)
            inner = ctx.bind({node.name: value})
            self._action(node.body, inner, by_key, out_rows, out_aoe)
            return
        if isinstance(node, ast.Seq):
            self._action(node.first, ctx, by_key, out_rows, out_aoe)
            self._action(node.second, ctx, by_key, out_rows, out_aoe)
            return
        if isinstance(node, ast.If):
            if eval_cond(node.cond, ctx):
                self._action(node.then_branch, ctx, by_key, out_rows, out_aoe)
            elif node.else_branch is not None:
                self._action(node.else_branch, ctx, by_key, out_rows, out_aoe)
            return
        if isinstance(node, ast.Perform):
            self._perform(node, ctx, by_key, out_rows, out_aoe)
            return
        raise SglTypeError(f"cannot execute {node!r}")

    def _perform(self, node, ctx, by_key, out_rows, out_aoe) -> None:
        args = [eval_term(a, ctx) for a in node.args]

        defined = self.script.functions.get(node.name)
        if defined is not None:
            inner = EvalContext(
                env=ctx.env,
                registry=ctx.registry,
                agg_eval=ctx.agg_eval,
                rng=ctx.rng,
                bindings=dict(zip(defined.params, args)),
                unit=ctx.unit,
            )
            self._action(defined.body, inner, by_key, out_rows, out_aoe)
            return

        builtin = self.registry.actions.get(node.name)
        if builtin is None:
            raise SglNameError(f"unknown action function {node.name!r}")
        bindings = dict(zip(builtin.params, args))

        if builtin.native is not None:
            out_rows.extend(builtin.native(args, ctx))
            return

        if self.index_actions:
            shape = self._shape(builtin)
            if shape.kind == "key" and by_key is not None:
                self._apply_key_action(builtin, shape, bindings, ctx, by_key,
                                       out_rows)
                return
            if shape.kind == "aoe" and self.defer_aoe:
                record = self._record_aoe(builtin, shape, bindings, ctx)
                if record is not None:
                    out_aoe.append(record)
                return

        out_rows.extend(apply_action_scan(builtin.spec, bindings, ctx))

    # -- key actions ---------------------------------------------------------------

    def _apply_key_action(
        self, builtin, shape: ActionShape, bindings, ctx, by_key, out_rows
    ) -> None:
        probe_ctx = ctx.bind(bindings)
        target_key = eval_term(shape.key_term, probe_ctx)
        row = by_key.get(target_key)
        if row is None:
            return
        new_row = apply_key_target(builtin, shape, probe_ctx, row)
        if new_row is not None:
            out_rows.append(new_row)

    # -- deferred AoE (Section 5.4) --------------------------------------------------

    def _record_aoe(
        self, builtin, shape: ActionShape, bindings, ctx
    ) -> AoeRecord | None:
        probe_ctx = ctx.bind(bindings)
        for conjunct in shape.u_only:
            if not eval_cond(conjunct, probe_ctx):
                return None
        bounds = []
        for constraint in shape.ranges:
            lo, hi = _eval_bounds(constraint, probe_ctx)
            if lo > hi:
                return None
            bounds.append((lo, hi))
        (xlo, xhi), (ylo, yhi) = bounds
        return AoeRecord(
            action=builtin.name,
            attr=shape.effect_attr,
            value=eval_term(shape.value_term, probe_ctx),
            center=((xlo + xhi) / 2.0, (ylo + yhi) / 2.0),
            extents=((xhi - xlo) / 2.0, (yhi - ylo) / 2.0),
            eq_vals=tuple(
                eval_term(c.value_term, probe_ctx) for c in shape.eq_cats
            ),
            neq_vals=tuple(
                eval_term(c.value_term, probe_ctx) for c in shape.neq_cats
            ),
        )


def apply_key_target(
    builtin, shape: ActionShape, probe_ctx, row
) -> dict | None:
    """Evaluate a key action against its resolved target row.

    The one shared body behind every key-action site -- the local
    runner, the scoped runner's owned-target fast path, and the
    coordinator's forwarded-action service -- so the extra-where
    short-circuit and effect-term evaluation can never drift between
    the serial, scoped, and forwarded code paths.  Returns the effect
    row, or ``None`` when the residual predicate rejects the target.
    """
    probe_ctx.bindings["e"] = row
    if not all(eval_cond(c, probe_ctx) for c in shape.extra_where):
        return None
    new_row = dict(row)
    for attr, term in builtin.spec.effects.items():
        new_row[attr] = eval_term(term, probe_ctx)
    return new_row


def _eval_bounds(constraint, probe_ctx) -> tuple[float, float]:
    import math

    lo = float("-inf")
    for bound in constraint.lowers:
        value = float(eval_term(bound.term, probe_ctx))
        if bound.strict:
            value = math.nextafter(value, float("inf"))
        lo = max(lo, value)
    hi = float("inf")
    for bound in constraint.uppers:
        value = float(eval_term(bound.term, probe_ctx))
        if bound.strict:
            value = math.nextafter(value, float("-inf"))
        hi = min(hi, value)
    return lo, hi
