"""The discrete simulation engine: the tick loop of Sections 2.2 and 6.

Each clock tick proceeds in the phases the paper's engine uses:

1. **index build** -- the indexed evaluator arms itself for this tick's
   environment: by default it resets and (lazily, on first probe)
   rebuilds the aggregate indexes; with ``index_maintenance`` set to
   ``"incremental"``/``"auto"`` it instead patches the retained indexes
   with the row delta captured at the end of the previous tick.
   Sweep-line batches for hinted extreme aggregates are also built here;
2. **decision** -- every unit executes its script; effect rows (and
   deferred AoE records) accumulate;
3. **second index build + action** -- deferred area effects resolve
   through the ⊕ optimisation of Section 5.4 (this is the paper's
   "second index building phase, which can depend on values generated
   during the decision phase");
4. **combine** -- all effect tables merge with E under ⊕ (Eq. 6);
5. **mechanics** -- the game's post-processing applies the combined
   effects (Example 4.1), moves units, removes the dead.

The evaluator is pluggable (Section 6): ``mode="naive"`` scans E for
every aggregate, ``mode="indexed"`` probes the Section 5.3 structures.
Both produce identical trajectories; only the wall-clock differs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Mapping

from ..algebra.shapes import ActionShape, classify_action
from ..env.combine import combine_all
from ..env.table import EnvironmentTable, TableDelta, diff_by_key
from ..sgl import ast
from ..sgl.analysis import analyze_script
from ..sgl.builtins import FunctionRegistry
from ..sgl.evalterm import EvalContext
from .decision import DecisionRunner
from .effects import AoeRecord, resolve_aoe
from .evaluator import CallHint, IndexedEvaluator, NaiveEvaluator, collect_call_hints
from .rng import TickRandom

#: Game mechanics hook: (combined environment, rng, tick) -> next environment.
MechanicsFn = Callable[[EnvironmentTable, TickRandom, int], EnvironmentTable]

#: Cap on cached compiled scripts.  A well-behaved ``script_for``
#: returns a handful of stable Script objects and never trips this; one
#: that builds a fresh Script per call would otherwise pin every one of
#: them forever.  Oldest entries are evicted first (entries rebuild on
#: demand, and scripts in flight this tick are kept alive by the
#: per-tick grouping, so eviction can never serve a stale runner).
_RUNNER_CACHE_MAX = 256


@dataclass
class TickStats:
    """Wall-clock breakdown of one tick (seconds) plus row counts."""

    tick: int
    units: int
    effect_rows: int
    aoe_records: int
    decision_time: float
    aoe_time: float
    combine_time: float
    mechanics_time: float
    total_time: float
    #: Index upkeep: evaluator begin_tick (delta apply or cache reset)
    #: plus post-mechanics change capture.  0.0 in naive mode.
    maintenance_time: float = 0.0


@dataclass
class EngineConfig:
    """Engine knobs (Section 6 plus the incremental-maintenance extension).

    ``index_maintenance`` governs what happens to the aggregate indexes
    between ticks (indexed mode only):

    * ``"rebuild"`` (default) -- discard and rebuild from scratch every
      tick, the paper's strategy for rapidly-changing data;
    * ``"incremental"`` -- diff the environment across the tick and
      patch the retained index structures with the row delta;
    * ``"auto"`` -- cost-based: apply the delta while the changed-row
      fraction stays at or below ``incremental_threshold``, otherwise
      fall back to a full rebuild for that tick.

    All three produce bit-identical trajectories whenever aggregate
    measure sums are exact in floating point -- true for integer-valued
    measures like the battle simulation's.  (Delta application sums
    contributions in a different order than a fresh build, so float
    measures with inexact sums may differ in final ulps between
    policies.)  Only wall-clock differs otherwise.
    """

    mode: str = "indexed"  # "indexed" | "naive"
    optimize_aoe: bool = True
    cascade: bool = True
    seed: int = 0
    index_maintenance: str = "rebuild"  # "rebuild" | "incremental" | "auto"
    incremental_threshold: float = 0.25


class SimulationEngine:
    """Drives the environment through clock ticks.

    *script_for* maps a unit row to its compiled script (the battle
    simulation dispatches on unit type); *mechanics* is the game's
    post-processing step.
    """

    def __init__(
        self,
        env: EnvironmentTable,
        registry: FunctionRegistry,
        script_for: Callable[[Mapping[str, object]], ast.Script],
        mechanics: MechanicsFn,
        config: EngineConfig | None = None,
    ):
        self.env = env
        self.registry = registry
        self.script_for = script_for
        self.mechanics = mechanics
        self.config = config or EngineConfig()
        if self.config.mode not in ("indexed", "naive"):
            raise ValueError(f"unknown engine mode {self.config.mode!r}")
        if self.config.index_maintenance not in ("rebuild", "incremental", "auto"):
            raise ValueError(
                f"unknown index_maintenance {self.config.index_maintenance!r}"
            )
        self.indexed = self.config.mode == "indexed"
        self.rng = TickRandom(self.config.seed)
        self.tick_count = 0
        self.history: list[TickStats] = []

        if self.indexed:
            self.agg_eval = IndexedEvaluator(
                registry,
                cascade=self.config.cascade,
                key_attr=env.schema.key,
                maintenance=self.config.index_maintenance,
                incremental_threshold=self.config.incremental_threshold,
            )
        else:
            self.agg_eval = NaiveEvaluator()

        # change capture feeds the evaluator's incremental maintenance;
        # the delta diffed at the end of tick t is consumed at t+1
        self._capture_deltas = (
            self.indexed and self.config.index_maintenance != "rebuild"
        )
        self._pending_delta: TableDelta | None = None

        # Cache keyed by id(script), holding the script itself: the
        # strong reference pins the id for the cache's lifetime, so a
        # recycled id of a garbage-collected script can never serve a
        # stale runner or stale hints.
        self._runners: dict[
            int, tuple[ast.Script, DecisionRunner, list[CallHint]]
        ] = {}
        self._action_shapes: dict[str, ActionShape] = {
            name: classify_action(fn.spec)
            for name, fn in registry.actions.items()
            if fn.spec is not None
        }

    # -- script compilation cache -------------------------------------------------

    def _runner_for(
        self, script: ast.Script
    ) -> tuple[ast.Script, DecisionRunner, list[CallHint]]:
        key = id(script)
        entry = self._runners.pop(key, None)  # re-inserted below: LRU
        if entry is None:
            runner = DecisionRunner(
                script,
                self.registry,
                index_actions=self.indexed,
                defer_aoe=self.indexed and self.config.optimize_aoe,
            )
            analysis = analyze_script(script, self.registry, self.env.schema)
            unit_params = {
                fn.name: fn.params[0] for fn in script.functions.values()
            }
            entry = (script, runner, collect_call_hints(analysis, unit_params))
            while len(self._runners) >= _RUNNER_CACHE_MAX:
                self._runners.pop(next(iter(self._runners)))
        self._runners[key] = entry
        return entry

    # -- the tick loop --------------------------------------------------------------

    def tick(self) -> TickStats:
        start = time.perf_counter()
        self.tick_count += 1
        self.rng.advance(self.tick_count)
        env = self.env
        schema = env.schema

        # group units by script so hints know their probe sets
        units_by_script: dict[int, tuple[ast.Script, list]] = {}
        for row in env.rows:
            script = self.script_for(row)
            units_by_script.setdefault(id(script), (script, []))[1].append(row)

        # phase 1: (re)arm the evaluator; pass sweep-batch hints.  With
        # delta maintenance enabled this is where last tick's captured
        # delta patches the retained indexes instead of discarding them.
        maintenance_time = 0.0
        if self.indexed:
            hint_pairs = []
            for script, units in units_by_script.values():
                for hint in self._runner_for(script)[2]:
                    hint_pairs.append((hint, units))
            t0 = time.perf_counter()
            self.agg_eval.begin_tick(env, hint_pairs, delta=self._pending_delta)
            maintenance_time += time.perf_counter() - t0
            self._pending_delta = None
            by_key = env.by_key()
        else:
            by_key = None

        # phase 2: decision
        t0 = time.perf_counter()
        effect_rows: list[dict[str, object]] = []
        aoe_records: list[AoeRecord] = []
        rng = self.rng
        registry = self.registry
        agg_eval = self.agg_eval

        def ctx_factory(unit: Mapping[str, object]) -> EvalContext:
            return EvalContext(
                env=env,
                registry=registry,
                agg_eval=agg_eval,
                rng=rng,
                bindings={},
                unit=unit,
            )

        for script, units in units_by_script.values():
            runner = self._runner_for(script)[1]
            for unit in units:
                runner.run_unit(unit, ctx_factory, by_key, effect_rows, aoe_records)
        decision_time = time.perf_counter() - t0

        # phase 3: second index build -- resolve deferred area effects
        t0 = time.perf_counter()
        if aoe_records:
            effect_rows.extend(
                resolve_aoe(
                    aoe_records,
                    env.rows,
                    schema,
                    self._action_shapes,
                    registry.constants,
                )
            )
        aoe_time = time.perf_counter() - t0

        # phase 4: combine (Eq. 6: main⊕(E) ⊕ E)
        t0 = time.perf_counter()
        effects = EnvironmentTable(schema)
        effects.rows.extend(effect_rows)
        combined = combine_all([env, effects], schema)
        combine_time = time.perf_counter() - t0

        # phase 5: game mechanics (post-processing + movement)
        t0 = time.perf_counter()
        self.env = self.mechanics(combined, rng, self.tick_count)
        mechanics_time = time.perf_counter() - t0

        # change capture: diff the post-mechanics environment against the
        # tick-start snapshot (mechanics copies rows, so *env* still holds
        # the pre-tick values).  Consumed by next tick's begin_tick.
        if self._capture_deltas:
            t0 = time.perf_counter()
            # "auto" discards any delta above its threshold, so let the
            # diff bail out early instead of completing a doomed one
            cutoff = None
            if self.config.index_maintenance == "auto":
                cutoff = int(
                    self.config.incremental_threshold * len(self.env)
                )
            self._pending_delta = diff_by_key(
                env, self.env, max_changed=cutoff
            )
            maintenance_time += time.perf_counter() - t0

        stats = TickStats(
            tick=self.tick_count,
            units=len(env),
            effect_rows=len(effect_rows),
            aoe_records=len(aoe_records),
            decision_time=decision_time,
            aoe_time=aoe_time,
            combine_time=combine_time,
            mechanics_time=mechanics_time,
            total_time=time.perf_counter() - start,
            maintenance_time=maintenance_time,
        )
        self.history.append(stats)
        return stats

    def run(self, ticks: int) -> list[TickStats]:
        """Simulate *ticks* clock ticks; returns their stats."""
        return [self.tick() for _ in range(ticks)]
